"""Per-benchmark pipeline tuning shared by the harness and the batch API.

Kept in its own leaf module so both :mod:`repro.harness.experiments` (which
builds adapters) and :mod:`repro.service.tables` (which enumerates jobs)
derive identical cache keys from one source of truth.
"""

from __future__ import annotations

from typing import Any, Dict

#: Table III pipeline options per intrinsic benchmark (paper Section VI-B:
#: matmul is tiled, dotproduct is unrolled by 4).
TABLE3_TUNING: Dict[str, Dict[str, Any]] = {
    "matmul": {"tile": True},
    "dotproduct": {"unroll": 4},
}

#: Table III rows that also run threaded: the paper's simple scf.parallel
#: conversion does not support reductions, so only these two.
TABLE3_THREADED = ("transpose", "matmul")

#: Thread count used for the threaded Table III runs (64-core ARCHER2 node).
TABLE3_THREADS = 64

#: Default Table V grid-cell sweep.
TABLE5_GRID_SIZES = (134_000_000, 268_000_000, 536_000_000, 1_100_000_000)


def table3_options(benchmark: str) -> Dict[str, Any]:
    return dict(TABLE3_TUNING.get(benchmark, {}))


__all__ = ["TABLE3_TUNING", "TABLE3_THREADED", "TABLE3_THREADS",
           "TABLE5_GRID_SIZES", "table3_options"]
