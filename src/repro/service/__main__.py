"""CLI for the compilation service.

Examples::

    # everything, 4 compile workers, persistent cache
    python -m repro.service run-tables --jobs 4 --cache-dir .repro-cache

    # one table, a representative subset, JSON summary on the side
    python -m repro.service run-tables --tables table3 \
        --benchmarks dotproduct sum --summary summary.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .cache import ArtifactCache
from .scheduler import CompileService
from .tables import ALL_TABLES, run_tables


def _engines():
    from ..flows import ENGINES
    return ENGINES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run experiment flows through the compilation service.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run-tables",
        help="regenerate the paper's tables through the cached service")
    run.add_argument("--tables", nargs="+", choices=ALL_TABLES,
                     default=list(ALL_TABLES),
                     help="which flows to regenerate (default: all)")
    run.add_argument("--benchmarks", nargs="+", default=None, metavar="NAME",
                     help="restrict table1/2/3 rows to these benchmarks")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="parallel compile workers for cache misses")
    run.add_argument("--engine", default="compiled", choices=_engines(),
                     help="interpreter engine the measurements execute on "
                          "(default: compiled)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persistent artifact cache directory "
                          "(default: in-memory only, or $REPRO_CACHE_DIR)")
    run.add_argument("--summary", default=None, metavar="FILE",
                     help="also write a JSON run summary to FILE")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the formatted tables, print counters only")
    return parser


def _cmd_run_tables(args: argparse.Namespace) -> int:
    from ..harness.reporting import format_table
    from ..workloads import WORKLOAD_INDEX

    unknown = [b for b in args.benchmarks or () if b not in WORKLOAD_INDEX]
    if unknown:
        print(f"error: unknown benchmark(s) {', '.join(unknown)} "
              f"(choose from {', '.join(sorted(WORKLOAD_INDEX))})",
              file=sys.stderr)
        return 2

    from . import CACHE_DIR_ENV
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV) or None
    service = CompileService(ArtifactCache(cache_dir=cache_dir),
                             max_workers=args.jobs)
    result = run_tables(tables=args.tables, service=service,
                        max_workers=args.jobs, benchmarks=args.benchmarks,
                        engine=args.engine)

    if not args.quiet:
        for name, table in result["tables"].items():
            print(f"== {name} ==")
            print(format_table(table))
            print()

    batch = result["batch"]
    counters = result["counters"]
    elapsed = result["elapsed_s"]
    print(f"batch: {batch.submitted} jobs submitted, {batch.unique} unique, "
          f"{batch.cache_hits} cache hits, {batch.executed} compiled "
          f"({batch.pool_executed} in {batch.workers} workers)")
    print(f"cache: {counters['hits']} hits "
          f"({counters['memory_hits']} memory / {counters['disk_hits']} disk), "
          f"{counters['misses']} misses, "
          f"{counters['recompilations']} recompilations")
    print(f"time:  batch {elapsed['batch']:.2f}s + tables "
          f"{elapsed['tables']:.2f}s = {elapsed['total']:.2f}s")
    for workload, error in batch.failures:
        print(f"note: {workload} did not compile: {error}", file=sys.stderr)

    if args.summary:
        summary = {
            "tables": {name: table.measured_matrix()
                       for name, table in result["tables"].items()},
            "batch": batch.as_dict(),
            "counters": counters,
            "elapsed_s": elapsed,
        }
        with open(args.summary, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run-tables":
        return _cmd_run_tables(args)
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    sys.exit(main())
