"""CLI for the compilation service and its long-lived daemon.

Examples::

    # everything, 4 compile workers, persistent cache
    python -m repro.service run-tables --jobs 4 --cache-dir .repro-cache

    # one table, a representative subset, JSON summary on the side
    python -m repro.service run-tables --tables table3 \
        --benchmarks dotproduct sum --summary summary.json

    # long-lived daemon: start, inspect, stop
    python -m repro.service serve --socket /tmp/repro.sock \
        --cache-dir .repro-cache --jobs 4
    python -m repro.service ping --socket /tmp/repro.sock
    python -m repro.service metrics --socket /tmp/repro.sock
    python -m repro.service shutdown --socket /tmp/repro.sock

With a daemon running, ``run-tables`` (and ``repro.conformance`` /
``repro.opt``) discover it via ``--socket`` / ``$REPRO_DAEMON_SOCKET`` /
the default per-user socket and route compiles through it; without one,
everything runs in-process exactly as before (``--no-daemon`` forces that).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional

from .cache import ArtifactCache
from .client import (NO_DAEMON_ENV, DaemonRequestError, DaemonUnavailable,
                     default_socket_path, discover_client,
                     maybe_daemon_service)
from .daemon import DaemonError, serve_forever
from .scheduler import CompileService
from .sharded import parse_byte_size
from .tables import ALL_TABLES, run_tables


def _engines():
    from ..flows import ENGINES
    return ENGINES


def _add_socket_arg(parser: argparse.ArgumentParser,
                    what: str = "the daemon") -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help=f"socket spec for {what}: a unix socket path "
                             "or tcp:HOST:PORT (default: $REPRO_DAEMON_"
                             f"SOCKET, else {default_socket_path()})")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run experiment flows through the compilation service, "
                    "or manage the long-lived compilation daemon "
                    "(serve / ping / metrics / shutdown).")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run-tables",
        help="regenerate the paper's tables through the cached service "
             "(uses a running daemon when one is discovered)")
    run.add_argument("--tables", nargs="+", choices=ALL_TABLES,
                     default=list(ALL_TABLES),
                     help="which flows to regenerate (default: all)")
    run.add_argument("--benchmarks", nargs="+", default=None, metavar="NAME",
                     help="restrict table1/2/3 rows to these benchmarks")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="parallel compile workers for cache misses")
    run.add_argument("--no-incremental", action="store_true",
                     help="disable function-granular incremental "
                          "compilation for this batch (every function "
                          "recompiles from scratch)")
    run.add_argument("--engine", default="compiled", choices=_engines(),
                     help="interpreter engine the measurements execute on "
                          "(default: compiled)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persistent artifact cache directory "
                          "(default: in-memory only, or $REPRO_CACHE_DIR)")
    run.add_argument("--summary", default=None, metavar="FILE",
                     help="also write a JSON run summary to FILE")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the formatted tables, print counters only")
    run.add_argument("--no-jit-cache", action="store_true",
                     help="keep jit translations process-local (disable the "
                          "persistent translation cache)")
    _add_socket_arg(run)
    run.add_argument("--no-daemon", action="store_true",
                     help="never use a compilation daemon, even if one is "
                          "running")

    serve = sub.add_parser(
        "serve",
        help="start the long-lived compilation daemon (async batch API "
             "with request coalescing over a shared warm cache)")
    _add_socket_arg(serve, "this daemon to listen on")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent sharded artifact store "
                            "(default: $REPRO_CACHE_DIR, else memory only)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="process-pool width for cache misses")
    serve.add_argument("--byte-budget", default=None, metavar="SIZE",
                       help="disk store LRU budget, e.g. 256M or 1G "
                            "(default: $REPRO_CACHE_BUDGET, else 256M; "
                            "0 disables eviction)")
    serve.add_argument("--no-jit-cache", action="store_true",
                       help="keep jit translations process-local (disable "
                            "the persistent translation cache)")

    for name, text in (("ping", "check a daemon is alive"),
                       ("metrics", "print a daemon's live metrics as JSON"),
                       ("shutdown", "ask a daemon to exit cleanly")):
        command = sub.add_parser(name, help=text)
        _add_socket_arg(command)
    return parser


def _cmd_run_tables(args: argparse.Namespace) -> int:
    from ..harness.reporting import format_table
    from ..workloads import WORKLOAD_INDEX

    unknown = [b for b in args.benchmarks or () if b not in WORKLOAD_INDEX]
    if unknown:
        print(f"error: unknown benchmark(s) {', '.join(unknown)} "
              f"(choose from {', '.join(sorted(WORKLOAD_INDEX))})",
              file=sys.stderr)
        return 2

    from . import CACHE_DIR_ENV
    from .jit_store import NO_JIT_CACHE_ENV
    if args.no_jit_cache:
        # env, not a parameter: pool workers and nested services inherit it
        os.environ[NO_JIT_CACHE_ENV] = "1"
    service = None
    if not args.no_daemon:
        service = maybe_daemon_service(args.socket, max_workers=args.jobs)
        if service is None and args.socket:
            # an explicit socket that does not answer is an error, not a
            # silent in-process run
            try:
                discover_client(args.socket, require=True)
            except DaemonUnavailable as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    if service is not None:
        print(f"using compilation daemon at {service.socket_spec}",
              file=sys.stderr)
    else:
        cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV) or None
        service = CompileService(ArtifactCache(cache_dir=cache_dir),
                                 max_workers=args.jobs)
    result = run_tables(tables=args.tables, service=service,
                        max_workers=args.jobs, benchmarks=args.benchmarks,
                        engine=args.engine,
                        incremental=not args.no_incremental)

    if not args.quiet:
        for name, table in result["tables"].items():
            print(f"== {name} ==")
            print(format_table(table))
            print()

    batch = result["batch"]
    counters = result["counters"]
    elapsed = result["elapsed_s"]
    print(f"batch: {batch.submitted} jobs submitted, {batch.unique} unique, "
          f"{batch.cache_hits} cache hits, {batch.executed} compiled "
          f"({batch.pool_executed} in {batch.workers} workers)")
    print(f"cache: {counters['hits']} hits "
          f"({counters['memory_hits']} memory / {counters['disk_hits']} disk), "
          f"{counters['misses']} misses, "
          f"{counters['recompilations']} recompilations")
    fn = result["function_counters"]
    print(f"functions: {fn['hits']}/{fn['lookups']} stage hits "
          f"(rate {fn['hit_rate']:.2f}), {fn['stores']} stored")
    jt = result["jit_counters"]
    print(f"jit: {jt['hits']}/{jt['lookups']} translation hits "
          f"(rate {jt['hit_rate']:.2f}), {jt['stores']} stored")
    print(f"time:  batch {elapsed['batch']:.2f}s + tables "
          f"{elapsed['tables']:.2f}s = {elapsed['total']:.2f}s")
    for workload, error in batch.failures:
        print(f"note: {workload} did not compile: {error}", file=sys.stderr)

    if args.summary:
        summary = {
            "tables": {name: table.measured_matrix()
                       for name, table in result["tables"].items()},
            "batch": batch.as_dict(),
            "counters": counters,
            "function_counters": fn,
            "jit_counters": jt,
            "elapsed_s": elapsed,
        }
        with open(args.summary, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.summary}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from . import CACHE_DIR_ENV
    from .client import resolve_socket_spec
    from .jit_store import NO_JIT_CACHE_ENV

    logging.basicConfig(level=logging.INFO,
                        format="%(asctime)s %(name)s: %(message)s")
    # the daemon's own compiles (and its pool workers) must never try to
    # route through a daemon
    os.environ[NO_DAEMON_ENV] = "1"
    if args.no_jit_cache:
        os.environ[NO_JIT_CACHE_ENV] = "1"
    byte_budget = None
    if args.byte_budget is not None:
        try:
            byte_budget = parse_byte_size(args.byte_budget)
        except ValueError as exc:
            print(f"error: --byte-budget: {exc}", file=sys.stderr)
            return 2
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV) or None
    socket_spec = resolve_socket_spec(args.socket)
    service = CompileService(
        ArtifactCache(cache_dir=cache_dir, byte_budget=byte_budget),
        max_workers=max(1, args.jobs))
    store = "memory only" if cache_dir is None else cache_dir
    print(f"compile daemon: socket {socket_spec}, cache {store}, "
          f"{service.max_workers} worker(s); stop with "
          f"`python -m repro.service shutdown --socket {socket_spec}`",
          flush=True)
    try:
        serve_forever(service, socket_spec)
    except DaemonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted; daemon socket removed", file=sys.stderr)
    return 0


def _daemon_command(args: argparse.Namespace, op: str) -> int:
    try:
        client = discover_client(args.socket, require=True)
    except DaemonUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if op == "ping":
            pong = client.ping()
            print(f"daemon alive at {client.socket_spec}: "
                  f"pid {pong['pid']}, key schema v{pong['schema']}, "
                  f"up {pong['uptime_s']}s")
        elif op == "metrics":
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        elif op == "shutdown":
            response = client.shutdown()
            print(f"daemon at {client.socket_spec} "
                  f"(pid {response['pid']}) shutting down")
    except (DaemonUnavailable, DaemonRequestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run-tables":
        return _cmd_run_tables(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command in ("ping", "metrics", "shutdown"):
        return _daemon_command(args, args.command)
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    sys.exit(main())
