"""Function-granular incremental compilation: the per-function stage store.

:class:`FunctionArtifactStore` memoises the result of running a
``func.func``-anchored pass nest over one function, keyed by the function's
structural fingerprint salted with the nest's pipeline text (computed in
:mod:`repro.ir.pass_manager`) and the service-wide
:data:`~repro.service.jobs.KEY_SCHEMA_VERSION`.  Recompiling a module where
one function changed then replays every untouched function from the store
— splicing a clone of the optimised form — and re-runs the pipeline only
on the changed one.

Two tiers, mirroring :class:`~repro.service.cache.ArtifactCache`:

* a **live tier**: an LRU of detached optimised function ops; hits clone
  (cloning is cheaper than a pickle round trip, and clones are guaranteed
  fresh uids);
* optionally the shared **artifact cache** (memory LRU + sharded disk
  store): function payloads are pickled via :mod:`repro.ir.serial` and
  stored base64-encoded next to whole-module artifacts, so a persistent
  cache directory (or a long-lived daemon) reuses functions across
  processes and restarts.

The store implements the duck-typed ``lookup``/``store`` protocol of
:class:`repro.ir.pass_manager.PipelineSettings.function_cache`.
"""

from __future__ import annotations

import base64
import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.core import Operation
from ..ir.pass_manager import PassTiming
from ..ir.serial import dumps_op, loads_op
from . import faults
from .cache import ArtifactCache

#: Default size of the live-function LRU tier (functions, not bytes).
DEFAULT_FUNCTION_ENTRIES = 256


@dataclass
class FunctionCacheCounters:
    """Function-level hit/miss accounting (daemon ``metrics`` material)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "hits": self.hits, "lookups": self.lookups,
                "hit_rate": round(self.hit_rate, 4)}


def _address(fingerprint: str) -> str:
    """Content address for one function-stage artifact.

    Mixes the schema salt in *again* (the fingerprint already carries the
    pipeline salt) so a :data:`KEY_SCHEMA_VERSION` bump retires function
    artifacts exactly like whole-module ones, and keeps the address space
    disjoint from job artifacts sharing the same :class:`ArtifactCache`.
    """
    from .jobs import KEY_SCHEMA_VERSION
    blob = json.dumps({"kind": "function-stage",
                       "schema": KEY_SCHEMA_VERSION,
                       "fingerprint": fingerprint},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class FunctionArtifactStore:
    """Per-function pipeline-stage memoisation with optional persistence."""

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 memory_entries: int = DEFAULT_FUNCTION_ENTRIES):
        self._live: "OrderedDict[str, Tuple[Operation, Tuple[PassTiming, ...]]]" \
            = OrderedDict()
        self._memory_entries = max(1, memory_entries)
        self._lock = Lock()
        self._cache = cache
        self.counters = FunctionCacheCounters()

    @property
    def cache(self) -> Optional[ArtifactCache]:
        return self._cache

    def attach_cache(self, cache: Optional[ArtifactCache]) -> None:
        """Bind (or unbind) the shared artifact cache used for persistence."""
        self._cache = cache

    # ---------------------------------------------------------------- lookup
    def lookup(self, fingerprint: str
               ) -> Optional[Tuple[Operation, Tuple[PassTiming, ...]]]:
        """A fresh clone of the optimised function for this fingerprint, or
        ``None``.  The returned op is detached and safe to splice."""
        with self._lock:
            entry = self._live.get(fingerprint)
            if entry is not None:
                self._live.move_to_end(fingerprint)
                self.counters.memory_hits += 1
                func, timings = entry
                return func.clone(), timings
        if self._cache is not None:
            payload = self._cache.get(_address(fingerprint))
            payload = faults.corrupt_payload("function.payload.corrupt",
                                             payload, key=fingerprint)
            if payload is not None:
                try:
                    func = loads_op(base64.b64decode(payload["function"]))
                    timings = tuple(
                        PassTiming(pass_name=t["pass"], anchor=t["anchor"],
                                   wall_s=t["wall_s"],
                                   ops_before=t["ops_before"],
                                   ops_after=t["ops_after"])
                        for t in payload.get("timings", ()))
                except Exception:
                    # stale/corrupt payload (e.g. pre-bump pickle): a miss
                    with self._lock:
                        self.counters.misses += 1
                    return None
                with self._lock:
                    self.counters.disk_hits += 1
                    self._promote(fingerprint, func, timings)
                return func.clone(), timings
        with self._lock:
            self.counters.misses += 1
        return None

    # ----------------------------------------------------------------- store
    def store(self, fingerprint: str, func: Operation,
              timings: Sequence[PassTiming] = ()) -> None:
        """Memoise the optimised ``func`` (a clone is taken; the caller's op
        stays live in its module)."""
        kept = func.clone()
        timings = tuple(timings)
        with self._lock:
            self.counters.stores += 1
            self._promote(fingerprint, kept, timings)
        if self._cache is not None:
            try:
                payload = {
                    "kind": "function-stage",
                    "function": base64.b64encode(dumps_op(kept)).decode(),
                    "timings": [t.as_dict() for t in timings],
                }
            except Exception:
                return   # unpicklable IR: live tier still serves it
            self._cache.put(_address(fingerprint), payload)

    def _promote(self, fingerprint: str, func: Operation,
                 timings: Tuple[PassTiming, ...]) -> None:
        self._live[fingerprint] = (func, timings)
        self._live.move_to_end(fingerprint)
        while len(self._live) > self._memory_entries:
            self._live.popitem(last=False)

    # ----------------------------------------------------------------- admin
    def __len__(self) -> int:
        with self._lock:
            return len(self._live)

    def clear(self) -> None:
        with self._lock:
            self._live.clear()


# ---------------------------------------------------------------------------
# Process-wide store
# ---------------------------------------------------------------------------

_PROCESS_STORE: Optional[FunctionArtifactStore] = None
_PROCESS_LOCK = Lock()


def get_function_store() -> FunctionArtifactStore:
    """The process-wide store every in-process compile shares by default.

    Memory-only until a :class:`~repro.service.scheduler.CompileService`
    binds it to its artifact cache (then per-function stages persist in the
    same sharded store as whole-module artifacts).
    """
    global _PROCESS_STORE
    with _PROCESS_LOCK:
        if _PROCESS_STORE is None:
            _PROCESS_STORE = FunctionArtifactStore()
        return _PROCESS_STORE


def snapshot_counters() -> Dict[str, int]:
    """Raw counter snapshot of the process store (for worker deltas)."""
    counters = get_function_store().counters
    return {"memory_hits": counters.memory_hits,
            "disk_hits": counters.disk_hits,
            "misses": counters.misses, "stores": counters.stores}


def counters_delta(before: Dict[str, int]) -> Dict[str, int]:
    after = snapshot_counters()
    return {key: after[key] - before.get(key, 0) for key in after}


__all__ = ["FunctionArtifactStore", "FunctionCacheCounters",
           "DEFAULT_FUNCTION_ENTRIES", "get_function_store",
           "snapshot_counters", "counters_delta"]
