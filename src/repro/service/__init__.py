"""Compilation service: persistent content-addressed cache + job scheduler.

Every experiment measurement routes through one :class:`CompileService`
(the *default service* of the process), so identical (workload, flow,
options) executions are compiled and interpreted exactly once — across
adapter instances, across tables, and (with a cache directory) across
process invocations:

* :mod:`repro.service.cache` — two-tier artifact cache (memory LRU + the
  sharded disk store of :mod:`repro.service.sharded`),
* :mod:`repro.service.jobs` — compile jobs and their content-addressed keys,
* :mod:`repro.service.scheduler` — cache-aware execution and parallel fanout,
* :mod:`repro.service.tables` — batch API regenerating the paper's tables,
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the long-lived
  compilation daemon (``python -m repro.service serve``) and its clients,
* ``python -m repro.service run-tables`` — the CLI over the batch API.

Set ``REPRO_CACHE_DIR`` to give the default service a persistent store.
When a daemon is running (``$REPRO_DAEMON_SOCKET``, or the default
per-user socket), the default service transparently routes compiles
through it; with no daemon anything using the default service behaves
exactly as before.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from .cache import ArtifactCache, CacheCounters
from .client import (NO_DAEMON_ENV, SOCKET_ENV, DaemonBackedService,
                     DaemonClient, DaemonUnavailable, default_socket_path,
                     discover_client, maybe_daemon_service)
from .daemon import CompileDaemon, DaemonError, serve_forever
from .jobs import (KEY_SCHEMA_VERSION, CompiledArtifact, CompileJob,
                   ServiceError, execute_spec, run_job)
from .scheduler import BatchReport, CompileService
from .serialization import stats_from_dict, stats_to_dict
from .tables import ALL_TABLES, enumerate_jobs, jobs_for, run_tables

#: Environment variable pointing the default service at a persistent store.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_default_service: Optional[CompileService] = None


def get_default_service() -> CompileService:
    """The process-wide service every compiler adapter routes through.

    Prefers a running compilation daemon (discovered via
    ``$REPRO_DAEMON_SOCKET`` or the default per-user socket path) and
    falls back to the classic in-process service when none is running.
    """
    global _default_service
    if _default_service is None:
        _default_service = maybe_daemon_service()
    if _default_service is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        _default_service = CompileService(ArtifactCache(cache_dir=cache_dir))
    return _default_service


def set_default_service(service: Optional[CompileService]) -> None:
    """Replace the process-wide service (``None`` resets to lazy default)."""
    global _default_service
    _default_service = service


@contextmanager
def use_service(service: CompileService) -> Iterator[CompileService]:
    """Temporarily install ``service`` as the default service."""
    global _default_service
    previous = _default_service
    _default_service = service
    try:
        yield service
    finally:
        _default_service = previous


__all__ = [
    "ArtifactCache", "CacheCounters", "BatchReport", "CompileService",
    "CompileJob", "CompiledArtifact", "ServiceError", "run_job",
    "execute_spec", "stats_to_dict", "stats_from_dict", "KEY_SCHEMA_VERSION",
    "ALL_TABLES", "jobs_for", "enumerate_jobs", "run_tables",
    "get_default_service", "set_default_service", "use_service",
    "CACHE_DIR_ENV",
    "CompileDaemon", "DaemonError", "serve_forever",
    "DaemonClient", "DaemonBackedService", "DaemonUnavailable",
    "default_socket_path", "discover_client", "maybe_daemon_service",
    "SOCKET_ENV", "NO_DAEMON_ENV",
]
