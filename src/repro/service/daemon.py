"""Long-lived compilation daemon: async batch API over a warm service.

``python -m repro.service serve --socket <path>`` runs one
:class:`CompileDaemon` around a process-wide :class:`CompileService`, so
every CLI in every process shares one warm in-memory LRU, one sharded disk
store and one scheduler pool instead of cold-starting per invocation.

Protocol: newline-delimited JSON over a unix socket (or localhost TCP via
``tcp:HOST:PORT`` socket specs), stdlib only.  Requests are
``{"id": n, "op": ..., ...}``; every response carries the request id and an
``"ok"`` flag.  Operations:

* ``ping``           — liveness + pid + key schema version,
* ``execute``        — one job spec, returns its artifact payload,
* ``compile_batch``  — many specs, returns payloads in submission order,
* ``metrics``        — hit rate, queue depth, in-flight coalesced count,
  evictions, per-flow compile-latency percentiles,
* ``shutdown``       — acknowledge, then stop serving and remove the socket.

**Request coalescing**: the daemon keeps one future per in-flight cache
key.  A job whose key is already compiling — whether from the same batch,
another batch, or another client — awaits that future instead of submitting
a second compile, so N identical concurrent submissions cost exactly one
scheduler execution.  All coalescing state lives on the event loop; the
actual compiles run through :meth:`CompileService.submit` (process-pool
fanout and all) on a thread executor, so the loop stays responsive to
pings and further batches while compiles are in flight.

Artifacts are produced by the very same :func:`repro.service.jobs.run_job`
the in-process path uses, so daemon-served payloads are bit-identical to
local ones.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import socket
import time
from collections import deque
from functools import partial
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from . import faults
from .jobs import KEY_SCHEMA_VERSION, CompiledArtifact, CompileJob
from .scheduler import BatchReport, CompileService

logger = logging.getLogger(__name__)

#: Upper bound on one protocol line.  Artifacts embed whole-module IR text,
#: so the asyncio default (64 KiB) is far too small.
MAX_LINE_BYTES = 1 << 26

#: Per-flow latency samples kept for the percentile report.
LATENCY_WINDOW = 4096

#: ``tcp:HOST:PORT`` socket specs select TCP instead of a unix socket.
TCP_PREFIX = "tcp:"

#: Seconds a shutting-down daemon waits for in-flight compiles to finish
#: before tearing down connections (drain-then-exit semantics).
DRAIN_TIMEOUT_S = 30.0


class DaemonError(RuntimeError):
    """Daemon lifecycle failure (socket in use, bad socket spec, ...)."""


def parse_socket_spec(spec: str) -> Tuple[str, Any]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from a socket spec."""
    if spec.startswith(TCP_PREFIX):
        rest = spec[len(TCP_PREFIX):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise DaemonError(
                f"bad TCP socket spec {spec!r} (expected tcp:HOST:PORT)")
        return "tcp", (host, int(port))
    return "unix", spec


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class DaemonMetrics:
    """Counters and latency windows behind the ``metrics`` operation."""

    def __init__(self):
        self.started = time.time()
        self.requests: Dict[str, int] = {}
        self.jobs = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.compiled = 0
        self.failures = 0
        self.batches = 0
        self.corrupt_payloads = 0
        self.last_batch: Dict[str, Any] = {}
        self._latency: Dict[str, Deque[float]] = {}

    def count_request(self, op: str) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1

    def record_latency(self, flow: str, seconds: float) -> None:
        window = self._latency.setdefault(flow,
                                          deque(maxlen=LATENCY_WINDOW))
        window.append(seconds)

    @property
    def hit_rate(self) -> float:
        served = self.cache_hits + self.coalesced + self.compiled
        return self.cache_hits / served if served else 0.0

    def latency_percentiles(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for flow, window in sorted(self._latency.items()):
            samples = list(window)
            out[flow] = {"count": len(samples),
                         "p50_s": round(_percentile(samples, 0.50), 6),
                         "p90_s": round(_percentile(samples, 0.90), 6),
                         "p99_s": round(_percentile(samples, 0.99), 6)}
        return out


class CompileDaemon:
    """The asyncio server around one warm :class:`CompileService`."""

    def __init__(self, service: CompileService, socket_spec: str):
        self.service = service
        self.socket_spec = socket_spec
        self.metrics = DaemonMetrics()
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._inflight_waiters: Dict[str, int] = {}
        self._queued = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: "set[asyncio.Task]" = set()
        self._signals: List[int] = []

    # -------------------------------------------------------------- lifetime
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        kind, address = parse_socket_spec(self.socket_spec)
        if kind == "tcp":
            host, port = address
            self._server = await asyncio.start_server(
                self._serve_client, host=host, port=port,
                limit=MAX_LINE_BYTES)
        else:
            self._claim_unix_socket(address)
            self._server = await asyncio.start_unix_server(
                self._serve_client, path=address, limit=MAX_LINE_BYTES)
        self._install_signal_handlers()
        logger.info("compile daemon listening on %s (pid %d)",
                    self.socket_spec, os.getpid())

    def _install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT take the same clean path as the ``shutdown`` verb:
        drain in-flight compiles, close connections, unlink the socket — a
        supervisor's ``kill`` never leaves a stale socket behind.  Guarded:
        signal handlers only install on the main thread (tests run daemons
        on worker threads) and on loops that support them."""
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return
            self._signals.append(signum)

    @staticmethod
    def _claim_unix_socket(path: str) -> None:
        """Bind-or-die semantics with stale-socket cleanup.

        A leftover socket file from a killed daemon is silently removed; a
        *live* daemon on the same path is a hard error.
        """
        if not os.path.exists(path):
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # stale: nobody is listening
        else:
            raise DaemonError(
                f"a daemon is already listening on {path}; stop it first "
                f"(python -m repro.service shutdown --socket {path})")
        finally:
            probe.close()

    async def serve_until_shutdown(self) -> None:
        """``start()`` + block until a ``shutdown`` request arrives."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for signum in self._signals:
            try:
                self._loop.remove_signal_handler(signum)  # type: ignore[union-attr]
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        self._signals.clear()
        # drain: executor-side compiles cannot be cancelled, and dropping
        # their futures would strand connected clients mid-batch — wait for
        # in-flight work to reach its waiters before tearing anything down
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            logger.info("draining %d in-flight compile(s) before shutdown",
                        len(pending))
            await asyncio.wait(pending, timeout=DRAIN_TIMEOUT_S)
        # unblock handlers parked on readline so no task is torn down
        # mid-await when the loop exits
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        kind, address = parse_socket_spec(self.socket_spec)
        if kind == "unix":
            try:
                os.unlink(address)
            except OSError:
                pass

    # ------------------------------------------------------------ connection
    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._respond(writer, {
                        "id": None, "ok": False,
                        "error": "request exceeds the protocol line limit"})
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                if response.pop("_fault_drop", False):
                    # injected daemon death mid-response: abort the
                    # transport so the client sees a torn connection
                    writer.transport.abort()
                    break
                await self._respond(writer, response)
                if response.get("shutdown"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # daemon shutting down while this client idled
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter,
                       response: Dict[str, Any]) -> None:
        writer.write(json.dumps(response,
                                separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request is not an object")
        except ValueError as exc:
            return {"id": None, "ok": False, "error": f"bad request: {exc}"}
        request_id = request.get("id")
        op = request.get("op")
        self.metrics.count_request(str(op))
        try:
            handler = {
                "ping": self._op_ping,
                "metrics": self._op_metrics,
                "shutdown": self._op_shutdown,
                "execute": self._op_execute,
                "compile_batch": self._op_compile_batch,
            }.get(op)
            if handler is None:
                return {"id": request_id, "ok": False,
                        "error": f"unknown operation {op!r}"}
            response = await handler(request)
        except Exception as exc:   # a bad request must never kill the daemon
            logger.exception("request %r failed", op)
            return {"id": request_id, "ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        rule = faults.check("daemon.response.slow",
                            key=f"{op}:{request_id}")
        if rule is not None:
            await asyncio.sleep(rule.delay)
        if faults.check("daemon.response.drop",
                        key=f"{op}:{request_id}") is not None:
            response["_fault_drop"] = True
        response.setdefault("ok", True)
        response["id"] = request_id
        return response

    # ------------------------------------------------------------ operations
    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "pid": os.getpid(),
                "schema": KEY_SCHEMA_VERSION,
                "uptime_s": round(time.time() - self.metrics.started, 3)}

    async def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"shutdown": True, "pid": os.getpid()}

    async def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        m = self.metrics
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.time() - m.started, 3),
            "requests": dict(m.requests),
            "jobs": m.jobs,
            "batches": m.batches,
            "cache_hits": m.cache_hits,
            "coalesced": m.coalesced,
            "compiled": m.compiled,
            "failures": m.failures,
            "hit_rate": round(m.hit_rate, 4),
            "queue_depth": self._queued,
            "inflight": len(self._inflight),
            "inflight_coalesced": sum(self._inflight_waiters.values()),
            "last_batch": dict(m.last_batch),
            "latency_s": m.latency_percentiles(),
            "cache": self.service.cache.stats(),
            "recompilations": self.service.recompilations,
            # scheduler fault tolerance: retries, watchdog timeouts, pool
            # rebuilds and quarantined poison jobs (plus wire-level corrupt
            # payloads this daemon refused to serve)
            "self_heal": dict(self.service.self_heal_counters(),
                              daemon_corrupt_payloads=m.corrupt_payloads),
            # function-granular incremental compilation hit rates (this
            # process's store + pool-worker deltas)
            "function_cache": self.service.function_counters(),
            # persistent jit translation-cache traffic, same aggregation
            "jit_cache": self.service.jit_counters(),
        }

    async def _op_execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        spec = request.get("spec")
        if not isinstance(spec, dict):
            raise ValueError("execute needs a job 'spec' object")
        payloads, sources, _ = await self._compile_specs([spec])
        return {"artifact": payloads[0], "cached": sources[0] == "hit"}

    async def _op_compile_batch(self,
                                request: Dict[str, Any]) -> Dict[str, Any]:
        specs = request.get("specs")
        if not isinstance(specs, list):
            raise ValueError("compile_batch needs a 'specs' list")
        payloads, sources, report = await self._compile_specs(specs)
        return {"artifacts": payloads, "sources": sources, "report": report}

    # ------------------------------------------------------------ coalescing
    def _validated(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` when missing *or*
        malformed.  A corrupt entry (torn write survivor, foreign writer,
        injected fault) must trigger a recompile, never cross the wire."""
        payload = self.service.cache.get(key)
        if payload is None:
            return None
        try:
            CompiledArtifact.from_payload(payload)
        except Exception:
            self.metrics.corrupt_payloads += 1
            logger.warning("dropping corrupt cached artifact %s…; "
                           "recompiling", key[:16])
            return None
        return payload

    async def _compile_specs(
            self, specs: Sequence[Dict[str, Any]]
    ) -> Tuple[List[Dict[str, Any]], List[str], Dict[str, Any]]:
        """Serve a batch of job specs with in-flight coalescing.

        Returns payloads and their provenance (``hit`` / ``coalesced`` /
        ``compiled``) in submission order, plus a batch report dict.
        """
        assert self._loop is not None
        jobs = [CompileJob.from_spec(spec) for spec in specs]
        keys = [job.safe_key() for job in jobs]
        self.metrics.jobs += len(jobs)
        self.metrics.batches += 1

        ready: Dict[str, Dict[str, Any]] = {}
        sources: Dict[str, str] = {}
        waiters: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        fresh: Dict[str, CompileJob] = {}
        for job, key in zip(jobs, keys):
            if key in ready or key in waiters or key in fresh:
                continue  # intra-batch duplicate: one lookup serves all
            payload = self._validated(key)
            if payload is not None:
                ready[key] = payload
                sources[key] = "hit"
                self.metrics.cache_hits += 1
            elif key in self._inflight:
                waiters[key] = self._inflight[key]
                sources[key] = "coalesced"
                self.metrics.coalesced += 1
                self._inflight_waiters[key] = \
                    self._inflight_waiters.get(key, 0) + 1
            else:
                future = self._loop.create_future()
                self._inflight[key] = future
                fresh[key] = job
                sources[key] = "compiled"

        report = {"submitted": len(jobs), "unique": len(sources),
                  "hits": sum(1 for s in sources.values() if s == "hit"),
                  "coalesced": sum(1 for s in sources.values()
                                   if s == "coalesced"),
                  "compiled": len(fresh)}
        if fresh:
            scheduled = {key: self._inflight[key] for key in fresh}
            await self._run_batch(fresh)
            for key, future in scheduled.items():
                ready[key] = await future
        for key, future in waiters.items():
            ready[key] = await future
        self.metrics.last_batch = report
        payloads = [ready[key] for key in keys]
        self.metrics.failures += sum(1 for p in payloads if not p.get("ok"))
        return payloads, [sources[key] for key in keys], report

    async def _run_batch(self, fresh: Dict[str, CompileJob]) -> None:
        """Execute this batch's non-coalesced misses on the scheduler."""
        assert self._loop is not None
        jobs = list(fresh.values())
        self._queued += len(jobs)
        try:
            report: BatchReport = await self._loop.run_in_executor(
                None, partial(self.service.submit, jobs))
        except Exception as exc:
            for key in fresh:
                future = self._inflight.pop(key, None)
                self._inflight_waiters.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(
                        RuntimeError(f"batch execution failed: {exc}"))
            raise
        finally:
            self._queued -= len(jobs)
        self.metrics.compiled += len(jobs)
        for key, job in fresh.items():
            elapsed = report.timings.get(key)
            if elapsed is not None:
                self.metrics.record_latency(job.flow, elapsed)
            payload = self._validated(key)
            future = self._inflight.pop(key, None)
            self._inflight_waiters.pop(key, None)
            if future is None or future.done():
                continue
            if payload is None:
                future.set_exception(RuntimeError(
                    f"scheduler did not produce an artifact for {key}"))
            else:
                future.set_result(payload)


def serve_forever(service: CompileService, socket_spec: str) -> None:
    """Blocking entry point: run a daemon until it is asked to shut down."""
    daemon = CompileDaemon(service, socket_spec)
    asyncio.run(daemon.serve_until_shutdown())


__all__ = ["CompileDaemon", "DaemonError", "DaemonMetrics", "MAX_LINE_BYTES",
           "DRAIN_TIMEOUT_S", "parse_socket_spec", "serve_forever"]
