"""Deterministic fault injection for the compilation service stack.

Every fragile operation in the service — shard reads and writes, payload
deserialisation, pool-worker execution, the daemon socket protocol — calls a
named **injection site** (:func:`check` or one of the ``maybe_*`` helpers).
With no plan armed the call is a single module-global boolean test, so the
production path pays nothing.  Arming a :class:`FaultPlan` makes selected
sites misbehave *deterministically*: whether a site fires is a pure function
of ``(plan seed, site name, context key, attempt)``, never of process-local
RNG state or call ordering, so

* an observed failure sequence is replayable bit-for-bit from its seed,
* pool workers (which re-parse the plan from ``$REPRO_FAULTS``) make the
  very same decisions the parent would, and
* a retry with a bumped ``attempt`` re-rolls the decision, which is how a
  plan expresses "crash the first attempt, let the retry through"
  (``attempt=0`` in the rule).

Spec syntax (``$REPRO_FAULTS`` or :meth:`FaultPlan.from_spec`)::

    seed=42;worker.crash:p=1,key=jacobi,attempt=0;sharded.write.torn:p=0.1

``;`` separates rules, the first ``seed=N`` entry seeds the plan, and each
rule is ``<site-pattern>:param=value,...`` with

* ``p``       — firing probability in [0, 1] (deterministic hash threshold),
* ``key``     — only contexts whose key contains this substring match,
* ``attempt`` — only this attempt number matches (``*``/absent: any),
* ``delay``   — seconds for hang/slow sites (default 30).

Site patterns are :mod:`fnmatch` globs (``sharded.*`` arms every store
site).  The canonical site names are listed in :data:`KNOWN_SITES`.

Arming: :func:`install` (a context manager) arms a plan for the current
thread *and* exports it to ``$REPRO_FAULTS`` so process pools spawned inside
the block inherit it; workers arm themselves from the environment on first
use.  ``REPRO_FAULTS`` alone (no :func:`install`) also works — that is how
the chaos sweep drives whole CLI invocations.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Environment variable carrying a fault-plan spec (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Every injection site threaded through the service stack, with the layer
#: that hosts it.  ``check`` accepts unknown names (plans may predate code),
#: but tests assert the documented surface stays honest.
KNOWN_SITES: Dict[str, str] = {
    "sharded.write.torn": "sharded.py — publish a truncated shard file",
    "sharded.read.error": "sharded.py — shard read raises OSError",
    "sharded.payload.corrupt": "sharded.py — entry mangled before checksum",
    "cache.payload.corrupt": "cache.py — disk-tier payload mangled",
    "function.payload.corrupt": "incremental.py — stage payload mangled",
    "jit.payload.corrupt": "jit_store.py — translation payload mangled",
    "worker.crash": "jobs.py — pool worker dies with os._exit",
    "worker.hang": "jobs.py — pool worker sleeps past the job timeout",
    "client.send.drop": "client.py — connection lost before the request",
    "client.recv.drop": "client.py — connection lost awaiting the response",
    "daemon.response.drop": "daemon.py — daemon closes without responding",
    "daemon.response.slow": "daemon.py — daemon delays its response",
}


class FaultSpecError(ValueError):
    """A fault-plan spec string could not be parsed."""


class FaultInjected(RuntimeError):
    """Base class for errors raised by firing injection sites."""


@dataclass(frozen=True)
class FaultRule:
    """One armed misbehaviour: a site pattern plus firing constraints."""

    site: str                            # fnmatch pattern over site names
    p: float = 1.0                       # firing probability
    key: str = ""                        # substring filter on context keys
    attempt: Optional[int] = None        # None: any attempt
    delay: float = 30.0                  # seconds, for hang/slow sites

    def matches(self, site: str, key: str, attempt: int) -> bool:
        if not fnmatch.fnmatchcase(site, self.site):
            return False
        if self.key and self.key not in key:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def to_spec(self) -> str:
        parts = [f"p={self.p:g}"]
        if self.key:
            parts.append(f"key={self.key}")
        if self.attempt is not None:
            parts.append(f"attempt={self.attempt}")
        if self.delay != 30.0:
            parts.append(f"delay={self.delay:g}")
        return f"{self.site}:{','.join(parts)}"


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule` — the unit of replayability."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    #: Site -> number of times a rule fired in *this process* (diagnostics
    #: only; firing decisions never read it).
    fired: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- decisions
    def _fraction(self, site: str, key: str, attempt: int) -> float:
        """Deterministic uniform draw in [0, 1) for one decision point."""
        material = f"{self.seed}\x1f{site}\x1f{key}\x1f{attempt}"
        digest = hashlib.sha256(material.encode()).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, site: str, key: str = "",
               attempt: int = 0) -> Optional[FaultRule]:
        """The first rule that matches *and* wins its probability roll."""
        for rule in self.rules:
            if not rule.matches(site, key, attempt):
                continue
            if rule.p >= 1.0 or self._fraction(site, key, attempt) < rule.p:
                self.fired[site] = self.fired.get(site, 0) + 1
                return rule
        return None

    # ------------------------------------------------------------ spec round trip
    def to_spec(self) -> str:
        return ";".join([f"seed={self.seed}"]
                        + [rule.to_spec() for rule in self.rules])

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        seed = 0
        rules: List[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if chunk.startswith("seed="):
                try:
                    seed = int(chunk[5:])
                except ValueError:
                    raise FaultSpecError(f"bad seed in fault spec: {chunk!r}")
                continue
            site, sep, params = chunk.partition(":")
            if not site:
                raise FaultSpecError(f"empty site in fault spec: {chunk!r}")
            kwargs: Dict[str, Any] = {}
            if sep:
                for pair in params.split(","):
                    pair = pair.strip()
                    if not pair:
                        continue
                    name, eq, value = pair.partition("=")
                    if not eq:
                        raise FaultSpecError(
                            f"bad rule parameter {pair!r} in {chunk!r}")
                    try:
                        if name == "p":
                            kwargs["p"] = float(value)
                        elif name == "key":
                            kwargs["key"] = value
                        elif name == "attempt":
                            kwargs["attempt"] = (None if value == "*"
                                                 else int(value))
                        elif name == "delay":
                            kwargs["delay"] = float(value)
                        else:
                            raise FaultSpecError(
                                f"unknown rule parameter {name!r} "
                                f"in {chunk!r}")
                    except ValueError:
                        raise FaultSpecError(
                            f"bad value for {name!r} in {chunk!r}")
            rules.append(FaultRule(site=site, **kwargs))
        return cls(seed=seed, rules=tuple(rules))

    # ------------------------------------------------------------ chaos plans
    @classmethod
    def random(cls, seed: int) -> "FaultPlan":
        """A randomized-but-replayable recoverable-fault plan for ``seed``.

        Every rule is **recoverable by construction**: worker crashes and
        hangs are confined to attempt 0 (the self-healing scheduler's retry
        then runs clean), store faults degrade to cache misses, and socket
        drops stay under the client's retry budget.  A sweep under any
        ``random`` plan must therefore finish with results bit-identical to
        a fault-free sweep.
        """
        digest = hashlib.sha256(f"chaos-plan:{seed}".encode()).digest()
        menu = [
            FaultRule("sharded.write.torn", p=0.08),
            FaultRule("sharded.read.error", p=0.05),
            FaultRule("sharded.payload.corrupt", p=0.05),
            FaultRule("cache.payload.corrupt", p=0.05),
            FaultRule("function.payload.corrupt", p=0.08),
            FaultRule("jit.payload.corrupt", p=0.08),
            FaultRule("worker.crash", p=0.04, attempt=0),
            FaultRule("worker.hang", p=0.02, attempt=0, delay=2.0),
            FaultRule("client.send.drop", p=0.10, attempt=0),
            FaultRule("client.recv.drop", p=0.10, attempt=0),
        ]
        # pick a deterministic subset (at least three rules) from the menu
        rules = tuple(rule for index, rule in enumerate(menu)
                      if digest[index % len(digest)] % 3 != 0
                      or index in (0, 6, 8))
        return cls(seed=seed, rules=rules)


# ---------------------------------------------------------------------------
# arming
# ---------------------------------------------------------------------------

#: Fast-path gate: ``check`` returns immediately while this is False.  It is
#: flipped by :func:`install` and by environment (re)scans, so a disarmed
#: process pays one boolean test per site.
_MAYBE_ARMED = bool(os.environ.get(FAULTS_ENV))

_ACTIVE: "ContextVar[Optional[FaultPlan]]" = ContextVar("repro_fault_plan",
                                                        default=None)

#: Plan parsed from the environment, cached against the raw spec string so
#: env changes (tests monkeypatching, chaos drivers) are picked up.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def _env_plan() -> Optional[FaultPlan]:
    global _ENV_CACHE, _MAYBE_ARMED
    raw = os.environ.get(FAULTS_ENV) or None
    cached_raw, cached_plan = _ENV_CACHE
    if raw == cached_raw:
        return cached_plan
    plan = FaultPlan.from_spec(raw) if raw else None
    _ENV_CACHE = (raw, plan)
    _MAYBE_ARMED = _MAYBE_ARMED or plan is not None
    return plan


def active_plan() -> Optional[FaultPlan]:
    """The plan governing this context: installed plan first, then env."""
    plan = _ACTIVE.get()
    if plan is not None:
        return plan
    return _env_plan()


@contextmanager
def install(plan: Optional[FaultPlan],
            export: bool = True) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for this context (and, with ``export``, for subprocess
    pools spawned inside the block, via ``$REPRO_FAULTS``)."""
    global _MAYBE_ARMED
    token = _ACTIVE.set(plan)
    previous_env = os.environ.get(FAULTS_ENV)
    previous_armed = _MAYBE_ARMED
    if plan is not None:
        _MAYBE_ARMED = True
        if export:
            os.environ[FAULTS_ENV] = plan.to_spec()
    elif export:
        os.environ.pop(FAULTS_ENV, None)
    try:
        yield plan
    finally:
        _ACTIVE.reset(token)
        if export:
            if previous_env is None:
                os.environ.pop(FAULTS_ENV, None)
            else:
                os.environ[FAULTS_ENV] = previous_env
        _MAYBE_ARMED = previous_armed or bool(os.environ.get(FAULTS_ENV))


def rearm_from_env() -> None:
    """Re-read ``$REPRO_FAULTS`` (pool-worker initialisers call this so a
    plan exported after worker-module import still arms the fast path)."""
    global _MAYBE_ARMED
    _MAYBE_ARMED = _MAYBE_ARMED or bool(os.environ.get(FAULTS_ENV))


# ---------------------------------------------------------------------------
# injection sites
# ---------------------------------------------------------------------------


def check(site: str, key: str = "", attempt: int = 0) -> Optional[FaultRule]:
    """The armed rule firing at this site for this context, or ``None``.

    This is the only entry point sites need; the ``maybe_*`` helpers wrap
    the common behaviours.  Disarmed cost: one global boolean test.
    """
    if not _MAYBE_ARMED:
        return None
    plan = active_plan()
    if plan is None:
        return None
    return plan.decide(site, key=key, attempt=attempt)


def maybe_raise(site: str, key: str = "", attempt: int = 0,
                exc_type: type = FaultInjected) -> None:
    """Raise ``exc_type`` when the site fires."""
    rule = check(site, key=key, attempt=attempt)
    if rule is not None:
        raise exc_type(f"injected fault at {site} (key={key!r}, "
                       f"attempt={attempt})")


def maybe_sleep(site: str, key: str = "", attempt: int = 0) -> bool:
    """Sleep for the rule's ``delay`` when the site fires."""
    rule = check(site, key=key, attempt=attempt)
    if rule is None:
        return False
    time.sleep(rule.delay)
    return True


def maybe_crash(site: str, key: str = "", attempt: int = 0) -> None:
    """Kill this process with ``os._exit`` when the site fires (simulates a
    segfaulting pool worker: no exception crosses the pipe, the executor
    sees :class:`~concurrent.futures.process.BrokenProcessPool`)."""
    if check(site, key=key, attempt=attempt) is not None:
        os._exit(17)


def corrupt_payload(site: str, payload: Any, key: str = "",
                    attempt: int = 0) -> Any:
    """Return a detectably-mangled copy of ``payload`` when the site fires.

    Dict payloads lose their keys' meaning (every consumer must treat that
    as a miss); string payloads are truncated mid-way (torn write).
    """
    if check(site, key=key, attempt=attempt) is None:
        return payload
    if isinstance(payload, dict):
        return {"__fault__": site}
    if isinstance(payload, (str, bytes)):
        return payload[:max(1, len(payload) // 2)]
    return None


__all__ = ["FAULTS_ENV", "KNOWN_SITES", "FaultInjected", "FaultPlan",
           "FaultRule", "FaultSpecError", "active_plan", "check",
           "corrupt_payload", "install", "maybe_crash", "maybe_raise",
           "maybe_sleep", "rearm_from_env"]
