"""Persistent jit translations: the service-side translation store.

:class:`JitTranslationStore` adapts the shared
:class:`~repro.service.cache.ArtifactCache` (memory LRU + sharded disk
store) to the duck-typed ``lookup``/``store``/``contains`` protocol of
:func:`repro.machine.jit.set_translation_store`.  Payloads are the jit's
own format (source of record plus a magic-gated marshal bytecode fast
path); this module only supplies the *addressing*: the block's structural
fingerprint — already salted with :data:`~repro.machine.jit.JIT_FORMAT_VERSION`
and :data:`~repro.machine.semantics.SEMANTICS_VERSION` — is mixed with the
service-wide :data:`~repro.service.jobs.KEY_SCHEMA_VERSION` under a
``jit-translation`` kind, so translations share the sharded store with
whole-module and function-stage artifacts without ever colliding, and a
schema bump retires all three artifact families at once.

The hit/miss/store accounting lives in :mod:`repro.machine.jit` (the only
place that knows whether a payload verified against the regenerated
source); :meth:`repro.service.scheduler.CompileService.jit_counters`
surfaces it, and the daemon's ``metrics`` verb reports it as
``jit_cache``.

``REPRO_NO_JIT_CACHE=1`` (or the ``--no-jit-cache`` CLI flags) is the
kill-switch: :func:`install_jit_store` then leaves the jit cache
process-local, exactly the pre-persistence behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from ..machine import jit as machine_jit
from . import faults
from .cache import ArtifactCache

#: Set to a non-empty value (other than ``0``) to keep jit translations
#: process-local even when a persistent artifact cache is attached.
NO_JIT_CACHE_ENV = "REPRO_NO_JIT_CACHE"


def jit_cache_disabled() -> bool:
    """Has the user switched off the persistent jit tier?"""
    value = os.environ.get(NO_JIT_CACHE_ENV, "")
    return bool(value) and value != "0"


def _address(fingerprint: str) -> str:
    """Content address for one stored translation.

    Mixes the schema salt in *again* (the fingerprint already carries the
    jit-format and semantics salts) so a :data:`KEY_SCHEMA_VERSION` bump
    retires translations exactly like whole-module and function-stage
    artifacts, and keeps the address space disjoint from both in the
    shared :class:`ArtifactCache`.
    """
    from .jobs import KEY_SCHEMA_VERSION
    blob = json.dumps({"kind": "jit-translation",
                       "schema": KEY_SCHEMA_VERSION,
                       "fingerprint": fingerprint},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class JitTranslationStore:
    """Fingerprint-addressed translation payloads in an artifact cache."""

    def __init__(self, cache: ArtifactCache):
        self._cache = cache

    @property
    def cache(self) -> ArtifactCache:
        return self._cache

    def lookup(self, fingerprint: str) -> Optional[Dict]:
        payload = self._cache.get(_address(fingerprint))
        payload = faults.corrupt_payload("jit.payload.corrupt", payload,
                                         key=fingerprint)
        if isinstance(payload, dict) and isinstance(payload.get("source"),
                                                    str):
            return payload
        return None    # corrupt/foreign payload: a miss, never an error

    def store(self, fingerprint: str, payload: Dict) -> None:
        self._cache.put(_address(fingerprint), payload)

    def contains(self, fingerprint: str) -> bool:
        return self._cache.contains(_address(fingerprint))


def install_jit_store(cache: Optional[ArtifactCache]
                      ) -> Optional[JitTranslationStore]:
    """Wire the process's jit cache to ``cache``'s persistent tier.

    Honours the :data:`NO_JIT_CACHE_ENV` kill-switch and only installs a
    store when the cache actually persists (a memory-only cache would add
    lookup overhead for no cross-process benefit).  Returns the installed
    store, or ``None`` when the jit cache stays process-local.
    """
    if cache is None or jit_cache_disabled() or not cache.persistent:
        return None
    store = JitTranslationStore(cache)
    machine_jit.set_translation_store(store)
    return store


__all__ = ["JitTranslationStore", "install_jit_store",
           "jit_cache_disabled", "NO_JIT_CACHE_ENV"]
