"""Compile jobs, content-addressed keys, and in-process job execution.

A :class:`CompileJob` names everything that determines a compiled artifact:
the workload (by registry name + variant kwargs, or an attached
:class:`~repro.workloads.Workload` object), the compiler flow, the pipeline
options and the execution parameters.  Its :meth:`~CompileJob.key` hashes
that material — salted with :data:`KEY_SCHEMA_VERSION` — into the cache
address, and :func:`run_job` performs the actual compile + interpret.

``execute_spec`` is the process-pool entry point: it only ships the
picklable spec dict across the process boundary and returns a JSON payload,
never a live module or a raised exception (worker failures are encoded in
the artifact so the scheduler can tell infrastructure errors apart from
deterministic compilation failures).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..workloads import Workload
from .serialization import stats_from_dict, stats_to_dict

#: Salt mixed into every cache key.  Bump whenever the meaning of cached
#: artifacts changes (interpreter counts, stats schema, pipeline semantics):
#: every previously persisted artifact then simply stops matching.
KEY_SCHEMA_VERSION = 1

#: Known compiler flows.
FLOWS = ("flang", "ours")


class ServiceError(RuntimeError):
    """Raised when a service-run compilation or interpretation failed."""


@dataclass
class CompileJob:
    """One (workload x compiler flow x options) unit of work."""

    flow: str
    workload_name: str
    workload_kwargs: Tuple[Tuple[str, Any], ...] = ()
    vector_width: int = 4
    tile: bool = False
    unroll: int = 0
    threads: int = 1
    gpu: bool = False
    #: Optional live workload; spares a registry lookup and lets callers run
    #: non-registry workloads in-process.  Never crosses a process boundary.
    workload: Optional[Workload] = field(default=None, repr=False, compare=False)
    _key: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------ resolution
    def resolve_workload(self) -> Workload:
        if self.workload is not None:
            return self.workload
        from ..workloads import get_workload
        self.workload = get_workload(self.workload_name,
                                     **dict(self.workload_kwargs))
        return self.workload

    def spec(self) -> Dict[str, Any]:
        """Picklable description, sufficient to re-run in another process."""
        return {"flow": self.flow, "workload_name": self.workload_name,
                "workload_kwargs": tuple(self.workload_kwargs),
                "vector_width": self.vector_width, "tile": self.tile,
                "unroll": self.unroll, "threads": self.threads,
                "gpu": self.gpu}

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "CompileJob":
        spec = dict(spec)
        spec["workload_kwargs"] = tuple(tuple(kv) for kv
                                        in spec.get("workload_kwargs", ()))
        return cls(**spec)

    # ----------------------------------------------------------------- keys
    def pipeline_options(self, workload: Workload) -> Dict[str, Any]:
        """Options actually handed to the flow's pipeline.

        The flang flow takes none, so jobs differing only in (say)
        ``vector_width`` deduplicate to one flang artifact.
        """
        if self.flow != "ours":
            return {}
        return {
            "vector_width": self.vector_width,
            "tile": self.tile,
            "unroll": self.unroll,
            "parallelise": self.threads > 1 and not workload.uses_openmp,
            "gpu": self.gpu or workload.uses_openacc,
        }

    def key_material(self) -> Dict[str, Any]:
        workload = self.resolve_workload()
        return {
            "schema": KEY_SCHEMA_VERSION,
            "flow": self.flow,
            "workload": workload.identity(),
            "pipeline": self.pipeline_options(workload),
            # stats depend on *whether* execution is parallel/offloaded, not
            # on the core count, so thread counts bucket to one artifact
            "execution": {"parallel": self.threads > 1, "gpu": bool(self.gpu)},
        }

    def key(self) -> str:
        if self._key is None:
            blob = json.dumps(self.key_material(), sort_keys=True,
                              separators=(",", ":"))
            self._key = hashlib.sha256(blob.encode()).hexdigest()
        return self._key

    def safe_key(self) -> str:
        """Like :meth:`key`, but unresolvable jobs get a spec-derived key
        instead of raising — matching the failure artifact :func:`run_job`
        produces for them."""
        try:
            return self.key()
        except Exception:
            return _unresolvable_key(self)


@dataclass
class CompiledArtifact:
    """What the cache stores per key: stage IR text + stats + output."""

    key: str
    flow: str
    workload: str
    ok: bool
    stats: Optional[Any] = None          # ExecutionStats when ok
    printed: Tuple[str, ...] = ()
    module_text: str = ""
    error: str = ""
    cached: bool = False                 # set by the service on cache hits

    def to_payload(self) -> Dict[str, Any]:
        return {
            "key": self.key, "flow": self.flow, "workload": self.workload,
            "ok": self.ok,
            "stats": stats_to_dict(self.stats) if self.stats is not None else None,
            "printed": list(self.printed),
            "module_text": self.module_text,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any],
                     cached: bool = False) -> "CompiledArtifact":
        stats = payload.get("stats")
        return cls(key=payload["key"], flow=payload["flow"],
                   workload=payload["workload"], ok=payload["ok"],
                   stats=stats_from_dict(stats) if stats is not None else None,
                   printed=tuple(payload.get("printed", ())),
                   module_text=payload.get("module_text", ""),
                   error=payload.get("error", ""), cached=cached)

    def raise_for_failure(self) -> None:
        if not self.ok:
            raise ServiceError(self.error)


# --------------------------------------------------------------------------
# execution
# --------------------------------------------------------------------------


def _unresolvable_key(job: CompileJob) -> str:
    blob = json.dumps({"schema": KEY_SCHEMA_VERSION, "unresolvable": job.spec()},
                      sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_job(job: CompileJob) -> CompiledArtifact:
    """Compile + interpret one job in this process.

    Deterministic failures (e.g. the flang flow rejecting OpenACC) come back
    as ``ok=False`` artifacts so they are cacheable; this function never
    raises for them.
    """
    from ..ir.printer import print_op
    from ..machine import Interpreter

    try:
        workload = job.resolve_workload()
        key = job.key()
    except Exception as exc:
        # unresolvable spec (unknown registry name, bad kwargs): still an
        # artifact, addressed by a spec-derived key so it is cacheable
        return CompiledArtifact(key=_unresolvable_key(job), flow=job.flow,
                                workload=job.workload_name, ok=False,
                                error=f"{type(exc).__name__}: {exc}")
    try:
        if job.flow == "flang":
            if job.gpu or workload.uses_openacc:
                # Section VI-C: Flang v18 ICEs on OpenACC lowering
                from ..flang import FlangCodegenError
                raise FlangCodegenError(
                    "missing LLVMTranslationDialectInterface for the acc dialect")
            from ..flang import FlangCompiler
            result = FlangCompiler().compile(workload.source(scaled=True),
                                             stop_at="fir")
            module = result.fir_module
        elif job.flow == "ours":
            from ..core import StandardMLIRCompiler
            opts = job.pipeline_options(workload)
            compiler = StandardMLIRCompiler(
                vector_width=opts["vector_width"],
                parallelise=opts["parallelise"], gpu=opts["gpu"],
                tile=opts["tile"], unroll=opts["unroll"])
            result = compiler.compile(workload.source(scaled=True))
            module = result.optimised_module
        else:
            raise ValueError(f"unknown compiler flow {job.flow!r}")
        module_text = print_op(module)
        interpreter = Interpreter(module)
        interpreter.run_main()
        return CompiledArtifact(key=key, flow=job.flow, workload=workload.name,
                                ok=True, stats=interpreter.stats,
                                printed=tuple(interpreter.printed),
                                module_text=module_text)
    except Exception as exc:
        return CompiledArtifact(key=key, flow=job.flow, workload=workload.name,
                                ok=False,
                                error=f"{type(exc).__name__}: {exc}")


def execute_spec(spec: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Process-pool worker: run a job spec, return ``(key, payload)``."""
    artifact = run_job(CompileJob.from_spec(spec))
    return artifact.key, artifact.to_payload()


__all__ = ["CompileJob", "CompiledArtifact", "ServiceError", "run_job",
           "execute_spec", "KEY_SCHEMA_VERSION", "FLOWS"]
