"""Compile jobs, content-addressed keys, and in-process job execution.

A :class:`CompileJob` names everything that determines a compiled artifact:
the workload (by registry name + variant kwargs, or an attached
:class:`~repro.workloads.Workload` object), the compiler flow (by registry
name — see :mod:`repro.flows`), the flow's pipeline options as a dict, and
the execution parameters.  Its :meth:`~CompileJob.key` hashes that material
— salted with :data:`KEY_SCHEMA_VERSION` — into the cache address, and
:func:`run_job` performs the actual compile + interpret by dispatching
through the flow registry: there are no per-flow branches here, so a newly
registered flow is immediately schedulable and cacheable.

``execute_spec`` is the process-pool entry point: it only ships the
picklable spec dict across the process boundary and returns a JSON payload,
never a live module or a raised exception (worker failures are encoded in
the artifact so the scheduler can tell infrastructure errors apart from
deterministic compilation failures).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..flows import ExecutionContext, get_flow
from ..workloads import Workload
from .serialization import stats_from_dict, stats_to_dict

#: Salt mixed into every cache key.  Bump whenever the meaning of cached
#: artifacts changes (interpreter counts, stats schema, pipeline semantics):
#: every previously persisted artifact then simply stops matching.
#: v2: flow-registry dispatch — pipeline options became a flow-normalised
#: dict (including ``tile_size``) instead of fixed CompileJob fields.
#: v3: interpreter numeric-semantics fixes (unsigned cmpi, NaN-aware cmpf,
#: LLVM trunc divsi/remsi) — stats cached under v2 may predate the fixes.
#: v4: execution key material gained the interpreter ``engine``
#: (compiled/reference) so differential conformance runs cache each engine's
#: observables separately.
#: v5: third interpreter engine ``jit`` (trace-compiling); worklist
#: canonicalizer replaced the full-rewalk driver — artifacts now execute on
#: three engines and pipeline outputs are produced by the new driver.
#: v6: fourth interpreter engine ``vector`` (whole-array numpy evaluation
#: of matched loop nests with analytic stats); jit gained an amortization
#: heuristic that falls back to compiled dispatch on cold small blocks.
#: v7: function-granular incremental compilation — the standard flow
#: pipeline re-anchored under one ``func.func(...)`` nest (same passes, new
#: canonical pipeline text) and per-function stage artifacts now share the
#: store; pre-incremental artifacts must read as clean misses.
KEY_SCHEMA_VERSION = 7


class ServiceError(RuntimeError):
    """Raised when a service-run compilation or interpretation failed."""


@dataclass
class CompileJob:
    """One (workload x compiler flow x options) unit of work."""

    flow: str
    workload_name: str
    workload_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Flow pipeline options, sparse: only what differs from the flow
    #: schema's defaults needs to be given.  A dict is accepted and
    #: canonicalised to a sorted tuple of pairs.
    options: Tuple[Tuple[str, Any], ...] = ()
    threads: int = 1
    gpu: bool = False
    #: Interpreter engine the artifact's observables come from ("compiled"
    #: cached-dispatch, "reference" one-op, "jit" trace-compiling, or
    #: "vector" whole-array numpy).
    engine: str = "compiled"
    #: Whether this job's compile may reuse (and feed) the process's
    #: per-function stage store.  Execution strategy, not artifact identity:
    #: incremental and cold compiles are bit-identical by construction, so
    #: this is deliberately absent from :meth:`key_material`.
    incremental: bool = True
    #: Optional live workload; spares a registry lookup and lets callers run
    #: non-registry workloads in-process.  Never crosses a process boundary.
    workload: Optional[Workload] = field(default=None, repr=False, compare=False)
    _key: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self):
        if isinstance(self.options, Mapping):
            self.options = tuple(sorted(self.options.items()))
        else:
            self.options = tuple(sorted(tuple(kv) for kv in self.options))

    # ------------------------------------------------------------ resolution
    def resolve_workload(self) -> Workload:
        if self.workload is not None:
            return self.workload
        from ..workloads import get_workload
        self.workload = get_workload(self.workload_name,
                                     **dict(self.workload_kwargs))
        return self.workload

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def execution(self) -> ExecutionContext:
        return ExecutionContext(threads=self.threads, gpu=self.gpu,
                                engine=self.engine)

    def spec(self) -> Dict[str, Any]:
        """Picklable description, sufficient to re-run in another process."""
        return {"flow": self.flow, "workload_name": self.workload_name,
                "workload_kwargs": tuple(self.workload_kwargs),
                "options": tuple(self.options),
                "threads": self.threads, "gpu": self.gpu,
                "engine": self.engine, "incremental": self.incremental}

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "CompileJob":
        spec = dict(spec)
        spec["workload_kwargs"] = tuple(tuple(kv) for kv
                                        in spec.get("workload_kwargs", ()))
        spec["options"] = tuple(tuple(kv) for kv in spec.get("options", ()))
        return cls(**spec)

    # ----------------------------------------------------------------- keys
    def pipeline_options(self, workload: Workload) -> Dict[str, Any]:
        """The canonical options the flow's pipeline actually receives.

        Normalised by the flow's schema: defaults filled in, options the
        flow does not take dropped (so e.g. flang jobs differing only in
        ``vector_width`` deduplicate to one artifact).
        """
        return get_flow(self.flow).normalise_options(
            self.options_dict(), workload, self.execution())

    def key_material(self) -> Dict[str, Any]:
        workload = self.resolve_workload()
        return {
            "schema": KEY_SCHEMA_VERSION,
            "flow": self.flow,
            "workload": workload.identity(),
            "pipeline": self.pipeline_options(workload),
            # stats depend on *whether* execution is parallel/offloaded, not
            # on the core count, so thread counts bucket to one artifact
            "execution": self.execution().key_material(),
        }

    def key(self) -> str:
        if self._key is None:
            blob = json.dumps(self.key_material(), sort_keys=True,
                              separators=(",", ":"))
            self._key = hashlib.sha256(blob.encode()).hexdigest()
        return self._key

    def safe_key(self) -> str:
        """Like :meth:`key`, but unresolvable jobs (unknown workload, unknown
        flow, bad kwargs) get a spec-derived key instead of raising —
        matching the failure artifact :func:`run_job` produces for them."""
        try:
            return self.key()
        except Exception:
            return _unresolvable_key(self)


@dataclass
class CompiledArtifact:
    """What the cache stores per key: stage IR text + stats + output."""

    key: str
    flow: str
    workload: str
    ok: bool
    stats: Optional[Any] = None          # ExecutionStats when ok
    printed: Tuple[str, ...] = ()
    module_text: str = ""
    #: The textual pass pipeline the flow ran (empty when the flow does not
    #: report one) — lets daemon-served CLI runs echo the same
    #: ``// pipeline:`` line an in-process run prints.
    pipeline: str = ""
    error: str = ""
    cached: bool = False                 # set by the service on cache hits

    def to_payload(self) -> Dict[str, Any]:
        return {
            "key": self.key, "flow": self.flow, "workload": self.workload,
            "ok": self.ok,
            "stats": stats_to_dict(self.stats) if self.stats is not None else None,
            "printed": list(self.printed),
            "module_text": self.module_text,
            "pipeline": self.pipeline,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any],
                     cached: bool = False) -> "CompiledArtifact":
        stats = payload.get("stats")
        return cls(key=payload["key"], flow=payload["flow"],
                   workload=payload["workload"], ok=payload["ok"],
                   stats=stats_from_dict(stats) if stats is not None else None,
                   printed=tuple(payload.get("printed", ())),
                   module_text=payload.get("module_text", ""),
                   pipeline=payload.get("pipeline", ""),
                   error=payload.get("error", ""), cached=cached)

    def raise_for_failure(self) -> None:
        if not self.ok:
            raise ServiceError(self.error)


# --------------------------------------------------------------------------
# execution
# --------------------------------------------------------------------------


def _unresolvable_key(job: CompileJob) -> str:
    blob = json.dumps({"schema": KEY_SCHEMA_VERSION, "unresolvable": job.spec()},
                      sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_job(job: CompileJob) -> CompiledArtifact:
    """Compile + interpret one job in this process.

    Dispatch is entirely through the flow registry.  Deterministic failures
    (an unknown flow name, a capability check rejecting the workload — e.g.
    the flang flow and OpenACC) come back as ``ok=False`` artifacts so they
    are cacheable; this function never raises for them.
    """
    import numpy as np

    try:
        workload = job.resolve_workload()
        flow = get_flow(job.flow)
        key = job.key()
    except Exception as exc:
        # unresolvable spec (unknown registry name, unknown flow, bad
        # kwargs): still an artifact, addressed by a spec-derived key so it
        # is cacheable
        return CompiledArtifact(key=_unresolvable_key(job), flow=job.flow,
                                workload=job.workload_name, ok=False,
                                error=f"{type(exc).__name__}: {exc}")
    # numeric edge cases (deliberate NaNs in conformance kernels) must not
    # spam warnings from pool workers
    with np.errstate(all="ignore"):
        return _run_resolved_job(job, flow, workload, key)


def _run_resolved_job(job: CompileJob, flow, workload,
                      key: str) -> CompiledArtifact:
    from ..ir.pass_manager import pipeline_settings
    from ..ir.printer import print_op
    from ..machine import Interpreter
    from .incremental import get_function_store

    store = get_function_store() if job.incremental else None
    try:
        # the service discards FlowResult.timing, so skip the per-pass
        # timing/IR-size bookkeeping on this hot path
        with pipeline_settings(function_cache=store):
            result = flow.run(workload, job.options_dict(), job.execution(),
                              collect_statistics=False)
        if result.error is not None:
            # flows may encode failure in the result instead of raising
            return CompiledArtifact(key=key, flow=job.flow,
                                    workload=workload.name, ok=False,
                                    error=result.error)
        module = result.module
        module_text = print_op(module)
        interpreter = Interpreter(module, engine=job.execution().engine)
        interpreter.run_main()
        return CompiledArtifact(key=key, flow=job.flow, workload=workload.name,
                                ok=True, stats=interpreter.stats,
                                printed=tuple(interpreter.printed),
                                module_text=module_text,
                                pipeline=result.pipeline or "")
    except Exception as exc:
        return CompiledArtifact(key=key, flow=job.flow, workload=workload.name,
                                ok=False,
                                error=f"{type(exc).__name__}: {exc}")


def execute_spec(spec: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Process-pool worker: run a job spec, return ``(key, payload)``."""
    artifact = run_job(CompileJob.from_spec(spec))
    return artifact.key, artifact.to_payload()


def spec_fault_key(spec: Dict[str, Any]) -> str:
    """Stable, cheap fault-site context key for one job spec (no registry
    resolution, so unresolvable specs key deterministically too)."""
    return (f"{spec.get('flow')}/{spec.get('workload_name')}"
            f"/{spec.get('engine')}")


def execute_spec_timed(
        spec: Dict[str, Any], attempt: int = 0
) -> Tuple[str, Dict[str, Any], float, Dict[str, int], Dict[str, int]]:
    """Like :func:`execute_spec`, plus worker-side compile seconds and the
    function-store and jit-translation counter deltas this job caused.

    The elapsed time is measured inside the worker, so it is pure
    compile+interpret time — pool queueing and pickling are excluded.  All
    extras travel next to the payload, never inside it: cached artifacts
    stay bit-identical whether or not their compile was timed.  The counter
    deltas let the scheduler aggregate function-level and translation-level
    hit rates across pool workers, whose stores are per-process.

    ``attempt`` is the scheduler's retry ordinal for this job; the fault
    sites fold it into their decisions, which is how a plan expresses
    "crash attempt 0, let the requeued attempt run clean".
    """
    import time

    from ..machine.jit import snapshot_translation_counters
    from . import faults
    from .incremental import counters_delta, snapshot_counters

    fault_key = spec_fault_key(spec)
    faults.maybe_crash("worker.crash", key=fault_key, attempt=attempt)
    faults.maybe_sleep("worker.hang", key=fault_key, attempt=attempt)
    before = snapshot_counters()
    jit_before = snapshot_translation_counters()
    started = time.perf_counter()
    key, payload = execute_spec(spec)
    elapsed = time.perf_counter() - started
    jit_after = snapshot_translation_counters()
    jit_delta = {name: jit_after[name] - jit_before.get(name, 0)
                 for name in jit_after}
    return key, payload, elapsed, counters_delta(before), jit_delta


__all__ = ["CompileJob", "CompiledArtifact", "ServiceError", "run_job",
           "execute_spec", "execute_spec_timed", "spec_fault_key",
           "KEY_SCHEMA_VERSION"]
