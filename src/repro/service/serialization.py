"""Bit-exact (de)serialization of execution statistics.

The cost model consumes raw dynamic operation counts, so a cached
:class:`~repro.machine.ExecutionStats` must survive the disk round trip
*exactly*: Python serialises floats via ``repr`` (shortest round-tripping
form), so JSON is loss-free for every finite count the interpreter can
produce.  NumPy scalars are narrowed to the equivalent Python ``int`` /
``float`` (a value-preserving conversion) before encoding.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict

import numpy as np

from ..machine import ExecutionStats

#: Scalar fields copied verbatim between ExecutionStats and its payload.
_SCALAR_FIELDS = ("parallel_loop_iterations", "parallel_regions",
                  "gpu_kernel_launches", "gpu_threads", "total_ops")


def _scalar(value: Any):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _counter_dict(counter: Counter) -> Dict[str, Any]:
    return {str(k): _scalar(v) for k, v in counter.items()}


def stats_to_dict(stats: ExecutionStats) -> Dict[str, Any]:
    """Encode stats as a JSON-serialisable dict."""
    payload: Dict[str, Any] = {
        "counts": {ctx: _counter_dict(ctr) for ctx, ctr in stats.counts.items()},
        "runtime_calls": _counter_dict(stats.runtime_calls),
        "runtime_elements": _counter_dict(stats.runtime_elements),
    }
    for name in _SCALAR_FIELDS:
        payload[name] = _scalar(getattr(stats, name))
    return payload


def stats_from_dict(payload: Dict[str, Any]) -> ExecutionStats:
    """Rebuild stats from :func:`stats_to_dict` output."""
    stats = ExecutionStats()
    stats.counts = defaultdict(Counter)
    for ctx, cats in payload["counts"].items():
        stats.counts[ctx] = Counter(cats)
    stats.runtime_calls = Counter(payload["runtime_calls"])
    stats.runtime_elements = Counter(payload["runtime_elements"])
    for name in _SCALAR_FIELDS:
        setattr(stats, name, payload[name])
    return stats


__all__ = ["stats_to_dict", "stats_from_dict"]
