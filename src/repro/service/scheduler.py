"""The compilation service: cache-aware job execution and batch fanout.

:class:`CompileService` is the one entry point every measurement takes:

* :meth:`~CompileService.execute` — single job, cache-first, in-process on a
  miss.  This is what the compiler adapters call.
* :meth:`~CompileService.submit` — a batch of jobs; duplicates and cache
  hits are stripped, the remaining misses fan out over a
  ``concurrent.futures`` process pool (falling back to in-process execution
  if worker processes are unavailable or die).

The service counts every recompilation it performs, so "a warm run
recompiles nothing" is directly assertable: run the flow twice and check
``service.recompilations`` did not move.

**Self-healing pool execution**: the process-pool path survives worker
crashes and hung compiles instead of aborting batches.  A watchdog kills a
pool that has made no progress for ``job_timeout`` seconds and requeues the
unfinished jobs; a :class:`~concurrent.futures.process.BrokenProcessPool`
(one worker dying nukes every sibling future) rebuilds the pool and retries
the survivors; after two broken pool generations the scheduler escalates to
**isolation mode** — one job per single-worker pool — so the crashing job is
identified precisely and its innocent batch-mates complete.  A job that
still crashes or times out after ``max_attempts`` attempts is **quarantined**:
an ``ok=False`` poison artifact is cached under its key (``poisoned: True``)
so one pathological kernel fails fast forever instead of taking fresh
batches down with it.  Crash-driven quarantines persist to the shared disk
store; timeout-driven ones stay in this process's memory tier only (flagged
``transient``), because a watchdog timeout may just mean an overloaded
machine and must not poison the key for every future process.  All of it is
observable: ``retries``, ``timeouts``,
``pool_crashes`` and ``quarantined`` ride :meth:`CompileService.counters`
and the daemon's ``metrics``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..machine.jit import snapshot_translation_counters
from . import faults
from .cache import ArtifactCache
from .incremental import (FunctionArtifactStore, get_function_store,
                          snapshot_counters)
from .jit_store import JitTranslationStore, install_jit_store
from .jobs import (CompiledArtifact, CompileJob, execute_spec_timed,
                   run_job)

#: Seconds of zero pool progress before the watchdog declares a hang.
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
DEFAULT_JOB_TIMEOUT = 120.0

#: Total attempts (first run + retries) a pool job gets before quarantine.
JOB_ATTEMPTS_ENV = "REPRO_JOB_RETRIES"
DEFAULT_JOB_ATTEMPTS = 3

#: Broken pool generations tolerated before isolation mode (1 job / pool).
_ISOLATE_AFTER_BREAKS = 2

#: Watchdog poll interval while pool futures are outstanding.
_WATCHDOG_TICK = 0.2


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


def _pool_worker_init(cache_dir: Optional[str]) -> None:
    """Runs once in every pool worker: attach the parent's sharded store.

    Worker processes get fresh, memory-only function and jit stores; this
    binds both to the same persistent cache directory the parent service
    uses, so per-function stages and jit translations compiled in workers
    persist too (shard writes are atomic, so concurrent writers are safe).
    """
    faults.rearm_from_env()
    if not cache_dir:
        return
    try:
        cache = ArtifactCache(cache_dir=cache_dir)
        get_function_store().attach_cache(cache)
        install_jit_store(cache)
    except Exception:
        pass    # workers still compute correctly with process-local stores


@dataclass
class BatchReport:
    """Outcome of one :meth:`CompileService.submit` call."""

    submitted: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    pool_executed: int = 0
    failures: List[Tuple[str, str]] = field(default_factory=list)
    workers: int = 1
    #: Per-executed-job compile seconds, keyed by cache key.  Worker-side
    #: time for pool jobs (queueing excluded); wall time for in-process
    #: ones.  The daemon's latency percentiles are built from this.
    timings: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"submitted": self.submitted, "unique": self.unique,
                "cache_hits": self.cache_hits, "executed": self.executed,
                "pool_executed": self.pool_executed, "workers": self.workers,
                "failures": list(self.failures)}


class CompileService:
    """Content-addressed, batch-capable compilation service."""

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 max_workers: int = 1,
                 job_timeout: Optional[float] = None,
                 max_attempts: Optional[int] = None):
        self.cache = cache if cache is not None else ArtifactCache()
        self.max_workers = max(1, max_workers)
        #: Watchdog limit: seconds of zero pool progress before unfinished
        #: jobs are killed and requeued (0 disables the watchdog).
        self.job_timeout = (_env_float(JOB_TIMEOUT_ENV, DEFAULT_JOB_TIMEOUT)
                            if job_timeout is None else job_timeout)
        #: Attempts (including the first) before a crashing/hanging job is
        #: quarantined as a poison artifact.
        self.max_attempts = max(1, _env_int(JOB_ATTEMPTS_ENV,
                                            DEFAULT_JOB_ATTEMPTS)
                                if max_attempts is None else max_attempts)
        self._lock = Lock()
        self.recompilations = 0
        self.batches = 0
        # self-healing accounting (all surfaced via counters() and the
        # daemon's metrics verb)
        self.retries = 0          # pool jobs requeued after crash/timeout
        self.timeouts = 0         # jobs killed by the watchdog
        self.pool_crashes = 0     # broken/hung pool generations torn down
        self.quarantined = 0      # keys landed as poison artifacts
        self.corrupt_payloads = 0  # cached payloads rejected on read
        # Bind the process-wide function store to this service's artifact
        # cache: per-function stage results now persist (and survive
        # restarts) alongside whole-module artifacts.
        self.function_store: FunctionArtifactStore = get_function_store()
        self.function_store.attach_cache(self.cache)
        # Same for jit translations: when the cache persists (and the
        # kill-switch is off), translated blocks round-trip through the
        # sharded store and survive restarts.
        self.jit_store: Optional[JitTranslationStore] = \
            install_jit_store(self.cache)
        #: Function-store / jit-translation counter deltas reported back by
        #: pool workers, whose process-local stores are invisible to ours.
        self._worker_fn_counters: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0, "stores": 0}
        self._worker_jit_counters: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0, "stores": 0}

    # --------------------------------------------------------------- single
    def _cached_artifact(self, key: str) -> Optional[CompiledArtifact]:
        """The cached artifact for ``key``, or ``None`` — a payload that no
        longer deserialises (torn write, bit rot, foreign writer) is a
        counted *miss*, never an error."""
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            return CompiledArtifact.from_payload(payload, cached=True)
        except Exception:
            with self._lock:
                self.corrupt_payloads += 1
            return None

    def execute(self, job: CompileJob) -> CompiledArtifact:
        """Serve one job: from the cache if possible, else compile now."""
        key = job.safe_key()
        artifact = self._cached_artifact(key)
        if artifact is not None:
            return artifact
        artifact = run_job(job)
        with self._lock:
            self.recompilations += 1
        self.cache.put(key, artifact.to_payload())
        return artifact

    # ---------------------------------------------------------------- batch
    def submit(self, jobs: Sequence[CompileJob],
               max_workers: Optional[int] = None) -> BatchReport:
        """Dedupe, strip cache hits, fan misses out, populate the cache."""
        workers = self.max_workers if max_workers is None else max(1, max_workers)
        report = BatchReport(submitted=len(jobs), workers=workers)
        with self._lock:
            self.batches += 1

        unique: Dict[str, CompileJob] = {}
        for job in jobs:
            unique.setdefault(job.safe_key(), job)
        report.unique = len(unique)

        misses: List[CompileJob] = []
        for key, job in unique.items():
            # a validating read, not contains(): an entry whose payload no
            # longer deserialises (torn write, CRC mismatch) would be a hit
            # to contains() but None to every get(), so the job would never
            # recompile and never produce an artifact
            if self._cached_artifact(key) is not None:
                report.cache_hits += 1
            else:
                misses.append(job)

        results = self._execute_misses(misses, workers, report)
        report.timings = {key: elapsed
                          for key, (_, elapsed) in results.items()
                          if elapsed is not None}
        results = {key: payload for key, (payload, _) in results.items()}
        for key, payload in results.items():
            # transient quarantines (watchdog timeouts) stay in the memory
            # tier: an overloaded machine must not poison the shared disk
            # store for every future process
            self.cache.put(key, payload,
                           durable=not payload.get("transient", False))
            if not payload["ok"]:
                report.failures.append((payload["workload"], payload["error"]))
        report.executed = len(results)
        with self._lock:
            self.recompilations += len(results)
        return report

    @staticmethod
    def _pool_safe(job: CompileJob) -> bool:
        """Can this job cross a process boundary without changing meaning?

        A job built from a live workload object ships only its spec to the
        pool; that is safe only if re-resolving the spec via the registry
        reproduces the same cache key (it will not for, say, an attached
        OpenMP variant submitted without the matching ``workload_kwargs``).

        Similarly, the flow registry is per-process: a worker only knows
        the flows registered at import time (:mod:`repro.flows.builtin`),
        so jobs naming a flow registered elsewhere — or an unknown flow —
        stay in-process, where the caller's registry (and the caller's
        failure-artifact key) applies.
        """
        from ..flows import get_flow
        from ..flows import builtin as builtin_flows
        try:
            flow = get_flow(job.flow)
        except Exception:
            return False
        if type(flow).__module__ != builtin_flows.__name__:
            return False
        if job.workload is None:
            return True
        try:
            return CompileJob.from_spec(job.spec()).key() == job.key()
        except Exception:
            return False

    def _execute_misses(
            self, misses: List[CompileJob], workers: int,
            report: BatchReport
    ) -> Dict[str, Tuple[Dict[str, Any], Optional[float]]]:
        results: Dict[str, Tuple[Dict[str, Any], Optional[float]]] = {}
        local: List[CompileJob] = []
        remaining: List[CompileJob] = []
        for job in misses:
            (remaining if self._pool_safe(job) else local).append(job)
        if workers > 1 and len(remaining) > 1:
            remaining = self._execute_pool(remaining, workers, report,
                                           results)
        for job in remaining + local:
            # run_job (not execute_spec) so attached workloads stay attached
            started = time.perf_counter()
            artifact = run_job(job)
            results[artifact.key] = (artifact.to_payload(),
                                     time.perf_counter() - started)
        return results

    # ------------------------------------------------------- self-healing pool
    def _execute_pool(
            self, jobs: List[CompileJob], workers: int, report: BatchReport,
            results: Dict[str, Tuple[Dict[str, Any], Optional[float]]]
    ) -> List[CompileJob]:
        """Run pool-safe misses with crash/hang recovery.

        Jobs start batched at full width.  Crash and timeout casualties are
        requeued with a bumped attempt ordinal; after
        :data:`_ISOLATE_AFTER_BREAKS` broken pool generations each pending
        job runs alone in a single-worker pool so the poison job — if there
        is one — is identified exactly.  Jobs that exhaust ``max_attempts``
        are quarantined via :meth:`_quarantine`.  Returns the jobs that must
        fall back to in-process execution (pool never started, or a
        non-crash infrastructure error such as unpicklable state).
        """
        pending: List[Tuple[CompileJob, int]] = [(job, 0) for job in jobs]
        fallback: List[CompileJob] = []
        breaks = 0
        while pending:
            if breaks >= _ISOLATE_AFTER_BREAKS:
                batch, pending = [pending[0]], pending[1:]
                width = 1
            else:
                batch, pending = pending, []
                width = min(workers, len(batch))
            retry, leftover, broke = self._run_pool_once(batch, width,
                                                         report, results)
            fallback.extend(job for job, _ in leftover)
            if broke:
                breaks += 1
                with self._lock:
                    self.pool_crashes += 1
            for job, attempt, reason, durable in retry:
                if attempt + 1 >= self.max_attempts:
                    self._quarantine(job, reason, attempt + 1, results,
                                     durable=durable)
                else:
                    with self._lock:
                        self.retries += 1
                    pending.append((job, attempt + 1))
        return fallback

    def _run_pool_once(
            self, batch: List[Tuple[CompileJob, int]], width: int,
            report: BatchReport,
            results: Dict[str, Tuple[Dict[str, Any], Optional[float]]]
    ) -> Tuple[List[Tuple[CompileJob, int, str, bool]],
               List[Tuple[CompileJob, int]], bool]:
        """One pool generation: returns ``(retry, leftover, broke)``.

        ``retry`` holds crash/timeout casualties as ``(job, attempt,
        reason, durable)`` — ``durable`` says whether exhausting the
        attempt budget on this kind of failure earns a *persistent* poison
        artifact (worker crashes do; watchdog timeouts, which may just mean
        an overloaded machine, quarantine in memory only).  ``leftover``
        holds jobs for the in-process fallback, and ``broke`` reports
        whether this generation's pool had to be torn down.
        """
        retry: List[Tuple[CompileJob, int, str, bool]] = []
        leftover: List[Tuple[CompileJob, int]] = []
        try:
            pool = ProcessPoolExecutor(max_workers=width,
                                       initializer=_pool_worker_init,
                                       initargs=(self.cache.cache_dir,))
        except Exception:
            # pool could not start at all (restricted environments)
            return retry, list(batch), False
        broke = False
        hung: "set" = set()
        try:
            futures: Dict[Any, Tuple[CompileJob, int]] = {}
            try:
                for job, attempt in batch:
                    future = pool.submit(execute_spec_timed, job.spec(),
                                         attempt)
                    futures[future] = (job, attempt)
            except BrokenProcessPool:
                # a worker can die *during* submission (e.g. in the pool
                # initializer), which raises synchronously; the jobs that
                # never made it in are crash casualties like any other, so
                # the generation is rebuilt instead of aborting the batch
                broke = True
                for job, attempt in batch[len(futures):]:
                    retry.append((job, attempt,
                                  "worker process crashed during job "
                                  "submission", True))
            outstanding = set(futures)
            last_progress = time.monotonic()
            while outstanding:
                done, outstanding = wait(outstanding,
                                         timeout=_WATCHDOG_TICK,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    job, attempt = futures[future]
                    try:
                        key, payload, elapsed, fn_delta, jit_delta = \
                            future.result()
                    except BrokenProcessPool:
                        broke = True
                        retry.append((job, attempt,
                                      "worker process crashed", True))
                    except Exception:
                        # non-crash infrastructure failure (unpicklable
                        # state, ...): redo in-process, do not burn attempts
                        leftover.append((job, attempt))
                    else:
                        results[key] = (payload, elapsed)
                        report.pool_executed += 1
                        self._merge_worker_deltas(fn_delta, jit_delta)
                if done:
                    last_progress = time.monotonic()
                elif (outstanding and self.job_timeout
                        and time.monotonic() - last_progress
                        > self.job_timeout):
                    # watchdog: no job finished for a full timeout window —
                    # kill the pool, requeue everything still outstanding
                    broke = True
                    hung = outstanding
                    with self._lock:
                        self.timeouts += len(outstanding)
                    for future in outstanding:
                        job, attempt = futures[future]
                        retry.append((job, attempt,
                                      f"compile made no progress for "
                                      f"{self.job_timeout:g}s", False))
                    break
        finally:
            if hung:
                self._terminate_pool(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)
        return retry, leftover, broke

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill a hung pool's worker processes (best effort)."""
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:
            return
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass

    def _merge_worker_deltas(self, fn_delta: Dict[str, int],
                             jit_delta: Dict[str, int]) -> None:
        with self._lock:
            for name, count in fn_delta.items():
                self._worker_fn_counters[name] = (
                    self._worker_fn_counters.get(name, 0) + count)
            for name, count in jit_delta.items():
                self._worker_jit_counters[name] = (
                    self._worker_jit_counters.get(name, 0) + count)

    def _quarantine(
            self, job: CompileJob, reason: str, attempts: int,
            results: Dict[str, Tuple[Dict[str, Any], Optional[float]]],
            durable: bool = True
    ) -> None:
        """Land a poison artifact for a job that keeps killing workers.

        The ``ok=False`` payload is cached under the job's key (flagged
        ``poisoned``), so every later submission of the same key fails fast
        from the cache instead of crashing another pool.  Clearing the cache
        entry (or bumping the key schema) lifts the quarantine.

        ``durable=False`` (watchdog timeouts) flags the payload
        ``transient``, and :meth:`submit` then keeps it out of the shared
        disk store: a compile that was merely slow on an overloaded machine
        fails fast for the rest of *this* process but is re-attempted from
        scratch by the next one, instead of poisoning the key for everyone.
        """
        key = job.safe_key()
        payload = {
            "key": key, "flow": job.flow, "workload": job.workload_name,
            "ok": False, "stats": None, "printed": [], "module_text": "",
            "pipeline": "", "poisoned": True,
            "error": (f"quarantined poison job after {attempts} "
                      f"attempt(s): {reason}"),
        }
        if not durable:
            payload["transient"] = True
        results[key] = (payload, None)
        with self._lock:
            self.quarantined += 1

    # ------------------------------------------------------------- counters
    def counters(self) -> Dict[str, int]:
        merged = self.cache.counters.as_dict()
        merged["recompilations"] = self.recompilations
        merged["batches"] = self.batches
        merged.update(self.self_heal_counters())
        return merged

    def self_heal_counters(self) -> Dict[str, int]:
        """Crash/timeout recovery accounting (chaos sweeps assert on it)."""
        with self._lock:
            return {"retries": self.retries, "timeouts": self.timeouts,
                    "pool_crashes": self.pool_crashes,
                    "quarantined": self.quarantined,
                    "corrupt_payloads": self.corrupt_payloads}

    def function_counters(self) -> Dict[str, Any]:
        """Function-level cache accounting: this process's store plus the
        deltas pool workers reported with their results."""
        totals = snapshot_counters()
        with self._lock:
            for name, count in self._worker_fn_counters.items():
                totals[name] = totals.get(name, 0) + count
        hits = totals["memory_hits"] + totals["disk_hits"]
        lookups = hits + totals["misses"]
        totals["hits"] = hits
        totals["lookups"] = lookups
        totals["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        return totals

    def jit_counters(self) -> Dict[str, Any]:
        """Jit translation-cache accounting: this process's counters plus
        the deltas pool workers reported with their results."""
        totals = snapshot_translation_counters()
        with self._lock:
            for name, count in self._worker_jit_counters.items():
                totals[name] = totals.get(name, 0) + count
        hits = totals["memory_hits"] + totals["disk_hits"]
        lookups = hits + totals["misses"]
        totals["hits"] = hits
        totals["lookups"] = lookups
        totals["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        return totals


__all__ = ["CompileService", "BatchReport", "DEFAULT_JOB_ATTEMPTS",
           "DEFAULT_JOB_TIMEOUT", "JOB_ATTEMPTS_ENV", "JOB_TIMEOUT_ENV"]
