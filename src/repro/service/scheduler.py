"""The compilation service: cache-aware job execution and batch fanout.

:class:`CompileService` is the one entry point every measurement takes:

* :meth:`~CompileService.execute` — single job, cache-first, in-process on a
  miss.  This is what the compiler adapters call.
* :meth:`~CompileService.submit` — a batch of jobs; duplicates and cache
  hits are stripped, the remaining misses fan out over a
  ``concurrent.futures`` process pool (falling back to in-process execution
  if worker processes are unavailable or die).

The service counts every recompilation it performs, so "a warm run
recompiles nothing" is directly assertable: run the flow twice and check
``service.recompilations`` did not move.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..machine.jit import snapshot_translation_counters
from .cache import ArtifactCache
from .incremental import (FunctionArtifactStore, get_function_store,
                          snapshot_counters)
from .jit_store import JitTranslationStore, install_jit_store
from .jobs import (CompiledArtifact, CompileJob, execute_spec_timed,
                   run_job)


def _pool_worker_init(cache_dir: Optional[str]) -> None:
    """Runs once in every pool worker: attach the parent's sharded store.

    Worker processes get fresh, memory-only function and jit stores; this
    binds both to the same persistent cache directory the parent service
    uses, so per-function stages and jit translations compiled in workers
    persist too (shard writes are atomic, so concurrent writers are safe).
    """
    if not cache_dir:
        return
    try:
        cache = ArtifactCache(cache_dir=cache_dir)
        get_function_store().attach_cache(cache)
        install_jit_store(cache)
    except Exception:
        pass    # workers still compute correctly with process-local stores


@dataclass
class BatchReport:
    """Outcome of one :meth:`CompileService.submit` call."""

    submitted: int = 0
    unique: int = 0
    cache_hits: int = 0
    executed: int = 0
    pool_executed: int = 0
    failures: List[Tuple[str, str]] = field(default_factory=list)
    workers: int = 1
    #: Per-executed-job compile seconds, keyed by cache key.  Worker-side
    #: time for pool jobs (queueing excluded); wall time for in-process
    #: ones.  The daemon's latency percentiles are built from this.
    timings: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"submitted": self.submitted, "unique": self.unique,
                "cache_hits": self.cache_hits, "executed": self.executed,
                "pool_executed": self.pool_executed, "workers": self.workers,
                "failures": list(self.failures)}


class CompileService:
    """Content-addressed, batch-capable compilation service."""

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 max_workers: int = 1):
        self.cache = cache if cache is not None else ArtifactCache()
        self.max_workers = max(1, max_workers)
        self._lock = Lock()
        self.recompilations = 0
        self.batches = 0
        # Bind the process-wide function store to this service's artifact
        # cache: per-function stage results now persist (and survive
        # restarts) alongside whole-module artifacts.
        self.function_store: FunctionArtifactStore = get_function_store()
        self.function_store.attach_cache(self.cache)
        # Same for jit translations: when the cache persists (and the
        # kill-switch is off), translated blocks round-trip through the
        # sharded store and survive restarts.
        self.jit_store: Optional[JitTranslationStore] = \
            install_jit_store(self.cache)
        #: Function-store / jit-translation counter deltas reported back by
        #: pool workers, whose process-local stores are invisible to ours.
        self._worker_fn_counters: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0, "stores": 0}
        self._worker_jit_counters: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0, "stores": 0}

    # --------------------------------------------------------------- single
    def execute(self, job: CompileJob) -> CompiledArtifact:
        """Serve one job: from the cache if possible, else compile now."""
        key = job.safe_key()
        payload = self.cache.get(key)
        if payload is not None:
            return CompiledArtifact.from_payload(payload, cached=True)
        artifact = run_job(job)
        with self._lock:
            self.recompilations += 1
        self.cache.put(key, artifact.to_payload())
        return artifact

    # ---------------------------------------------------------------- batch
    def submit(self, jobs: Sequence[CompileJob],
               max_workers: Optional[int] = None) -> BatchReport:
        """Dedupe, strip cache hits, fan misses out, populate the cache."""
        workers = self.max_workers if max_workers is None else max(1, max_workers)
        report = BatchReport(submitted=len(jobs), workers=workers)
        with self._lock:
            self.batches += 1

        unique: Dict[str, CompileJob] = {}
        for job in jobs:
            unique.setdefault(job.safe_key(), job)
        report.unique = len(unique)

        misses: List[CompileJob] = []
        for key, job in unique.items():
            if self.cache.contains(key):
                report.cache_hits += 1
            else:
                misses.append(job)

        results = self._execute_misses(misses, workers, report)
        report.timings = {key: elapsed
                          for key, (_, elapsed) in results.items()}
        results = {key: payload for key, (payload, _) in results.items()}
        for key, payload in results.items():
            self.cache.put(key, payload)
            if not payload["ok"]:
                report.failures.append((payload["workload"], payload["error"]))
        report.executed = len(results)
        with self._lock:
            self.recompilations += len(results)
        return report

    @staticmethod
    def _pool_safe(job: CompileJob) -> bool:
        """Can this job cross a process boundary without changing meaning?

        A job built from a live workload object ships only its spec to the
        pool; that is safe only if re-resolving the spec via the registry
        reproduces the same cache key (it will not for, say, an attached
        OpenMP variant submitted without the matching ``workload_kwargs``).

        Similarly, the flow registry is per-process: a worker only knows
        the flows registered at import time (:mod:`repro.flows.builtin`),
        so jobs naming a flow registered elsewhere — or an unknown flow —
        stay in-process, where the caller's registry (and the caller's
        failure-artifact key) applies.
        """
        from ..flows import get_flow
        from ..flows import builtin as builtin_flows
        try:
            flow = get_flow(job.flow)
        except Exception:
            return False
        if type(flow).__module__ != builtin_flows.__name__:
            return False
        if job.workload is None:
            return True
        try:
            return CompileJob.from_spec(job.spec()).key() == job.key()
        except Exception:
            return False

    def _execute_misses(
            self, misses: List[CompileJob], workers: int,
            report: BatchReport
    ) -> Dict[str, Tuple[Dict[str, Any], float]]:
        results: Dict[str, Tuple[Dict[str, Any], float]] = {}
        local: List[CompileJob] = []
        remaining: List[CompileJob] = []
        for job in misses:
            (remaining if self._pool_safe(job) else local).append(job)
        if workers > 1 and len(remaining) > 1:
            try:
                with ProcessPoolExecutor(
                        max_workers=min(workers, len(remaining)),
                        initializer=_pool_worker_init,
                        initargs=(self.cache.cache_dir,)) as pool:
                    futures = [(job,
                                pool.submit(execute_spec_timed, job.spec()))
                               for job in remaining]
                    leftover: List[CompileJob] = []
                    for job, future in futures:
                        try:
                            key, payload, elapsed, fn_delta, jit_delta = \
                                future.result()
                        except Exception:
                            # worker infrastructure failure (broken pool,
                            # unpicklable state, ...): redo in-process below
                            leftover.append(job)
                            continue
                        results[key] = (payload, elapsed)
                        report.pool_executed += 1
                        with self._lock:
                            for name, count in fn_delta.items():
                                self._worker_fn_counters[name] = (
                                    self._worker_fn_counters.get(name, 0)
                                    + count)
                            for name, count in jit_delta.items():
                                self._worker_jit_counters[name] = (
                                    self._worker_jit_counters.get(name, 0)
                                    + count)
                    remaining = leftover
            except Exception:
                # pool could not start at all (restricted environments)
                pass
        for job in remaining + local:
            # run_job (not execute_spec) so attached workloads stay attached
            started = time.perf_counter()
            artifact = run_job(job)
            results[artifact.key] = (artifact.to_payload(),
                                     time.perf_counter() - started)
        return results

    # ------------------------------------------------------------- counters
    def counters(self) -> Dict[str, int]:
        merged = self.cache.counters.as_dict()
        merged["recompilations"] = self.recompilations
        merged["batches"] = self.batches
        return merged

    def function_counters(self) -> Dict[str, Any]:
        """Function-level cache accounting: this process's store plus the
        deltas pool workers reported with their results."""
        totals = snapshot_counters()
        with self._lock:
            for name, count in self._worker_fn_counters.items():
                totals[name] = totals.get(name, 0) + count
        hits = totals["memory_hits"] + totals["disk_hits"]
        lookups = hits + totals["misses"]
        totals["hits"] = hits
        totals["lookups"] = lookups
        totals["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        return totals

    def jit_counters(self) -> Dict[str, Any]:
        """Jit translation-cache accounting: this process's counters plus
        the deltas pool workers reported with their results."""
        totals = snapshot_translation_counters()
        with self._lock:
            for name, count in self._worker_jit_counters.items():
                totals[name] = totals.get(name, 0) + count
        hits = totals["memory_hits"] + totals["disk_hits"]
        lookups = hits + totals["misses"]
        totals["hits"] = hits
        totals["lookups"] = lookups
        totals["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
        return totals


__all__ = ["CompileService", "BatchReport"]
