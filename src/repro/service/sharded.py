"""Sharded on-disk artifact store: hash-prefix fanout + LRU byte budget.

The disk layout replaces the PR-1 one-file-per-artifact ``objects/`` tree:

    <cache_dir>/CACHE_FORMAT        layout version marker ("2")
    <cache_dir>/shards/<pp>.json    256 shard files, pp = key[:2]

Each shard file holds every artifact whose cache key starts with its two-hex
prefix, as ``{"format": 2, "entries": {key: {"a": stamp, "p": payload}}}``.
Grouping ~1/256th of the keyspace per file keeps conformance-sweep-scale
stores (tens of thousands of artifacts) out of the
one-inode-per-artifact regime while bounding rewrite cost per store.

Durability rules:

* every shard write goes through write-temp + ``os.replace`` — a concurrent
  reader sees the old shard or the new one, never a torn file;
* a corrupt or truncated shard is a *cache miss*, never an error: it is
  logged once and overwritten wholesale on the next store into it;
* every entry carries a CRC-32 of its payload (``"c"``), verified on read:
  a bit-flipped or partially-written entry inside an otherwise-parseable
  shard reads as a miss too (entries stored before the checksum existed
  are accepted unverified);
* the total on-disk size is bounded by ``byte_budget``: when a store pushes
  the sum of shard-file sizes over budget, least-recently-used entries are
  evicted (across all shards) until the store fits again.

Access stamps are persisted per entry on store; reads refresh them in an
in-memory overlay that is folded into the shard the next time it is
rewritten, so LRU ordering is exact within a process and
least-recently-*stored* across processes.

A legacy PR-1 store (``objects/<k[:2]>/<k>.json``) found at open time is
migrated into shards once — see :meth:`ShardedStore._migrate_legacy` — so
existing caches are never silently discarded.  Key material is untouched:
the same ``KEY_SCHEMA_VERSION``-salted SHA-256 keys address both layouts.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
import zlib
from pathlib import Path
from threading import Lock
from typing import Any, Dict, Optional

from . import faults

logger = logging.getLogger(__name__)

#: On-disk layout version.  1 was the ``objects/`` one-file-per-artifact
#: tree; 2 is the sharded layout this module implements.
SHARDED_FORMAT = 2

#: Number of shard files (two hex digits of the SHA-256 key).
SHARD_COUNT = 256

#: Default eviction budget: plenty for every table + a long conformance
#: sweep, small enough that a forgotten daemon cannot fill a disk.
DEFAULT_BYTE_BUDGET = 256 * 1024 * 1024

#: Environment variable overriding the default byte budget.
BYTE_BUDGET_ENV = "REPRO_CACHE_BUDGET"


def budget_from_env(default: int = DEFAULT_BYTE_BUDGET) -> int:
    """Resolve the byte budget from ``$REPRO_CACHE_BUDGET`` (0 = unbounded).

    Accepts plain bytes or a ``K``/``M``/``G`` suffix (``"64M"``).
    """
    raw = os.environ.get(BYTE_BUDGET_ENV)
    if not raw:
        return default
    try:
        return parse_byte_size(raw)
    except ValueError:
        logger.warning("ignoring unparseable %s=%r", BYTE_BUDGET_ENV, raw)
        return default


def parse_byte_size(text: str) -> int:
    """``"256M"`` -> 268435456; bare integers are bytes; 0 disables."""
    text = text.strip()
    scale = 1
    if text and text[-1].upper() in "KMG":
        scale = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"not a byte size: {text!r}")
    if value < 0:
        raise ValueError(f"byte size must be >= 0, got {value}")
    return value * scale


class ShardedStore:
    """Disk tier of the artifact cache: 256 shards, atomic writes, LRU."""

    def __init__(self, cache_dir: str, *,
                 byte_budget: Optional[int] = None):
        self._dir = Path(cache_dir).expanduser()
        self._shards = self._dir / "shards"
        self._shards.mkdir(parents=True, exist_ok=True)
        self.byte_budget = (budget_from_env() if byte_budget is None
                            else byte_budget)
        self._lock = Lock()
        #: read-side access stamps not yet persisted, folded in on rewrite
        self._touched: Dict[str, int] = {}
        #: cached shard-file sizes (prefix -> bytes), kept current on write
        self._sizes: Dict[str, int] = {}
        self._clock = int(time.time() * 1000)
        self.evictions = 0
        self.corrupt_shards = 0
        self.corrupt_entries = 0
        self._adopt_marker()
        self._migrate_legacy()
        for path in self._shards.glob("*.json"):
            try:
                self._sizes[path.stem] = path.stat().st_size
            except OSError:
                pass

    # ---------------------------------------------------------------- layout
    @property
    def directory(self) -> Path:
        return self._dir

    def _shard_path(self, prefix: str) -> Path:
        return self._shards / f"{prefix}.json"

    @staticmethod
    def _prefix(key: str) -> str:
        return key[:2]

    def _adopt_marker(self) -> None:
        marker = self._dir / "CACHE_FORMAT"
        try:
            known = marker.read_text().strip()
        except OSError:
            known = None
        if known != str(SHARDED_FORMAT):
            marker.write_text(f"{SHARDED_FORMAT}\n")

    def _stamp(self) -> int:
        self._clock = max(self._clock + 1, int(time.time() * 1000))
        return self._clock

    # ------------------------------------------------------------- shard I/O
    @staticmethod
    def _entry_crc(payload: Any) -> int:
        return zlib.crc32(json.dumps(payload, sort_keys=True,
                                     separators=(",", ":")).encode("utf-8"))

    def _load_shard(self, prefix: str) -> Dict[str, Dict[str, Any]]:
        """Entries of one shard; corrupt/truncated files read as empty."""
        path = self._shard_path(prefix)
        try:
            faults.maybe_raise("sharded.read.error", key=prefix,
                               exc_type=OSError)
            with path.open("r", encoding="utf-8") as fh:
                blob = json.load(fh)
            entries = blob["entries"]
            if not isinstance(entries, dict):
                raise ValueError("entries is not a mapping")
            return entries
        except FileNotFoundError:
            return {}
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # no lock here: callers may already hold it, and a GIL-atomic
            # counter increment is all the accounting needs
            self.corrupt_shards += 1
            logger.warning("treating corrupt cache shard %s as empty (%s)",
                           path, exc)
            return {}

    def _write_shard(self, prefix: str,
                     entries: Dict[str, Dict[str, Any]]) -> None:
        """Atomically publish one shard (or remove it when empty)."""
        path = self._shard_path(prefix)
        if not entries:
            try:
                path.unlink()
            except OSError:
                pass
            self._sizes.pop(prefix, None)
            return
        for key in entries:
            if key in self._touched:
                entries[key]["a"] = max(entries[key].get("a", 0),
                                        self._touched.pop(key))
        blob = json.dumps({"format": SHARDED_FORMAT, "entries": entries},
                          separators=(",", ":"))
        # Injected torn write: publish a truncated blob, exactly what a
        # crash midway through a non-atomic write would leave behind.  The
        # durability contract makes this a miss on the next read, so the
        # chaos sweep can prove the store never serves a torn artifact.
        published = faults.corrupt_payload("sharded.write.torn", blob,
                                           key=prefix)
        fd, tmp = tempfile.mkstemp(dir=str(self._shards), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(published)
            os.replace(tmp, path)
            self._sizes[prefix] = len(published.encode("utf-8"))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -------------------------------------------------------------- requests
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._load_shard(self._prefix(key)).get(key)
        if entry is None:
            return None
        entry = faults.corrupt_payload("sharded.payload.corrupt", entry,
                                       key=key)
        payload = entry.get("p") if isinstance(entry, dict) else None
        if not isinstance(payload, dict):
            self.corrupt_entries += 1
            return None
        crc = entry.get("c")
        if crc is not None and crc != self._entry_crc(payload):
            self.corrupt_entries += 1
            logger.warning("dropping cache entry %s: checksum mismatch", key)
            return None
        with self._lock:
            self._touched[key] = self._stamp()
        return payload

    def contains(self, key: str) -> bool:
        return key in self._load_shard(self._prefix(key))

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        prefix = self._prefix(key)
        with self._lock:
            entries = self._load_shard(prefix)
            entries[key] = {"a": self._stamp(), "p": payload,
                            "c": self._entry_crc(payload)}
            self._write_shard(prefix, entries)
        self._evict_to_budget()

    # -------------------------------------------------------------- eviction
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    def _evict_to_budget(self) -> None:
        """Drop least-recently-used entries until the store fits the budget.

        Only runs when the cached shard sizes exceed the budget, so the
        common under-budget store never pays the full-scan cost.
        """
        if not self.byte_budget or self.total_bytes() <= self.byte_budget:
            return
        with self._lock:
            if self.total_bytes() <= self.byte_budget:
                return
            shards: Dict[str, Dict[str, Dict[str, Any]]] = {}
            ranked = []  # (stamp, prefix, key)
            for path in sorted(self._shards.glob("*.json")):
                prefix = path.stem
                entries = self._load_shard(prefix)
                shards[prefix] = entries
                for key, entry in entries.items():
                    stamp = max(entry.get("a", 0), self._touched.get(key, 0))
                    ranked.append((stamp, prefix, key))
            ranked.sort()
            dirty = set()
            over = self.total_bytes() - self.byte_budget
            for stamp, prefix, key in ranked:
                if over <= 0:
                    break
                entry = shards[prefix].pop(key)
                # size accounting per entry: its JSON footprint in the shard
                over -= len(json.dumps(entry, separators=(",", ":"))) + \
                    len(key) + 4
                dirty.add(prefix)
                self.evictions += 1
            for prefix in dirty:
                self._write_shard(prefix, shards[prefix])

    # ------------------------------------------------------------- migration
    def _migrate_legacy(self) -> None:
        """Split a PR-1 ``objects/`` tree into shards, once, on open.

        Every readable legacy artifact is folded into its shard file and the
        legacy tree removed; unreadable ones are dropped (they were already
        misses under the old layout's corrupt-entry rule).
        """
        legacy = self._dir / "objects"
        if not legacy.is_dir():
            return
        migrated = 0
        pending: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for path in legacy.rglob("*.json"):
            key = path.stem
            try:
                with path.open("r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            pending.setdefault(self._prefix(key), {})[key] = {
                "a": self._stamp(), "p": payload}
            migrated += 1
        with self._lock:
            for prefix, fresh in sorted(pending.items()):
                entries = self._load_shard(prefix)
                for key, entry in fresh.items():
                    entries.setdefault(key, entry)
                self._write_shard(prefix, entries)
        # the shards now own the data; drop the legacy tree best-effort
        for path in legacy.rglob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass
        for sub in sorted(legacy.rglob("*"), reverse=True):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        try:
            legacy.rmdir()
        except OSError:
            pass
        if migrated:
            logger.info("migrated %d legacy cache artifacts into %d shards",
                        migrated, len(pending))

    # ----------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        return {"disk_bytes": self.total_bytes(),
                "evictions": self.evictions,
                "corrupt_shards": self.corrupt_shards,
                "corrupt_entries": self.corrupt_entries,
                "byte_budget": self.byte_budget}


__all__ = ["ShardedStore", "SHARDED_FORMAT", "SHARD_COUNT",
           "DEFAULT_BYTE_BUDGET", "BYTE_BUDGET_ENV", "budget_from_env",
           "parse_byte_size"]
