"""Thin client for the compilation daemon + transparent fallback.

Two layers:

* :class:`DaemonClient` — blocking JSON-line protocol client (ping /
  metrics / shutdown / execute / compile_batch) over the daemon's unix
  socket or ``tcp:HOST:PORT`` spec.  Connection-level failures — a daemon
  restart, a dropped socket, a response line torn mid-JSON — are retried
  with exponential backoff and deterministic jitter (``$REPRO_CLIENT_RETRIES``
  attempts, reconnecting from scratch each time); every operation is
  idempotent on the daemon side (content-addressed artifacts, coalesced
  compiles), so a retry after a half-delivered request never double-compiles.
* :class:`DaemonBackedService` — a drop-in :class:`CompileService` whose
  cache misses are served by a running daemon.  Jobs that cannot cross the
  socket (an attached workload that does not round-trip through its spec,
  a flow the daemon's registry cannot know) are compiled in-process, and if
  the daemon dies mid-run the service degrades to fully-local execution
  instead of failing — artifacts are bit-identical either way, so callers
  never need to care which path served them.

Discovery (:func:`discover_client` / :func:`maybe_daemon_service`): an
explicit socket spec wins, then ``$REPRO_DAEMON_SOCKET``, then the default
per-user socket path — used only when the socket file actually exists.  No
daemon anywhere means ``None``: the caller keeps today's in-process
behaviour.  ``REPRO_NO_DAEMON=1`` disables discovery outright (the daemon
sets it for itself so its own compiles can never loop back).
"""

from __future__ import annotations

import getpass
import hashlib
import json
import logging
import os
import socket
import tempfile
import time
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import faults
from .cache import ArtifactCache
from .daemon import MAX_LINE_BYTES, parse_socket_spec
from .jobs import KEY_SCHEMA_VERSION, CompiledArtifact, CompileJob
from .scheduler import BatchReport, CompileService

logger = logging.getLogger(__name__)

#: Environment variable naming the daemon socket clients should use.
SOCKET_ENV = "REPRO_DAEMON_SOCKET"

#: Environment kill-switch: never discover a daemon when set to a truthy
#: value (the daemon exports it so its own workers stay in-process).
NO_DAEMON_ENV = "REPRO_NO_DAEMON"

#: Seconds allowed for control operations (ping/metrics/shutdown).
CONTROL_TIMEOUT = 10.0

#: Environment override for the per-request attempt budget.
RETRIES_ENV = "REPRO_CLIENT_RETRIES"

#: Attempts per request (1 initial + retries) when the env says nothing.
DEFAULT_REQUEST_ATTEMPTS = 3

#: Exponential-backoff base and cap between attempts, seconds.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 1.0


def _env_attempts() -> int:
    raw = os.environ.get(RETRIES_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            logger.warning("ignoring non-integer $%s=%r", RETRIES_ENV, raw)
    return DEFAULT_REQUEST_ATTEMPTS


def _backoff_s(op: str, attempt: int) -> float:
    """Backoff before retry ``attempt``: exponential, with *deterministic*
    jitter (hash of op and attempt) so replayed runs sleep identically."""
    base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (1 << (attempt - 1)))
    digest = hashlib.sha256(f"client-backoff:{op}:{attempt}".encode()).digest()
    return base * (0.5 + digest[0] / 510.0)


def default_socket_path() -> str:
    """Per-user default socket path, shared by ``serve`` and discovery."""
    try:
        user = getpass.getuser()
    except Exception:
        user = str(os.getuid()) if hasattr(os, "getuid") else "user"
    return os.path.join(tempfile.gettempdir(), f"repro-daemon-{user}.sock")


class DaemonUnavailable(RuntimeError):
    """No daemon is reachable at the requested socket.

    The message is always actionable: it names the socket and the command
    that starts (or cleans up after) a daemon there.
    """


class DaemonRequestError(RuntimeError):
    """The daemon answered, but with an error response."""


class DaemonProtocolError(DaemonUnavailable):
    """The daemon's response was unusable at the wire level (a line torn by
    mid-line EOF, over-limit, or non-JSON bytes).  A subclass of
    :class:`DaemonUnavailable` because the remedy is identical: drop the
    connection and retry / fall back — never surface a raw
    ``json.JSONDecodeError`` to callers."""


def _unavailable(spec: str, problem: str) -> DaemonUnavailable:
    return DaemonUnavailable(
        f"{problem} at {spec!r} — start one with "
        f"`python -m repro.service serve --socket {spec}`, or unset "
        f"${SOCKET_ENV} to run in-process")


class DaemonClient:
    """Blocking JSON-line client for one compilation daemon."""

    def __init__(self, socket_spec: Optional[str] = None,
                 timeout: Optional[float] = None,
                 max_attempts: Optional[int] = None):
        self.socket_spec = socket_spec or resolve_socket_spec()
        self.timeout = timeout
        self.max_attempts = (_env_attempts() if max_attempts is None
                             else max(1, max_attempts))
        self.retries = 0
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._lock = Lock()
        self._next_id = 0

    # ------------------------------------------------------------ connection
    def _connect(self) -> None:
        if self._sock is not None:
            return
        kind, address = parse_socket_spec(self.socket_spec)
        try:
            if kind == "tcp":
                sock = socket.create_connection(address,
                                                timeout=CONTROL_TIMEOUT)
            else:
                if not os.path.exists(address):
                    raise _unavailable(self.socket_spec, "no daemon socket")
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(CONTROL_TIMEOUT)
                sock.connect(address)
        except DaemonUnavailable:
            raise
        except (ConnectionRefusedError, FileNotFoundError):
            raise _unavailable(
                self.socket_spec,
                "stale daemon socket (file exists but nobody is listening)"
                if kind == "unix" and os.path.exists(address)
                else "no daemon listening")
        except OSError as exc:
            raise _unavailable(self.socket_spec,
                               f"cannot reach daemon ({exc})")
        sock.settimeout(self.timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "DaemonClient":
        self._connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- request
    def _request(self, op: str, timeout: Optional[float] = None,
                 **fields: Any) -> Dict[str, Any]:
        """One operation, with bounded retries over fresh connections.

        Connection-level failures (:class:`DaemonUnavailable`, including
        torn responses) are retried up to ``max_attempts`` times with
        exponential backoff; each retry reconnects from scratch.  Daemon-
        level errors (a well-formed ``ok: false`` response) are never
        retried — the daemon heard us and said no.
        """
        last: Optional[DaemonUnavailable] = None
        for attempt in range(max(1, self.max_attempts)):
            if attempt:
                self.retries += 1
                time.sleep(_backoff_s(op, attempt))
            try:
                response = self._request_once(op, timeout, attempt, fields)
            except DaemonUnavailable as exc:
                last = exc
                continue
            if not response.get("ok"):
                raise DaemonRequestError(
                    response.get("error") or "daemon request failed")
            return response
        assert last is not None
        raise last

    def _request_once(self, op: str, timeout: Optional[float],
                      attempt: int, fields: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            if self._sock is None and attempt:
                self.reconnects += 1
            self._connect()
            assert self._sock is not None and self._reader is not None
            self._next_id += 1
            request = {"id": self._next_id, "op": op, **fields}
            previous = self._sock.gettimeout()
            if timeout is not None:
                self._sock.settimeout(timeout)
            try:
                faults.maybe_raise("client.send.drop", key=op,
                                   attempt=attempt,
                                   exc_type=ConnectionResetError)
                self._sock.sendall(
                    json.dumps(request, separators=(",", ":")).encode()
                    + b"\n")
                line = self._reader.readline(MAX_LINE_BYTES)
                if faults.check("client.recv.drop", key=op,
                                attempt=attempt) is not None:
                    # connection torn mid-response: a short read
                    line = line[:len(line) // 2].rstrip(b"\n")
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                self.close()
                raise _unavailable(self.socket_spec,
                                   f"daemon connection lost ({exc})")
            finally:
                if timeout is not None and self._sock is not None:
                    self._sock.settimeout(previous)
        if not line:
            self.close()
            raise _unavailable(self.socket_spec,
                               "daemon closed the connection")
        if not line.endswith(b"\n"):
            # mid-line EOF (daemon died while answering) or a response past
            # the line limit: the reply is torn, and the stream is no longer
            # framed — drop the connection rather than parse half a JSON
            # object or desynchronise the next request.
            self.close()
            raise DaemonProtocolError(
                f"truncated response from daemon at {self.socket_spec!r} "
                f"({len(line)} bytes, no newline) — retrying on a fresh "
                f"connection")
        try:
            return json.loads(line)
        except ValueError as exc:
            self.close()
            raise DaemonProtocolError(
                f"malformed response from daemon at {self.socket_spec!r} "
                f"({exc}) — retrying on a fresh connection")

    # ------------------------------------------------------------ operations
    def ping(self, timeout: float = CONTROL_TIMEOUT) -> Dict[str, Any]:
        return self._request("ping", timeout=timeout)

    def metrics(self) -> Dict[str, Any]:
        return self._request("metrics", timeout=CONTROL_TIMEOUT)

    def shutdown(self) -> Dict[str, Any]:
        response = self._request("shutdown", timeout=CONTROL_TIMEOUT)
        self.close()
        return response

    def execute(self, spec: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """One job spec -> ``(artifact payload, served-from-cache)``."""
        response = self._request("execute", spec=spec)
        return response["artifact"], bool(response.get("cached"))

    def compile_batch(self,
                      specs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Many specs -> ``{"artifacts": [...], "sources": [...],
        "report": {...}}`` in submission order."""
        return self._request("compile_batch", specs=list(specs))


# ---------------------------------------------------------------------------
# discovery
# ---------------------------------------------------------------------------


def resolve_socket_spec(socket_spec: Optional[str] = None) -> str:
    """Explicit spec, else ``$REPRO_DAEMON_SOCKET``, else the default path."""
    return socket_spec or os.environ.get(SOCKET_ENV) or default_socket_path()


def _remove_stale_socket(spec: str) -> bool:
    """Unlink a unix socket file nobody is listening on.

    A daemon killed with SIGKILL (or a machine crash) leaves its socket
    file behind; every later discovery would then burn a connect-and-fail
    round trip.  Returns ``True`` when a stale file was removed, so the
    caller can fall back in-process without the scary warning.
    """
    try:
        kind, address = parse_socket_spec(spec)
    except Exception:
        return False
    if kind != "unix":
        return False
    try:
        before = os.stat(address)
    except OSError:
        return False
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(address)
    except OSError:
        # Between the failed probe and the unlink, a daemon starting up
        # could claim the path; unlinking then would orphan the *live*
        # daemon.  Re-stat and only unlink the exact file we probed.
        try:
            after = os.stat(address)
        except OSError:
            return False   # already gone — nothing left to clean up
        # inode numbers are recycled immediately on tmpfs, so compare the
        # creation timestamp too
        if ((after.st_ino, after.st_dev, after.st_mtime_ns)
                != (before.st_ino, before.st_dev, before.st_mtime_ns)):
            logger.warning(
                "daemon socket %s was replaced while probing it (a daemon "
                "is starting up?); leaving it alone", address)
            return False
        try:
            os.unlink(address)
        except OSError:
            return False
        logger.warning("removed stale daemon socket %s (left behind by an "
                       "unclean daemon exit); running in-process", address)
        return True
    else:
        return False   # somebody *is* listening: not ours to unlink
    finally:
        probe.close()


def discover_client(socket_spec: Optional[str] = None, *,
                    require: bool = False) -> Optional[DaemonClient]:
    """A verified (pinged) client for a running daemon, or ``None``.

    ``require=True`` raises :class:`DaemonUnavailable` instead of returning
    ``None`` — that is what explicit CLI commands (``ping``, ``metrics``,
    ``shutdown``, ``--socket ...``) want; transparent discovery wants the
    silent ``None`` so callers fall back in-process.
    """
    explicit = bool(socket_spec or os.environ.get(SOCKET_ENV))
    if not require and os.environ.get(NO_DAEMON_ENV, "").strip() not in ("", "0"):
        return None
    spec = resolve_socket_spec(socket_spec)
    kind, address = parse_socket_spec(spec)
    if not explicit and not require and kind == "unix" \
            and not os.path.exists(address):
        return None  # nothing to discover: keep today's in-process path
    client = DaemonClient(spec)
    try:
        pong = client.ping()
    except (DaemonUnavailable, DaemonRequestError, ValueError, OSError) as exc:
        client.close()
        stale = _remove_stale_socket(spec)
        if require:
            if stale:
                raise _unavailable(
                    spec, "removed a stale daemon socket; no daemon running")
            if isinstance(exc, DaemonUnavailable):
                raise
            raise _unavailable(spec, f"daemon handshake failed ({exc})")
        if stale:
            return None   # _remove_stale_socket already logged the cleanup
        logger.warning("ignoring unreachable compile daemon: %s", exc)
        return None
    schema = pong.get("schema")
    if schema != KEY_SCHEMA_VERSION:
        client.close()
        message = (f"daemon at {spec!r} speaks key schema {schema}, this "
                   f"process speaks {KEY_SCHEMA_VERSION}; restart the daemon "
                   f"on matching code")
        if require:
            raise DaemonUnavailable(message)
        logger.warning("%s — falling back in-process", message)
        return None
    return client


def maybe_daemon_service(socket_spec: Optional[str] = None, *,
                         max_workers: int = 1
                         ) -> Optional["DaemonBackedService"]:
    """A daemon-backed service when a daemon is running, else ``None``."""
    client = discover_client(socket_spec)
    if client is None:
        return None
    return DaemonBackedService(client, max_workers=max_workers)


# ---------------------------------------------------------------------------
# the daemon-backed service
# ---------------------------------------------------------------------------


class DaemonBackedService(CompileService):
    """A :class:`CompileService` whose misses are served by a daemon.

    The local :class:`ArtifactCache` is memory-only and acts as this
    process's hot tier; the daemon owns the shared persistent store.  Any
    job the daemon cannot faithfully reproduce from its spec — the same
    test :meth:`CompileService._pool_safe` applies to process-pool workers
    — is executed in-process, exactly as without a daemon.
    """

    def __init__(self, client: DaemonClient, max_workers: int = 1,
                 memory_entries: Optional[int] = None):
        cache = (ArtifactCache() if memory_entries is None
                 else ArtifactCache(memory_entries=memory_entries))
        super().__init__(cache, max_workers=max_workers)
        self.client: Optional[DaemonClient] = client
        self.daemon_jobs = 0
        self.degraded = 0
        self._client_retries = 0   # frozen at degradation time

    @property
    def socket_spec(self) -> Optional[str]:
        return self.client.socket_spec if self.client is not None else None

    def _degrade(self, exc: Exception) -> None:
        """Daemon went away mid-run (its retry budget included): finish the
        run fully in-process.  Artifacts stay bit-identical either way."""
        logger.warning("compile daemon unavailable (%s); "
                       "falling back in-process for the rest of this run",
                       exc)
        self.degraded += 1
        if self.client is not None:
            self._client_retries = self.client.retries
            self.client.close()
        self.client = None

    # --------------------------------------------------------------- single
    def execute(self, job: CompileJob) -> CompiledArtifact:
        key = job.safe_key()
        payload = self.cache.get(key)
        if payload is not None:
            return CompiledArtifact.from_payload(payload, cached=True)
        if self.client is not None and self._pool_safe(job):
            try:
                payload, cached = self.client.execute(job.spec())
            except DaemonUnavailable as exc:
                self._degrade(exc)
            else:
                self.daemon_jobs += 1
                self.cache.put(key, payload)
                return CompiledArtifact.from_payload(payload, cached=cached)
        return super().execute(job)

    # ---------------------------------------------------------------- batch
    def submit(self, jobs: Sequence[CompileJob],
               max_workers: Optional[int] = None) -> BatchReport:
        if self.client is None:
            return super().submit(jobs, max_workers=max_workers)
        remote: List[CompileJob] = []
        local: List[CompileJob] = []
        for job in jobs:
            (remote if self._pool_safe(job) else local).append(job)
        try:
            response = self.client.compile_batch(
                [job.spec() for job in remote]) if remote else None
        except DaemonUnavailable as exc:
            self._degrade(exc)
            return super().submit(jobs, max_workers=max_workers)

        report = BatchReport(submitted=len(jobs), workers=self.max_workers
                             if max_workers is None else max_workers)
        with self._lock:
            self.batches += 1
        if response is not None:
            daemon_report = response["report"]
            self.daemon_jobs += len(remote)
            report.unique += daemon_report["unique"]
            # coalesced jobs cost this client no compile either: count them
            # with the hits, exactly like the daemon's own accounting
            report.cache_hits += (daemon_report["hits"]
                                  + daemon_report["coalesced"])
            report.executed += daemon_report["compiled"]
            seen = set()
            for payload in response["artifacts"]:
                self.cache.put(payload["key"], payload)
                if not payload["ok"] and payload["key"] not in seen:
                    seen.add(payload["key"])
                    report.failures.append((payload["workload"],
                                            payload["error"]))
        if local:
            local_report = super().submit(local, max_workers=max_workers)
            report.unique += local_report.unique
            report.cache_hits += local_report.cache_hits
            report.executed += local_report.executed
            report.pool_executed += local_report.pool_executed
            report.failures.extend(local_report.failures)
            report.timings.update(local_report.timings)
        return report

    # ------------------------------------------------------------- counters
    def counters(self) -> Dict[str, Any]:
        merged = super().counters()
        merged["daemon_jobs"] = self.daemon_jobs
        merged["daemon_degraded"] = self.degraded
        merged["daemon_retries"] = (self.client.retries
                                    if self.client is not None
                                    else self._client_retries)
        return merged

    def daemon_metrics(self) -> Optional[Dict[str, Any]]:
        if self.client is None:
            return None
        try:
            return self.client.metrics()
        except (DaemonUnavailable, DaemonRequestError):
            return None


__all__ = ["DaemonClient", "DaemonBackedService", "DaemonUnavailable",
           "DaemonRequestError", "DaemonProtocolError", "SOCKET_ENV",
           "NO_DAEMON_ENV", "RETRIES_ENV", "DEFAULT_REQUEST_ATTEMPTS",
           "default_socket_path", "resolve_socket_spec", "discover_client",
           "maybe_daemon_service"]
