"""Batch API: drive the paper's tables through the compilation service.

:func:`enumerate_jobs` expands each table into the exact set of
(workload x flow x options) jobs its measurements need; :func:`run_tables`
warms the cache with one deduplicated parallel batch, then regenerates the
tables — whose adapters hit the same service — without recompiling
anything.  The harness is imported lazily to keep ``repro.service`` a leaf
package that :mod:`repro.compilers` can depend on.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from .jobs import CompileJob
from .scheduler import BatchReport, CompileService
from .tuning import (TABLE3_THREADED, TABLE3_THREADS, TABLE5_GRID_SIZES,
                     table3_options)

#: Every flow the batch API can regenerate, in presentation order.
ALL_TABLES = ("table1", "table2", "table3", "table4", "table5", "figure3")


def _filtered(workloads, benchmarks: Optional[Sequence[str]]):
    for workload in workloads:
        if benchmarks is None or workload.name in benchmarks:
            yield workload


def jobs_for(table: str,
             benchmarks: Optional[Sequence[str]] = None,
             engine: str = "compiled") -> List[CompileJob]:
    """The compile jobs one table's measurements will request."""
    from ..workloads import (intrinsic_workloads, table1_workloads,
                             table2_workloads)

    jobs: List[CompileJob] = []
    if table == "table1":
        # one flang artifact per workload feeds all four reference columns
        for w in _filtered(table1_workloads(), benchmarks):
            jobs.append(CompileJob("flang", w.name, workload=w,
                                   engine=engine))
    elif table == "table2":
        for w in _filtered(table2_workloads(), benchmarks):
            jobs.append(CompileJob("ours", w.name, workload=w, engine=engine))
            jobs.append(CompileJob("flang", w.name, workload=w,
                                   engine=engine))
    elif table == "table3":
        for w in _filtered(intrinsic_workloads(), benchmarks):
            opts = table3_options(w.name)
            jobs.append(CompileJob("ours", w.name, workload=w, options=opts,
                                   engine=engine))
            jobs.append(CompileJob("flang", w.name, workload=w,
                                   engine=engine))
            if w.name in TABLE3_THREADED:
                jobs.append(CompileJob("ours", w.name, workload=w,
                                       threads=TABLE3_THREADS, options=opts,
                                       engine=engine))
    elif table == "table4":
        for name in ("jacobi", "pw-advection"):
            kwargs = (("openmp", True),)
            for flow in ("ours", "flang"):
                jobs.append(CompileJob(flow, name, workload_kwargs=kwargs,
                                       engine=engine))
                # all core counts share one parallel-bucket artifact
                jobs.append(CompileJob(flow, name, workload_kwargs=kwargs,
                                       threads=2, engine=engine))
    elif table == "table5":
        for cells in TABLE5_GRID_SIZES:
            kwargs = (("openacc", True), ("grid_cells", cells))
            # ours and the modeled nvfortran column share this artifact
            jobs.append(CompileJob("ours", "pw-advection",
                                   workload_kwargs=kwargs, gpu=True,
                                   engine=engine))
    elif table == "figure3":
        name = benchmarks[0] if benchmarks else "dotproduct"
        jobs.append(CompileJob("ours", name, options={"vector_width": 0},
                               engine=engine))
        jobs.append(CompileJob("ours", name, options={"vector_width": 4},
                               engine=engine))
        jobs.append(CompileJob("ours", name,
                               options={"vector_width": 4, "tile": True},
                               engine=engine))
    else:
        raise KeyError(f"unknown table {table!r} (choose from {ALL_TABLES})")
    return jobs


def enumerate_jobs(tables: Optional[Sequence[str]] = None,
                   benchmarks: Optional[Sequence[str]] = None,
                   engine: str = "compiled") -> List[CompileJob]:
    jobs: List[CompileJob] = []
    for table in tables or ALL_TABLES:
        jobs.extend(jobs_for(table, benchmarks, engine))
    return jobs


def run_tables(tables: Optional[Sequence[str]] = None,
               service: Optional[CompileService] = None,
               max_workers: Optional[int] = None,
               benchmarks: Optional[Sequence[str]] = None,
               engine: str = "compiled",
               incremental: bool = True) -> Dict[str, Any]:
    """Warm the cache in one parallel batch, then regenerate the tables.

    ``incremental=False`` turns off the per-function stage store for every
    job in the batch (compiles from scratch; artifact keys are unaffected).

    Returns ``{"tables": {name: ExperimentTable}, "batch": BatchReport,
    "counters": {...}, "function_counters": {...}, "elapsed_s": {...}}``.
    """
    from . import get_default_service, use_service
    from ..harness import experiments

    tables = tuple(tables or ALL_TABLES)
    service = service or get_default_service()

    jobs = enumerate_jobs(tables, benchmarks, engine)
    if not incremental:
        for job in jobs:
            job.incremental = False

    t0 = time.perf_counter()
    batch: BatchReport = service.submit(jobs, max_workers=max_workers)
    t_batch = time.perf_counter() - t0

    producers = {
        "table1": lambda: experiments.table1(benchmarks, engine=engine),
        "table2": lambda: experiments.table2(benchmarks, engine=engine),
        "table3": lambda: experiments.table3(benchmarks, engine=engine),
        "table4": lambda: experiments.table4(engine=engine),
        "table5": lambda: experiments.table5(TABLE5_GRID_SIZES,
                                             engine=engine),
        "figure3": lambda: experiments.figure3_vectorization(
            benchmarks[0] if benchmarks else "dotproduct", engine=engine),
    }
    results: Dict[str, Any] = {}
    t1 = time.perf_counter()
    with use_service(service):
        for table in tables:
            results[table] = producers[table]()
    t_tables = time.perf_counter() - t1

    return {"tables": results, "batch": batch, "counters": service.counters(),
            "function_counters": service.function_counters(),
            "jit_counters": service.jit_counters(),
            "elapsed_s": {"batch": t_batch, "tables": t_tables,
                          "total": t_batch + t_tables}}


__all__ = ["ALL_TABLES", "jobs_for", "enumerate_jobs", "run_tables"]
