"""Content-addressed artifact cache: in-memory LRU tier over a disk store.

Artifacts are JSON payloads addressed by the SHA-256 of their job's key
material (see :mod:`repro.service.jobs`).  The disk tier is the sharded
store of :mod:`repro.service.sharded`:

    <cache_dir>/CACHE_FORMAT        format version marker
    <cache_dir>/shards/<pp>.json    256 shard files, pp = key[:2]

Keys embed a schema salt (:data:`repro.service.jobs.KEY_SCHEMA_VERSION`),
so bumping the salt invalidates every previously persisted artifact without
touching the store; ``CACHE_FORMAT`` guards the on-disk *layout* instead
(a PR-1 ``objects/`` tree is migrated into shards on first open).
Corrupt or truncated shards are treated as misses and overwritten on the
next store, so a killed run can never poison the cache, and the disk
footprint is bounded by an LRU byte budget (``byte_budget`` /
``$REPRO_CACHE_BUDGET``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Any, Dict, Optional

from . import faults
from .sharded import DEFAULT_BYTE_BUDGET, SHARDED_FORMAT, ShardedStore

#: On-disk layout version (distinct from the key schema salt).
CACHE_FORMAT = SHARDED_FORMAT

#: Default size of the in-memory LRU tier (artifacts, not bytes).
DEFAULT_MEMORY_ENTRIES = 1024


@dataclass
class CacheCounters:
    """Hit/miss accounting, exposed unchanged on the service."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "hits": self.hits, "lookups": self.lookups}


class ArtifactCache:
    """Two-tier content-addressed cache.

    ``cache_dir=None`` keeps the cache purely in memory (still shared across
    every adapter instance in the process); with a directory, artifacts also
    persist across process invocations in the sharded disk store.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 byte_budget: Optional[int] = None):
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._memory_entries = max(0, memory_entries)
        self._lock = Lock()
        self.counters = CacheCounters()
        self._store: Optional[ShardedStore] = None
        if cache_dir:
            self._store = ShardedStore(cache_dir, byte_budget=byte_budget)

    # ------------------------------------------------------------------ info
    @property
    def cache_dir(self) -> Optional[Path]:
        return self._store.directory if self._store is not None else None

    @property
    def store(self) -> Optional[ShardedStore]:
        return self._store

    @property
    def persistent(self) -> bool:
        return self._store is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ---------------------------------------------------------------- lookup
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self.counters.memory_hits += 1
                return payload
        if self._store is not None:
            payload = self._store.get(key)
            # Injected corruption *above* the store's checksum: what a bad
            # deserialisation or a foreign writer would produce.  Consumers
            # (scheduler, daemon, function/jit stores) must treat any
            # malformed payload as a miss, never trust it.
            payload = faults.corrupt_payload("cache.payload.corrupt",
                                             payload, key=key)
            if payload is not None:
                with self._lock:
                    self.counters.disk_hits += 1
                    self._promote(key, payload)
                return payload
        with self._lock:
            self.counters.misses += 1
        return None

    def contains(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self._store is not None and self._store.contains(key)

    # ----------------------------------------------------------------- store
    def put(self, key: str, payload: Dict[str, Any],
            durable: bool = True) -> None:
        """Store ``payload`` in both tiers.

        ``durable=False`` keeps the entry in the in-memory LRU tier only —
        used for state that must not outlive this process, such as a
        timeout-driven quarantine that a differently-loaded machine should
        re-attempt from scratch.
        """
        with self._lock:
            self.counters.stores += 1
            self._promote(key, payload)
        if durable and self._store is not None:
            self._store.put(key, payload)

    def _promote(self, key: str, payload: Dict[str, Any]) -> None:
        """Insert into the LRU tier (caller holds the lock)."""
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    # ----------------------------------------------------------------- admin
    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    def stats(self) -> Dict[str, int]:
        """Counters plus disk-tier accounting (bytes, evictions)."""
        merged = self.counters.as_dict()
        if self._store is not None:
            merged.update(self._store.stats())
        return merged


__all__ = ["ArtifactCache", "CacheCounters", "CACHE_FORMAT",
           "DEFAULT_MEMORY_ENTRIES", "DEFAULT_BYTE_BUDGET"]
