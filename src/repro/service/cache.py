"""Content-addressed artifact cache: in-memory LRU tier over a disk store.

Artifacts are JSON payloads addressed by the SHA-256 of their job's key
material (see :mod:`repro.service.jobs`).  The disk layout is

    <cache_dir>/CACHE_FORMAT              format version marker
    <cache_dir>/objects/<k[:2]>/<k>.json  one artifact per key

Keys embed a schema salt (:data:`repro.service.jobs.KEY_SCHEMA_VERSION`),
so bumping the salt invalidates every previously persisted artifact without
touching the store; ``CACHE_FORMAT`` guards the on-disk *layout* instead.
Corrupt or truncated entries are treated as misses and overwritten on the
next store, so a killed run can never poison the cache.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Any, Dict, Optional

#: On-disk layout version (distinct from the key schema salt).
CACHE_FORMAT = 1

#: Default size of the in-memory LRU tier (artifacts, not bytes).
DEFAULT_MEMORY_ENTRIES = 1024


@dataclass
class CacheCounters:
    """Hit/miss accounting, exposed unchanged on the service."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "hits": self.hits, "lookups": self.lookups}


class ArtifactCache:
    """Two-tier content-addressed cache.

    ``cache_dir=None`` keeps the cache purely in memory (still shared across
    every adapter instance in the process); with a directory, artifacts also
    persist across process invocations.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES):
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._memory_entries = max(0, memory_entries)
        self._lock = Lock()
        self.counters = CacheCounters()
        self._dir: Optional[Path] = None
        if cache_dir:
            self._dir = Path(cache_dir).expanduser()
            (self._dir / "objects").mkdir(parents=True, exist_ok=True)
            marker = self._dir / "CACHE_FORMAT"
            if not marker.exists():
                marker.write_text(f"{CACHE_FORMAT}\n")

    # ------------------------------------------------------------------ info
    @property
    def cache_dir(self) -> Optional[Path]:
        return self._dir

    @property
    def persistent(self) -> bool:
        return self._dir is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _object_path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / "objects" / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- lookup
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self.counters.memory_hits += 1
                return payload
        if self._dir is not None:
            path = self._object_path(key)
            try:
                with path.open("r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                payload = None
            if payload is not None:
                with self._lock:
                    self.counters.disk_hits += 1
                    self._promote(key, payload)
                return payload
        with self._lock:
            self.counters.misses += 1
        return None

    def contains(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self._dir is not None and self._object_path(key).exists()

    # ----------------------------------------------------------------- store
    def put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            self.counters.stores += 1
            self._promote(key, payload)
        if self._dir is not None:
            path = self._object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # atomic publish: a concurrent reader sees the old file or the new
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def _promote(self, key: str, payload: Dict[str, Any]) -> None:
        """Insert into the LRU tier (caller holds the lock)."""
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    # ----------------------------------------------------------------- admin
    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()


__all__ = ["ArtifactCache", "CacheCounters", "CACHE_FORMAT",
           "DEFAULT_MEMORY_ENTRIES"]
