"""Pickle-based serialization of IR subtrees, safe for reuse in-process.

The parallel pass scheduler ships ``func.func`` subtrees to worker
processes, and the function-granular artifact store persists optimised
functions in the content-addressed cache.  Both go through here:

* :func:`dumps_op` pickles a (possibly attached) operation subtree without
  dragging its parent module along — the ``parent`` back-reference is
  cleared for the duration of the dump.
* :func:`loads_op` unpickles and then **renumbers every op and block uid**
  from this process's live counters.  That step is load-bearing: uids are
  identity (``__hash__``) and key process-level caches (the jit engine's
  translation cache is keyed by block uid), so materialising pickled IR
  with its original uids could alias an unrelated live block and replay the
  wrong compiled code.

Use-chain graphs make pickling recursion-heavy, so both directions run
under a temporarily raised recursion limit.
"""

from __future__ import annotations

import pickle
import sys
from contextlib import contextmanager

from .core import Operation, _block_counter, _op_counter

#: Deep enough for use-chains of the largest conformance/bench modules;
#: only raised temporarily, and never lowered below the caller's limit.
_RECURSION_LIMIT = 200_000


@contextmanager
def _deep_recursion():
    previous = sys.getrecursionlimit()
    if previous < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def renumber_uids(root: Operation) -> Operation:
    """Give every op and block under ``root`` a fresh uid from the live
    counters (see module docstring for why this must happen on load)."""
    for op in root.walk():
        op._uid = next(_op_counter)
        for region in op.regions:
            for block in region.blocks:
                block._uid = next(_block_counter)
    return root


def dumps_op(op: Operation) -> bytes:
    """Pickle an operation subtree.

    The subtree must be *isolated from above* (no operand defined outside
    it — true for ``func.func``); the parent link is detached during the
    dump so an attached op serializes without its surrounding module.
    """
    parent = op.parent
    op.parent = None
    try:
        with _deep_recursion():
            return pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        op.parent = parent


def loads_op(payload: bytes) -> Operation:
    """Unpickle a subtree dumped by :func:`dumps_op`, with fresh uids."""
    with _deep_recursion():
        op = pickle.loads(payload)
    if not isinstance(op, Operation):
        raise TypeError(f"payload does not contain an Operation: "
                        f"{type(op).__name__}")
    return renumber_uids(op)


__all__ = ["dumps_op", "loads_op", "renumber_uids"]
