"""Core SSA IR data structures: values, operations, blocks and regions.

The design intentionally mirrors MLIR / xDSL:

* an :class:`Operation` has operands (SSA values), results, an attribute
  dictionary, nested :class:`Region` s and successor :class:`Block` s;
* a :class:`Block` has block arguments and a list of operations;
* a :class:`Region` has a list of blocks and belongs to an operation;
* def-use chains are maintained automatically so that rewrites can replace
  values and erase operations safely.

Operation classes register themselves by their ``OP_NAME`` so passes and the
interpreter can dispatch on the operation name, and generic (unregistered)
operations can still be represented.
"""

from __future__ import annotations

import itertools
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Type as PyType)

from .attributes import Attribute
from .types import Type


class IRError(Exception):
    """Raised for malformed IR or illegal IR manipulation."""


# ---------------------------------------------------------------------------
# Values and uses
# ---------------------------------------------------------------------------

class Use:
    """A single use of a value: (operation, operand index)."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Use({self.operation.name}, {self.index})"


class Value:
    """Base class for SSA values (operation results and block arguments)."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: Type, name_hint: Optional[str] = None):
        self.type = type
        self.uses: List[Use] = []
        self.name_hint = name_hint

    # -- use-list management ----------------------------------------------
    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, operation: "Operation", index: int) -> None:
        for i, u in enumerate(self.uses):
            if u.operation is operation and u.index == index:
                del self.uses[i]
                return
        raise IRError("attempting to remove a use that is not registered")

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def has_one_use(self) -> bool:
        return len(self.uses) == 1

    def users(self) -> List["Operation"]:
        seen: List[Operation] = []
        for u in self.uses:
            if u.operation not in seen:
                seen.append(u.operation)
        return seen

    def replace_all_uses_with(self, new_value: "Value") -> None:
        if new_value is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, new_value)

    # -- info ---------------------------------------------------------------
    @property
    def owner(self):  # Operation | Block
        raise NotImplementedError

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name_hint or ''}: {self.type.mlir()}>"


class OpResult(Value):
    __slots__ = ("op", "index")

    def __init__(self, op: "Operation", index: int, type: Type):
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op


class BlockArgument(Value):
    __slots__ = ("block", "index")

    def __init__(self, block: "Block", index: int, type: Type):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block


# ---------------------------------------------------------------------------
# Operation registry
# ---------------------------------------------------------------------------

OP_REGISTRY: Dict[str, PyType["Operation"]] = {}


def register_op(cls: PyType["Operation"]) -> PyType["Operation"]:
    """Register an operation class under its ``OP_NAME``."""
    name = getattr(cls, "OP_NAME", None)
    if not name:
        raise IRError(f"operation class {cls.__name__} has no OP_NAME")
    OP_REGISTRY[name] = cls
    return cls


def registered_op(name: str) -> Optional[PyType["Operation"]]:
    return OP_REGISTRY.get(name)


# ---------------------------------------------------------------------------
# Operation
# ---------------------------------------------------------------------------

_op_counter = itertools.count()


class Operation:
    """A generic IR operation.

    Subclasses normally define ``OP_NAME`` plus convenience constructors and
    accessors; the base class supports arbitrary (unregistered) operations so
    every dialect concept can be represented even before a dedicated class
    exists.
    """

    OP_NAME: str = "builtin.unregistered"
    #: Trait names (see :mod:`repro.ir.traits`), e.g. ``{"IsTerminator"}``.
    TRAITS: frozenset = frozenset()

    __slots__ = ("name", "_operands", "results", "attributes", "regions",
                 "successors", "parent", "_uid", "loc")

    def __init__(self,
                 operands: Sequence[Value] = (),
                 result_types: Sequence[Type] = (),
                 attributes: Optional[Dict[str, Attribute]] = None,
                 regions: "Sequence[Region] | int" = 0,
                 successors: Sequence["Block"] = (),
                 name: Optional[str] = None,
                 loc: Optional[Any] = None):
        self.name = name or type(self).OP_NAME
        self._uid = next(_op_counter)
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = dict(attributes or {})
        if isinstance(regions, int):
            self.regions: List[Region] = [Region(parent=self) for _ in range(regions)]
        else:
            self.regions = list(regions)
            for r in self.regions:
                r.parent = self
        self.successors: List[Block] = list(successors)
        self.parent: Optional[Block] = None
        self.loc = loc
        for v in operands:
            self._append_operand(v)

    # -- operand management -------------------------------------------------
    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(f"operand of {self.name} is not a Value: {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(Use(self, index))

    def set_operands(self, values: Sequence[Value]) -> None:
        for i, v in enumerate(self._operands):
            v.remove_use(self, i)
        self._operands = []
        for v in values:
            self._append_operand(v)

    def drop_all_references(self) -> None:
        """Drop operand uses and successor references (pre-erase cleanup).

        Ops nested in the erased op's regions die with it: their ``parent``
        is cleared so stale walk snapshots recognise them as erased (the
        pattern drivers and canonicalizer guard on ``op.parent is None``).
        """
        for i, v in enumerate(self._operands):
            v.remove_use(self, i)
        self._operands = []
        self.successors = []
        for region in self.regions:
            for block in region.blocks:
                for op in block.ops:
                    op.parent = None
                    op.drop_all_references()

    # -- attribute helpers ---------------------------------------------------
    def get_attr(self, name: str, default: Optional[Attribute] = None) -> Optional[Attribute]:
        return self.attributes.get(name, default)

    def set_attr(self, name: str, value: Attribute) -> None:
        self.attributes[name] = value

    def has_attr(self, name: str) -> bool:
        return name in self.attributes

    def remove_attr(self, name: str) -> None:
        self.attributes.pop(name, None)

    # -- structural queries --------------------------------------------------
    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(f"{self.name} does not have exactly one result")
        return self.results[0]

    def has_trait(self, trait: str) -> bool:
        return trait in self.TRAITS

    @property
    def dialect(self) -> str:
        return self.name.split(".", 1)[0]

    def parent_op(self) -> Optional["Operation"]:
        if self.parent is None:
            return None
        region = self.parent.parent
        return region.parent if region is not None else None

    def parent_region(self) -> Optional["Region"]:
        return self.parent.parent if self.parent is not None else None

    def ancestors(self) -> Iterator["Operation"]:
        op = self.parent_op()
        while op is not None:
            yield op
            op = op.parent_op()

    def is_ancestor_of(self, other: "Operation") -> bool:
        return any(a is self for a in other.ancestors())

    def walk(self, reverse: bool = False) -> Iterator["Operation"]:
        """Post-order-entry walk: yields this op then all nested ops."""
        yield self
        regions = reversed(self.regions) if reverse else self.regions
        for region in regions:
            blocks = reversed(region.blocks) if reverse else region.blocks
            for block in blocks:
                ops = reversed(block.ops) if reverse else list(block.ops)
                for op in ops:
                    yield from op.walk(reverse=reverse)

    def walk_postorder(self) -> Iterator["Operation"]:
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    yield from op.walk_postorder()
        yield self

    # -- position / mutation ---------------------------------------------------
    def detach(self) -> "Operation":
        if self.parent is not None:
            self.parent.ops.remove(self)
            self.parent = None
        return self

    def erase(self, *, check_uses: bool = True) -> None:
        if check_uses:
            for res in self.results:
                if res.num_uses:
                    raise IRError(
                        f"erasing {self.name} whose result still has uses")
        self.detach()
        self.drop_all_references()

    def move_before(self, other: "Operation") -> None:
        self.detach()
        block = other.parent
        if block is None:
            raise IRError("cannot move before a detached operation")
        idx = block.ops.index(other)
        block.ops.insert(idx, self)
        self.parent = block

    def move_after(self, other: "Operation") -> None:
        self.detach()
        block = other.parent
        if block is None:
            raise IRError("cannot move after a detached operation")
        idx = block.ops.index(other)
        block.ops.insert(idx + 1, self)
        self.parent = block

    def is_before_in_block(self, other: "Operation") -> bool:
        if self.parent is None or self.parent is not other.parent:
            raise IRError("operations are not in the same block")
        ops = self.parent.ops
        return ops.index(self) < ops.index(other)

    def replace_all_uses_with(self, new_values: "Sequence[Value] | Value") -> None:
        if isinstance(new_values, Value):
            new_values = [new_values]
        if len(new_values) != len(self.results):
            raise IRError("replacement value count mismatch")
        for res, new in zip(self.results, new_values):
            res.replace_all_uses_with(new)

    # -- cloning ---------------------------------------------------------------
    def clone(self, value_map: Optional[Dict[Value, Value]] = None,
              block_map: Optional[Dict["Block", "Block"]] = None) -> "Operation":
        """Deep-clone this operation (and nested regions).

        ``value_map`` maps original values to replacement values; operands not
        present in the map are reused as-is (which is correct for values
        defined above the cloned region).
        """
        value_map = value_map if value_map is not None else {}
        block_map = block_map if block_map is not None else {}
        new_operands = [value_map.get(v, v) for v in self._operands]
        new_successors = [block_map.get(b, b) for b in self.successors]
        cls = type(self)
        new_op = Operation.__new__(cls)
        Operation.__init__(
            new_op,
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            regions=0,
            successors=new_successors,
            name=self.name,
            loc=self.loc,
        )
        for old_res, new_res in zip(self.results, new_op.results):
            value_map[old_res] = new_res
        for region in self.regions:
            new_region = Region(parent=new_op)
            new_op.regions.append(new_region)
            # first create blocks + arguments so forward branch references work
            for block in region.blocks:
                new_block = Block(arg_types=[a.type for a in block.args])
                block_map[block] = new_block
                for old_arg, new_arg in zip(block.args, new_block.args):
                    value_map[old_arg] = new_arg
                new_region.add_block(new_block)
            for block in region.blocks:
                new_block = block_map[block]
                for op in block.ops:
                    new_block.add_op(op.clone(value_map, block_map))
        return new_op

    # -- verification -----------------------------------------------------------
    def verify_(self) -> None:
        """Op-specific verification; subclasses may override."""

    def verify(self) -> None:
        from .verifier import verify_operation
        verify_operation(self)

    # -- misc ---------------------------------------------------------------------
    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Operation {self.name} #{self._uid}>"

    def __hash__(self):
        return self._uid

    def __eq__(self, other):
        return self is other


class UnregisteredOp(Operation):
    """An operation whose name has no registered class."""

    OP_NAME = "builtin.unregistered"


def create_operation(name: str,
                     operands: Sequence[Value] = (),
                     result_types: Sequence[Type] = (),
                     attributes: Optional[Dict[str, Attribute]] = None,
                     regions: "Sequence[Region] | int" = 0,
                     successors: Sequence["Block"] = ()) -> Operation:
    """Create an operation by name, using the registered class if available.

    The registered class's ``__init__`` is bypassed (generic construction),
    which matches how MLIR materialises operations from the generic form.
    """
    cls = OP_REGISTRY.get(name, UnregisteredOp)
    op = Operation.__new__(cls)
    Operation.__init__(op, operands=operands, result_types=result_types,
                       attributes=attributes, regions=regions,
                       successors=successors, name=name)
    return op


# ---------------------------------------------------------------------------
# Block
# ---------------------------------------------------------------------------

_block_counter = itertools.count()


class Block:
    """A straight-line sequence of operations ending in a terminator."""

    __slots__ = ("args", "ops", "parent", "_uid")

    def __init__(self, arg_types: Sequence[Type] = ()):
        self._uid = next(_block_counter)
        self.args: List[BlockArgument] = [
            BlockArgument(self, i, t) for i, t in enumerate(arg_types)
        ]
        self.ops: List[Operation] = []
        self.parent: Optional[Region] = None

    # -- arguments ----------------------------------------------------------
    def add_argument(self, type: Type) -> BlockArgument:
        arg = BlockArgument(self, len(self.args), type)
        self.args.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.args[index]
        if arg.num_uses:
            raise IRError("erasing a block argument that still has uses")
        del self.args[index]
        for i, a in enumerate(self.args):
            a.index = i

    # -- op list ------------------------------------------------------------
    def add_op(self, op: Operation) -> Operation:
        op.detach()
        self.ops.append(op)
        op.parent = self
        return op

    append = add_op

    def add_ops(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def insert_op_at(self, index: int, op: Operation) -> Operation:
        op.detach()
        self.ops.insert(index, op)
        op.parent = self
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        return self.insert_op_at(self.ops.index(anchor), op)

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        return self.insert_op_at(self.ops.index(anchor) + 1, op)

    @property
    def first_op(self) -> Optional[Operation]:
        return self.ops[0] if self.ops else None

    @property
    def last_op(self) -> Optional[Operation]:
        return self.ops[-1] if self.ops else None

    @property
    def terminator(self) -> Optional[Operation]:
        last = self.last_op
        if last is not None and last.has_trait("IsTerminator"):
            return last
        return None

    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def walk(self) -> Iterator[Operation]:
        for op in list(self.ops):
            yield from op.walk()

    def index_in_region(self) -> int:
        if self.parent is None:
            raise IRError("block has no parent region")
        return self.parent.blocks.index(self)

    def predecessors(self) -> List["Block"]:
        """Blocks that list this block as a successor (within the region)."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            term = block.last_op
            if term is not None and self in term.successors:
                preds.append(block)
        return preds

    def successors_of_terminator(self) -> List["Block"]:
        term = self.last_op
        return list(term.successors) if term is not None else []

    def erase(self) -> None:
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None
        for op in list(self.ops):
            op.drop_all_references()
        self.ops = []

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Block ^bb{self._uid} ({len(self.ops)} ops)>"

    def __hash__(self):
        return self._uid

    def __eq__(self, other):
        return self is other


# ---------------------------------------------------------------------------
# Region
# ---------------------------------------------------------------------------

class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] = (), parent: Optional[Operation] = None):
        self.blocks: List[Block] = []
        self.parent = parent
        for b in blocks:
            self.add_block(b)

    def add_block(self, block: Block) -> Block:
        self.blocks.append(block)
        block.parent = self
        return block

    def insert_block_at(self, index: int, block: Block) -> Block:
        self.blocks.insert(index, block)
        block.parent = self
        return block

    @property
    def entry_block(self) -> Optional[Block]:
        return self.blocks[0] if self.blocks else None

    @property
    def block(self) -> Block:
        """The single block of a single-block region."""
        if len(self.blocks) != 1:
            raise IRError("region does not have exactly one block")
        return self.blocks[0]

    def walk(self) -> Iterator[Operation]:
        for block in list(self.blocks):
            yield from block.walk()

    def is_empty(self) -> bool:
        return not self.blocks or all(not b.ops for b in self.blocks)

    def move_blocks_to(self, other: "Region") -> None:
        for block in self.blocks:
            block.parent = other
            other.blocks.append(block)
        self.blocks = []

    def clone_into(self, value_map: Dict[Value, Value]) -> "Region":
        new_region = Region()
        block_map: Dict[Block, Block] = {}
        for block in self.blocks:
            new_block = Block(arg_types=[a.type for a in block.args])
            block_map[block] = new_block
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
            new_region.add_block(new_block)
        for block in self.blocks:
            nb = block_map[block]
            for op in block.ops:
                nb.add_op(op.clone(value_map, block_map))
        return new_region

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Region ({len(self.blocks)} blocks)>"


__all__ = [
    "IRError",
    "Use",
    "Value",
    "OpResult",
    "BlockArgument",
    "Operation",
    "UnregisteredOp",
    "Block",
    "Region",
    "OP_REGISTRY",
    "register_op",
    "registered_op",
    "create_operation",
]
