"""Pass and pass-pipeline infrastructure.

Passes are registered by name so that pipelines can be described with the
same textual syntax the paper uses for ``mlir-opt`` (Listing 1), e.g.::

    builtin.module(canonicalize, cse, convert-scf-to-cf,
                   convert-cf-to-llvm{index-bitwidth=64})

:class:`PassManager` parses such strings, instantiates the registered passes
with their options and runs them in order over a module.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .core import IRError, Operation
from .verifier import verify_operation


class PassError(IRError):
    pass


class Pass:
    """Base class for module-level passes."""

    NAME: str = "<unnamed>"

    def __init__(self, **options):
        self.options = options

    def run(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self):  # pragma: no cover
        return f"<Pass {self.NAME} {self.options}>"


class FunctionPass(Pass):
    """Pass that runs independently over every ``func.func`` in the module."""

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name == "func.func":
                self.run_on_function(op)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Callable[..., Pass]] = {}


def register_pass(cls):
    """Class decorator registering a pass under its ``NAME``."""
    name = getattr(cls, "NAME", None)
    if not name or name == "<unnamed>":
        raise PassError(f"pass class {cls.__name__} has no NAME")
    PASS_REGISTRY[name] = cls
    return cls


def get_registered_pass(name: str) -> Callable[..., Pass]:
    if name not in PASS_REGISTRY:
        raise PassError(f"no pass registered under the name '{name}'")
    return PASS_REGISTRY[name]


def available_passes() -> List[str]:
    return sorted(PASS_REGISTRY)


# ---------------------------------------------------------------------------
# Pipeline string parsing
# ---------------------------------------------------------------------------

_OPTION_RE = re.compile(r"([\w-]+)\s*=\s*([^\s}]+)")


def _parse_options(text: str) -> Dict[str, object]:
    options: Dict[str, object] = {}
    for key, value in _OPTION_RE.findall(text):
        key = key.replace("-", "_")
        if value.lower() in ("true", "false"):
            options[key] = value.lower() == "true"
        else:
            try:
                options[key] = int(value)
            except ValueError:
                options[key] = value
    return options


def parse_pipeline(pipeline: str) -> List[Tuple[str, Dict[str, object]]]:
    """Parse an mlir-opt style pipeline string into (pass name, options) pairs.

    The optional ``builtin.module(...)`` wrapper is accepted and stripped.
    """
    text = pipeline.strip()
    wrapper = re.match(r"^builtin\.module\((.*)\)$", text, re.S)
    if wrapper:
        text = wrapper.group(1)
    entries: List[Tuple[str, Dict[str, object]]] = []
    depth = 0
    current = ""
    parts: List[str] = []
    for ch in text:
        if ch == "{":
            depth += 1
            current += ch
        elif ch == "}":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    for part in parts:
        part = part.strip()
        if not part:
            continue
        m = re.match(r"^([\w.\-]+)(\{(.*)\})?$", part, re.S)
        if not m:
            raise PassError(f"cannot parse pipeline entry '{part}'")
        name = m.group(1)
        options = _parse_options(m.group(3) or "")
        entries.append((name, options))
    return entries


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(self, passes: Sequence[Pass] = (), *, verify_each: bool = False,
                 collect_statistics: bool = True):
        self.passes: List[Pass] = list(passes)
        self.verify_each = verify_each
        self.collect_statistics = collect_statistics
        self.statistics: List[Tuple[str, float]] = []

    # -- construction -----------------------------------------------------------
    def add(self, pass_: "Pass | str", **options) -> "PassManager":
        if isinstance(pass_, str):
            pass_ = get_registered_pass(pass_)(**options)
        self.passes.append(pass_)
        return self

    @classmethod
    def from_pipeline(cls, pipeline: str, *, verify_each: bool = False) -> "PassManager":
        pm = cls(verify_each=verify_each)
        for name, options in parse_pipeline(pipeline):
            pm.add(name, **options)
        return pm

    # -- execution ---------------------------------------------------------------
    def run(self, module: Operation) -> Operation:
        for p in self.passes:
            start = time.perf_counter()
            p.run(module)
            elapsed = time.perf_counter() - start
            if self.collect_statistics:
                self.statistics.append((p.NAME, elapsed))
            if self.verify_each:
                verify_operation(module)
        return module

    def describe(self) -> str:
        """Human-readable pipeline description (used by the flow figures)."""
        parts = []
        for p in self.passes:
            if p.options:
                opts = ",".join(f"{k}={v}" for k, v in p.options.items())
                parts.append(f"{p.NAME}{{{opts}}}")
            else:
                parts.append(p.NAME)
        return "builtin.module(" + ", ".join(parts) + ")"


__all__ = [
    "Pass",
    "FunctionPass",
    "PassError",
    "PassManager",
    "PASS_REGISTRY",
    "register_pass",
    "get_registered_pass",
    "available_passes",
    "parse_pipeline",
]
