"""Pass and pass-pipeline infrastructure.

Passes are registered by name so that pipelines can be described with the
same textual syntax the paper uses for ``mlir-opt`` (Listing 1), e.g.::

    builtin.module(canonicalize, cse, convert-scf-to-cf,
                   convert-cf-to-llvm{index-bitwidth=64})

Pipelines may be *op-anchored*: a ``func.func(...)`` entry nests a
sub-pipeline that runs independently over every ``func.func`` in the module,
mirroring MLIR's ``OpPassManager`` nesting::

    builtin.module(func.func(canonicalize, cse), convert-scf-to-cf)

:class:`PassManager` parses such strings, instantiates the registered passes
with their options and runs them in order over a module.  Every ``run()``
produces a fresh :class:`PassTimingReport` (per-pass wall time + IR size
delta) and can drive :class:`PassInstrumentation` hooks (IR dumps before or
after selected passes, verification between passes).

Because an op-anchored sub-pipeline's targets are independent, they are the
unit of *parallel* and *incremental* compilation.  Both are controlled
ambiently through :func:`pipeline_settings` (a :class:`contextvars`
context), so no ``compile()`` signature anywhere needs to change:

* ``jobs > 1`` runs a nest's targets concurrently — on a process pool when
  the pipeline is registry-reconstructible and uninstrumented (real
  parallelism; pass work is pure Python and GIL-bound), else on a thread
  pool with every instrumentation hook serialised under a lock.  Timings
  are merged back in target walk order, so the report is bit-identical in
  structure to a serial run.
* ``function_cache`` (see :mod:`repro.service.incremental`) memoises
  ``func.func`` nest results keyed on the function's structural fingerprint
  salted with the nest's pipeline text: an unchanged function is spliced
  from the cache instead of re-running the pipeline.

Both paths preserve the hard invariant that the resulting IR is
bit-identical to a serial full recompile — passes are deterministic and
function-local within a ``func.func`` nest, and the conformance oracle
polices the equivalence end to end.
"""

from __future__ import annotations

import re
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from threading import Lock
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from .core import IRError, Operation
from .verifier import verify_operation


class PassError(IRError):
    pass


class Pass:
    """Base class for module-level passes."""

    NAME: str = "<unnamed>"

    def __init__(self, **options):
        self.options = options

    def run(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self):  # pragma: no cover
        return f"<Pass {self.NAME} {self.options}>"


class FunctionPass(Pass):
    """Pass that runs independently over every ``func.func`` in the module."""

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name == "func.func":
                self.run_on_function(op)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Callable[..., Pass]] = {}


def register_pass(cls):
    """Class decorator registering a pass under its ``NAME``."""
    name = getattr(cls, "NAME", None)
    if not name or name == "<unnamed>":
        raise PassError(f"pass class {cls.__name__} has no NAME")
    PASS_REGISTRY[name] = cls
    return cls


def get_registered_pass(name: str) -> Callable[..., Pass]:
    if name not in PASS_REGISTRY:
        raise PassError(f"no pass registered under the name '{name}'")
    return PASS_REGISTRY[name]


def available_passes() -> List[str]:
    return sorted(PASS_REGISTRY)


# ---------------------------------------------------------------------------
# Pipeline string parsing
# ---------------------------------------------------------------------------

#: A parsed pipeline entry: either ``(pass_name, options_dict)`` or, for an
#: op-anchored sub-pipeline, ``(anchor_name, [nested entries])``.
PipelineEntry = Tuple[str, Union[Dict[str, object], List["PipelineEntry"]]]

_NAME_RE = re.compile(r"[\w.\-]+")
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+\.?)([eE][+-]?\d+)?$")


#: Non-numeric float spellings accepted (and therefore quoted when they
#: appear as *string* values, to keep the describe/parse round trip exact).
_FLOAT_WORDS = frozenset({"inf", "+inf", "-inf", "infinity", "+infinity",
                          "-infinity", "nan", "+nan", "-nan"})


def _parse_scalar(value: str) -> object:
    """Interpret a bare (unquoted) option value."""
    lowered = value.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        if _NUMBER_RE.match(value) or lowered in _FLOAT_WORDS:
            return float(value)
    except ValueError:  # pragma: no cover - _NUMBER_RE guards float()
        pass
    return value


def _scan_braced(text: str, start: int) -> int:
    """Index just past the ``}`` matching ``text[start] == '{'``, treating
    quoted substrings (with backslash escapes) as opaque."""
    depth = 0
    i, n = start, len(text)
    while i < n:
        ch = text[i]
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            if i >= n:
                raise PassError(
                    f"unterminated quoted value in '{text[start:]}'")
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise PassError(f"unbalanced braces in '{text[start:]}'")


def _parse_options(text: str) -> Dict[str, object]:
    """Parse the ``key=value`` list inside a ``{...}`` option group.

    Pairs are separated by whitespace or commas (both appear in the wild).
    Values may be bare tokens (parsed as bool/int/float when they look like
    one), single- or double-quoted strings (kept verbatim, with ``\\``
    escapes), or balanced ``{...}`` groups kept as raw text.
    """
    options: Dict[str, object] = {}
    i, n = 0, len(text)
    while i < n:
        if text[i] in " \t\n,":
            i += 1
            continue
        m = _NAME_RE.match(text, i)
        if not m:
            raise PassError(f"cannot parse pass options '{text}' "
                            f"(unexpected character {text[i]!r})")
        key = m.group(0).replace("-", "_")
        i = m.end()
        while i < n and text[i] in " \t\n":
            i += 1
        if i >= n or text[i] != "=":
            # a bare flag, mlir style: {flag} means flag=true
            options[key] = True
            continue
        i += 1
        while i < n and text[i] in " \t\n":
            i += 1
        if i < n and text[i] in "\"'":
            quote = text[i]
            i += 1
            chunk: List[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    i += 1
                chunk.append(text[i])
                i += 1
            if i >= n:
                raise PassError(f"unterminated quoted value in options '{text}'")
            i += 1  # closing quote
            options[key] = "".join(chunk)
        elif i < n and text[i] == "{":
            start = i
            i = _scan_braced(text, i)
            options[key] = text[start:i]
        else:
            start = i
            while i < n and text[i] not in " \t\n,":
                i += 1
            options[key] = _parse_scalar(text[start:i])
    return options


def _is_balanced_group(text: str) -> bool:
    if not (text.startswith("{") and text.endswith("}")):
        return False
    try:
        return _scan_braced(text, 0) == len(text)
    except PassError:
        return False


def _quote_option_value(value: object) -> str:
    """Render one option value so that :func:`_parse_options` reads it back
    as an equal object (the describe/parse round trip)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if _is_balanced_group(text):
        return text  # raw {...} group, emitted verbatim
    needs_quotes = (
        text == ""
        or any(ch in text for ch in " \t\n,=\"'(){}")
        or text.lower() in ("true", "false")
        or text.lower() in _FLOAT_WORDS
        or _NUMBER_RE.match(text) is not None
    )
    if needs_quotes:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def format_options(options: Dict[str, object]) -> str:
    """Canonical ``{k=v ...}`` text for a pass option dict ('' when empty)."""
    if not options:
        return ""
    parts = [f"{k.replace('_', '-')}={_quote_option_value(v)}"
             for k, v in options.items()]
    return "{" + " ".join(parts) + "}"


def parse_pipeline(pipeline: str) -> List[PipelineEntry]:
    """Parse an mlir-opt style pipeline string into pipeline entries.

    Flat entries come back as ``(pass_name, options_dict)``; op-anchored
    sub-pipelines (e.g. ``func.func(canonicalize)``) come back as
    ``(anchor, [nested entries])``.  The optional ``builtin.module(...)``
    wrapper is accepted and stripped.
    """
    entries, pos = _parse_entries(pipeline, 0, top=True)
    rest = pipeline[pos:].strip()
    if rest:
        raise PassError(f"trailing text after pipeline: '{rest}'")
    if len(entries) == 1 and entries[0][0] == "builtin.module" \
            and isinstance(entries[0][1], list):
        return entries[0][1]
    return entries


def _parse_entries(text: str, pos: int,
                   top: bool = False) -> Tuple[List[PipelineEntry], int]:
    entries: List[PipelineEntry] = []
    n = len(text)
    need_comma = False
    while pos < n:
        while pos < n and text[pos] in " \t\n":
            pos += 1
        if pos >= n:
            break
        if text[pos] == ",":
            pos += 1
            need_comma = False
            continue
        if text[pos] == ")":
            if top:
                raise PassError(f"unbalanced ')' in pipeline '{text}'")
            return entries, pos
        if need_comma:
            raise PassError(f"expected ',' before '{text[pos:pos + 20]}' "
                            f"in pipeline '{text}'")
        need_comma = True
        m = _NAME_RE.match(text, pos)
        if not m:
            raise PassError(
                f"cannot parse pipeline entry at '{text[pos:pos + 20]}'")
        name = m.group(0)
        pos = m.end()
        if pos < n and text[pos] == "(":
            nested, pos = _parse_entries(text, pos + 1)
            if pos >= n or text[pos] != ")":
                raise PassError(f"unbalanced '(' in pipeline '{text}'")
            pos += 1
            entries.append((name, nested))
        elif pos < n and text[pos] == "{":
            start = pos
            pos = _scan_braced(text, pos)
            entries.append((name, _parse_options(text[start + 1:pos - 1])))
        else:
            entries.append((name, {}))
    return entries, pos


# ---------------------------------------------------------------------------
# Ambient pipeline settings (parallelism + incremental function cache)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineSettings:
    """Ambient knobs every ``PassManager.run`` in the context observes.

    ``function_cache`` is duck-typed: anything with
    ``lookup(key) -> Optional[(Operation, Sequence[PassTiming])]`` and
    ``store(key, func, timings)`` works (the canonical implementation is
    :class:`repro.service.incremental.FunctionArtifactStore` — the ``ir``
    layer deliberately does not import it).
    """

    jobs: int = 1
    function_cache: Optional[Any] = None


_SETTINGS: "ContextVar[PipelineSettings]" = ContextVar(
    "repro_pipeline_settings", default=PipelineSettings())

#: Sentinel: "keep the surrounding context's value" (distinct from ``None``,
#: which explicitly disables the function cache).
_INHERIT = object()


def current_settings() -> PipelineSettings:
    return _SETTINGS.get()


@contextmanager
def pipeline_settings(*, jobs: Optional[int] = None, function_cache=_INHERIT):
    """Scope parallel/incremental compilation settings over a code region.

    ``jobs=None`` inherits the surrounding value; ``function_cache`` keeps
    the surrounding store unless explicitly given (``None`` disables).
    """
    current = _SETTINGS.get()
    updated = PipelineSettings(
        jobs=current.jobs if jobs is None else max(1, int(jobs)),
        function_cache=(current.function_cache
                        if function_cache is _INHERIT else function_cache))
    token = _SETTINGS.set(updated)
    try:
        yield updated
    finally:
        _SETTINGS.reset(token)


# ---------------------------------------------------------------------------
# Per-run statistics
# ---------------------------------------------------------------------------


def ir_size(op: Operation) -> int:
    """Number of operations in ``op``'s tree — the IR size metric reports use."""
    return sum(1 for _ in op.walk())


@dataclass(frozen=True)
class PassTiming:
    """Wall time + IR size effect of one pass execution."""

    pass_name: str
    anchor: str
    wall_s: float
    ops_before: int
    ops_after: int

    @property
    def ir_delta(self) -> int:
        return self.ops_after - self.ops_before

    def as_dict(self) -> Dict[str, Any]:
        return {"pass": self.pass_name, "anchor": self.anchor,
                "wall_s": self.wall_s, "ops_before": self.ops_before,
                "ops_after": self.ops_after, "ir_delta": self.ir_delta}


@dataclass
class PassTimingReport:
    """Structured statistics for one :meth:`PassManager.run` invocation."""

    pipeline: str
    timings: Tuple[PassTiming, ...] = ()

    @property
    def total_s(self) -> float:
        return sum(t.wall_s for t in self.timings)

    def as_dict(self) -> Dict[str, Any]:
        return {"pipeline": self.pipeline, "total_s": self.total_s,
                "passes": [t.as_dict() for t in self.timings]}

    @classmethod
    def merge(cls, reports: Sequence["PassTimingReport"]) -> "PassTimingReport":
        """Associative merge: order-preserving concatenation of reports.

        ``merge([a, b, c]) == merge([merge([a, b]), c]) ==
        merge([a, merge([b, c])])`` — pipeline texts join with ``"; "`` and
        timing tuples concatenate.  Inputs are never mutated (timings are
        immutable tuples of frozen dataclasses), so merging is safe from any
        thread.
        """
        reports = [r for r in reports if r is not None]
        if not reports:
            return cls(pipeline="")
        return cls(pipeline="; ".join(r.pipeline for r in reports),
                   timings=tuple(t for r in reports for t in r.timings))

    def merged(self, other: "PassTimingReport") -> "PassTimingReport":
        return PassTimingReport.merge([self, other])

    def render(self, *, indent: str = "  ") -> str:
        """mlir-opt style ``-mlir-timing`` report text."""
        lines = ["===-------------------------------------------------------===",
                 "                   Pass execution timing report",
                 "===-------------------------------------------------------===",
                 f"{indent}Total execution time: {self.total_s:.6f}s",
                 f"{indent}{'Wall (s)':>10}  {'IR delta':>8}  Pass"]
        for t in self.timings:
            name = t.pass_name if t.anchor == "builtin.module" \
                else f"{t.anchor}({t.pass_name})"
            lines.append(f"{indent}{t.wall_s:>10.6f}  {t.ir_delta:>+8d}  {name}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


class PassInstrumentation:
    """Hooks invoked around every pass execution of a :class:`PassManager`.

    Subclass and override either method; ``op`` is the op the pass anchors on
    (the module for top-level passes, the ``func.func`` for nested ones).
    """

    def before_pass(self, pass_: Pass, op: Operation) -> None:  # pragma: no cover
        pass

    def after_pass(self, pass_: Pass, op: Operation,
                   timing: PassTiming) -> None:  # pragma: no cover
        pass


class IRDumpInstrumentation(PassInstrumentation):
    """Print the IR before and/or after selected passes (``--dump-ir``)."""

    def __init__(self, *, before: bool = False, after: bool = True,
                 only: Optional[Iterable[str]] = None, stream=None):
        self.dump_before = before
        self.dump_after = after
        self.only = set(only) if only is not None else None
        self.stream = stream if stream is not None else sys.stderr

    def _wanted(self, pass_: Pass) -> bool:
        return self.only is None or pass_.NAME in self.only

    def _dump(self, label: str, pass_: Pass, op: Operation) -> None:
        from .printer import print_op
        print(f"// -----// IR dump {label} {pass_.NAME} //----- //",
              file=self.stream)
        print(print_op(op), file=self.stream)

    def before_pass(self, pass_: Pass, op: Operation) -> None:
        if self.dump_before and self._wanted(pass_):
            self._dump("before", pass_, op)

    def after_pass(self, pass_: Pass, op: Operation,
                   timing: PassTiming) -> None:
        if self.dump_after and self._wanted(pass_):
            self._dump("after", pass_, op)


class _LockedInstrumentation(PassInstrumentation):
    """Serialise a wrapped instrumentation's hooks under a shared lock.

    The thread-parallel scheduler wraps every hook in one of these, so
    arbitrary user instrumentations (which may print, write files, mutate
    state) observe one pass execution at a time even while independent
    functions run concurrently.
    """

    def __init__(self, inner: PassInstrumentation, lock: Lock):
        self._inner = inner
        self._lock = lock

    def before_pass(self, pass_: Pass, op: Operation) -> None:
        with self._lock:
            self._inner.before_pass(pass_, op)

    def after_pass(self, pass_: Pass, op: Operation,
                   timing: PassTiming) -> None:
        with self._lock:
            self._inner.after_pass(pass_, op, timing)


# ---------------------------------------------------------------------------
# Parallel scheduling helpers (module-level so pool workers can import them)
# ---------------------------------------------------------------------------


def _replace_in_parent(old: Operation, new: Operation) -> Operation:
    """Splice ``new`` into ``old``'s position; ``old`` is erased.

    Only valid for targets that are isolated from above and produce no SSA
    results (``func.func``): nothing outside the subtree can reference it.
    """
    block = old.parent
    if block is None:
        raise PassError("cannot splice a replacement for a detached op")
    block.insert_before(old, new)
    old.erase(check_uses=False)
    return new


def _pipeline_subtree_worker(payload: bytes, anchor: str, inner: str,
                             collect: bool, verify: bool):
    """Process-pool worker: run a nested pipeline over one pickled subtree.

    Returns ``(pickled result subtree, timing tuple)``.  Verification in a
    worker necessarily covers the subtree, not the whole module — the
    parent re-verifies the module once after the nest when asked to.
    """
    # register every pass before the pipeline text is re-instantiated
    import repro.core  # noqa: F401
    import repro.transforms  # noqa: F401
    from .serial import dumps_op, loads_op

    func = loads_op(payload)
    manager = PassManager(anchor=anchor, collect_statistics=collect)
    if inner:
        manager._extend_from_entries(parse_pipeline(inner))
    timings: List[PassTiming] = []
    stats: List[Tuple[str, float]] = []
    manager._run_entries(func, func, (), timings, stats, verify)
    return dumps_op(func), tuple(timings)


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_SIZE = 0
_POOL_PID: Optional[int] = None
_POOL_LOCK = Lock()


def _shared_pool(jobs: int) -> Optional[ProcessPoolExecutor]:
    """A lazily created, process-wide worker pool (grown on demand).

    Keeping the pool alive across runs amortises process start-up over many
    nests; a forked child (pid change) never reuses its parent's pool.
    """
    global _POOL, _POOL_SIZE, _POOL_PID
    import os
    with _POOL_LOCK:
        if (_POOL is not None and _POOL_PID == os.getpid()
                and _POOL_SIZE >= jobs):
            return _POOL
        if _POOL is not None and _POOL_PID == os.getpid():
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        try:
            _POOL = ProcessPoolExecutor(max_workers=jobs)
            _POOL_SIZE = jobs
            _POOL_PID = os.getpid()
        except Exception:   # restricted environments: no process pools
            _POOL_SIZE = 0
            _POOL_PID = None
        return _POOL


def _discard_pool() -> None:
    global _POOL, _POOL_SIZE, _POOL_PID
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL, _POOL_SIZE, _POOL_PID = None, 0, None


# ---------------------------------------------------------------------------
# PassManager
# ---------------------------------------------------------------------------


class PassManager:
    """Runs a (possibly nested) sequence of passes over a module.

    ``anchor`` names the op kind this manager's passes run on.  The top-level
    manager anchors on ``builtin.module``; :meth:`nest` creates a child
    manager whose passes run once per matching op (MLIR's ``OpPassManager``
    nesting), e.g.::

        pm = PassManager()
        pm.nest("func.func").add("canonicalize").add("cse")
        pm.add("convert-scf-to-cf")

    Each :meth:`run` resets the per-run statistics: ``pm.statistics`` holds
    ``(pass name, seconds)`` pairs for that run only and ``pm.last_report``
    the structured :class:`PassTimingReport`.
    """

    def __init__(self, passes: Sequence[Union[Pass, "PassManager"]] = (), *,
                 anchor: str = "builtin.module", verify_each: bool = False,
                 collect_statistics: bool = True,
                 instrumentations: Sequence[PassInstrumentation] = ()):
        self.passes: List[Union[Pass, PassManager]] = list(passes)
        self.anchor = anchor
        self.verify_each = verify_each
        self.collect_statistics = collect_statistics
        self.instrumentations: List[PassInstrumentation] = list(instrumentations)
        self.statistics: List[Tuple[str, float]] = []
        self.last_report: Optional[PassTimingReport] = None

    # -- construction -----------------------------------------------------------
    def add(self, pass_: "Pass | str", **options) -> "PassManager":
        if isinstance(pass_, str):
            pass_ = get_registered_pass(pass_)(**options)
        self.passes.append(pass_)
        return self

    def nest(self, anchor: str) -> "PassManager":
        """Append and return a sub-pipeline anchored on ``anchor`` ops."""
        child = PassManager(anchor=anchor,
                            collect_statistics=self.collect_statistics)
        self.passes.append(child)
        return child

    def add_instrumentation(self, instr: PassInstrumentation) -> "PassManager":
        self.instrumentations.append(instr)
        return self

    def set_collect_statistics(self, flag: bool) -> "PassManager":
        """Set statistics collection on this manager and every nested one."""
        self.collect_statistics = flag
        for entry in self.passes:
            if isinstance(entry, PassManager):
                entry.set_collect_statistics(flag)
        return self

    @classmethod
    def from_pipeline(cls, pipeline: str, *, verify_each: bool = False,
                      collect_statistics: bool = True) -> "PassManager":
        pm = cls(verify_each=verify_each, collect_statistics=collect_statistics)
        pm._extend_from_entries(parse_pipeline(pipeline))
        return pm

    def _extend_from_entries(self, entries: Sequence[PipelineEntry]) -> None:
        for name, payload in entries:
            if isinstance(payload, list):
                self.nest(name)._extend_from_entries(payload)
            else:
                self.add(name, **payload)

    # -- execution ---------------------------------------------------------------
    def run(self, module: Operation, *,
            instrumentation: Sequence[PassInstrumentation] = ()) -> Operation:
        """Run all passes over ``module``; statistics reset on every call."""
        self.statistics = []
        timings: List[PassTiming] = []
        instruments = self.instrumentations + list(instrumentation)
        self._run_entries(module, module, instruments, timings)
        self.last_report = PassTimingReport(pipeline=self.describe(),
                                            timings=tuple(timings))
        return module

    def _run_entries(self, root: Operation, op: Operation,
                     instruments: Sequence[PassInstrumentation],
                     timings: List[PassTiming],
                     stats: Optional[List[Tuple[str, float]]] = None,
                     verify_each: Optional[bool] = None) -> None:
        stats = self.statistics if stats is None else stats
        verify = self.verify_each if verify_each is None else verify_each
        # between two consecutive passes at this level nothing else mutates
        # ``op``, so the previous pass's post-size is the next pass's
        # pre-size — one tree walk per pass, not two
        size_after_last: Optional[int] = None
        for entry in self.passes:
            if isinstance(entry, PassManager):
                # a nested manager contributes its own hooks on top of the
                # ones inherited from this level
                child_instruments = list(instruments) + entry.instrumentations
                child_verify = verify or entry.verify_each
                entry._run_over_targets(root, op, child_instruments,
                                        timings, stats, child_verify)
                size_after_last = None  # the child mutated our subtree
                continue
            for instr in instruments:
                instr.before_pass(entry, op)
            if self.collect_statistics:
                before = (size_after_last if size_after_last is not None
                          else ir_size(op))
            else:
                before = 0
            start = time.perf_counter()
            entry.run(op)
            elapsed = time.perf_counter() - start
            after = ir_size(op) if self.collect_statistics else 0
            size_after_last = after if self.collect_statistics else None
            timing = PassTiming(pass_name=entry.NAME, anchor=op.name,
                                wall_s=elapsed, ops_before=before,
                                ops_after=after)
            if self.collect_statistics:
                stats.append((entry.NAME, elapsed))
                timings.append(timing)
            for instr in instruments:
                instr.after_pass(entry, op, timing)
            if verify:
                verify_operation(root)

    # -- op-anchored nest scheduling ---------------------------------------------
    def _registry_reconstructible(self) -> bool:
        """True when this pipeline can be rebuilt exactly from its text —
        every pass is the registered class for its name, so a worker process
        (or a cache key) sees the same pipeline the parent describes."""
        for entry in self.passes:
            if isinstance(entry, PassManager):
                if not entry._registry_reconstructible():
                    return False
            elif PASS_REGISTRY.get(entry.NAME) is not type(entry):
                return False
        return True

    def _run_over_targets(self, root: Operation, host: Operation,
                          instruments: Sequence[PassInstrumentation],
                          timings: List[PassTiming],
                          stats: List[Tuple[str, float]],
                          verify: bool) -> None:
        """Run this nested manager over every matching op under ``host``.

        This is where incremental and parallel compilation plug in: cache
        hits are spliced, misses run serially, on a thread pool or on a
        process pool depending on the ambient :class:`PipelineSettings`,
        and timings merge back in target walk order so the report structure
        never depends on scheduling.
        """
        targets = [o for o in host.walk() if o.name == self.anchor]
        if not targets:
            return
        settings = current_settings()

        cache = None
        salt = ""
        if settings.function_cache is not None and self.anchor == "func.func" \
                and self._registry_reconstructible():
            cache = settings.function_cache
            salt = f"{self.anchor}({self._describe_entries()})"

        per_target: List[Optional[List[PassTiming]]] = [None] * len(targets)
        keys: List[Optional[str]] = [None] * len(targets)
        pending: List[int] = []
        spliced_from_cache = False
        for index, target in enumerate(targets):
            if cache is not None and target.parent is not None:
                try:
                    from .structural_hash import structural_fingerprint
                    keys[index] = structural_fingerprint(target, salt=salt)
                    hit = cache.lookup(keys[index])
                except Exception:
                    keys[index] = None
                    hit = None
                if hit is not None:
                    replacement, cached_timings = hit
                    _replace_in_parent(target, replacement)
                    targets[index] = replacement
                    per_target[index] = (list(cached_timings)
                                         if self.collect_statistics else [])
                    spliced_from_cache = True
                    continue
            pending.append(index)

        ran_parallel = False
        if settings.jobs > 1 and len(pending) > 1:
            ran_parallel = self._run_targets_parallel(
                targets, pending, per_target, instruments, verify,
                settings.jobs)
        if not ran_parallel:
            for index in pending:
                local: List[PassTiming] = []
                local_stats: List[Tuple[str, float]] = []
                self._run_entries(root, targets[index], instruments, local,
                                  local_stats, verify)
                per_target[index] = local
        elif verify:
            # parallel runs verified each function subtree per pass; close
            # the gap to serial semantics with one whole-module check
            verify_operation(root)
        if spliced_from_cache and verify and not ran_parallel:
            verify_operation(root)

        if cache is not None:
            for index in pending:
                if keys[index] is None or per_target[index] is None:
                    continue
                try:
                    cache.store(keys[index], targets[index],
                                tuple(per_target[index]))
                except Exception:
                    pass   # a full store is a cache problem, not a compile one

        for target_timings in per_target:
            if not target_timings:
                continue
            timings.extend(target_timings)
            if self.collect_statistics:
                stats.extend((t.pass_name, t.wall_s) for t in target_timings)

    def _run_targets_parallel(self, targets: List[Operation],
                              pending: List[int],
                              per_target: List[Optional[List[PassTiming]]],
                              instruments: Sequence[PassInstrumentation],
                              verify: bool, jobs: int) -> bool:
        """Run the pending targets concurrently; ``False`` means the caller
        should fall back to the serial path for all of them."""
        if not instruments and self._registry_reconstructible() \
                and all(targets[i].parent is not None for i in pending):
            if self._run_targets_processes(targets, pending, per_target,
                                           verify, jobs):
                return True
        return self._run_targets_threaded(targets, pending, per_target,
                                          instruments, verify, jobs)

    def _run_targets_processes(self, targets: List[Operation],
                               pending: List[int],
                               per_target: List[Optional[List[PassTiming]]],
                               verify: bool, jobs: int) -> bool:
        from .serial import dumps_op, loads_op

        try:
            payloads = {i: dumps_op(targets[i]) for i in pending}
        except Exception:
            return False   # unpicklable IR (exotic loc/attr): use threads
        pool = _shared_pool(min(jobs, len(pending)))
        if pool is None:
            return False
        inner = self._describe_entries()
        futures = {}
        try:
            for index in pending:
                futures[index] = pool.submit(
                    _pipeline_subtree_worker, payloads[index], self.anchor,
                    inner, self.collect_statistics, verify)
        except Exception:
            _discard_pool()
            return False
        broken = False
        for index in pending:
            try:
                data, worker_timings = futures[index].result()
                replacement = loads_op(data)
            except Exception:
                # worker infrastructure failure: the original target is
                # untouched (workers mutate a copy), so redo it in-process
                broken = True
                local: List[PassTiming] = []
                local_stats: List[Tuple[str, float]] = []
                self._run_entries(targets[index], targets[index], (), local,
                                  local_stats, verify)
                per_target[index] = local
                continue
            _replace_in_parent(targets[index], replacement)
            targets[index] = replacement
            per_target[index] = list(worker_timings)
        if broken:
            _discard_pool()
        return True

    def _run_targets_threaded(self, targets: List[Operation],
                              pending: List[int],
                              per_target: List[Optional[List[PassTiming]]],
                              instruments: Sequence[PassInstrumentation],
                              verify: bool, jobs: int) -> bool:
        lock = Lock()
        locked = [_LockedInstrumentation(instr, lock)
                  for instr in instruments]

        def run_one(index: int):
            local: List[PassTiming] = []
            local_stats: List[Tuple[str, float]] = []
            # verification covers the target's subtree: whole-module
            # verification while sibling functions mutate is a data race
            self._run_entries(targets[index], targets[index], locked, local,
                              local_stats, verify)
            return index, local

        with ThreadPoolExecutor(
                max_workers=min(jobs, len(pending))) as pool:
            for index, local in pool.map(run_one, pending):
                per_target[index] = local
        return True

    # -- description -------------------------------------------------------------
    def _describe_entries(self) -> str:
        parts = []
        for entry in self.passes:
            if isinstance(entry, PassManager):
                parts.append(f"{entry.anchor}({entry._describe_entries()})")
            else:
                parts.append(f"{entry.NAME}{format_options(entry.options)}")
        return ",".join(parts)

    def describe(self) -> str:
        """Canonical pipeline text; ``parse_pipeline`` round-trips it exactly."""
        return f"builtin.module({self._describe_entries()})"


__all__ = [
    "Pass",
    "FunctionPass",
    "PassError",
    "PassManager",
    "PassInstrumentation",
    "PipelineSettings",
    "pipeline_settings",
    "current_settings",
    "IRDumpInstrumentation",
    "PassTiming",
    "PassTimingReport",
    "PASS_REGISTRY",
    "register_pass",
    "get_registered_pass",
    "available_passes",
    "parse_pipeline",
    "format_options",
    "ir_size",
]
