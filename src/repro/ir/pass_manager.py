"""Pass and pass-pipeline infrastructure.

Passes are registered by name so that pipelines can be described with the
same textual syntax the paper uses for ``mlir-opt`` (Listing 1), e.g.::

    builtin.module(canonicalize, cse, convert-scf-to-cf,
                   convert-cf-to-llvm{index-bitwidth=64})

Pipelines may be *op-anchored*: a ``func.func(...)`` entry nests a
sub-pipeline that runs independently over every ``func.func`` in the module,
mirroring MLIR's ``OpPassManager`` nesting::

    builtin.module(func.func(canonicalize, cse), convert-scf-to-cf)

:class:`PassManager` parses such strings, instantiates the registered passes
with their options and runs them in order over a module.  Every ``run()``
produces a fresh :class:`PassTimingReport` (per-pass wall time + IR size
delta) and can drive :class:`PassInstrumentation` hooks (IR dumps before or
after selected passes, verification between passes).
"""

from __future__ import annotations

import re
import sys
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from .core import IRError, Operation
from .verifier import verify_operation


class PassError(IRError):
    pass


class Pass:
    """Base class for module-level passes."""

    NAME: str = "<unnamed>"

    def __init__(self, **options):
        self.options = options

    def run(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self):  # pragma: no cover
        return f"<Pass {self.NAME} {self.options}>"


class FunctionPass(Pass):
    """Pass that runs independently over every ``func.func`` in the module."""

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name == "func.func":
                self.run_on_function(op)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


PASS_REGISTRY: Dict[str, Callable[..., Pass]] = {}


def register_pass(cls):
    """Class decorator registering a pass under its ``NAME``."""
    name = getattr(cls, "NAME", None)
    if not name or name == "<unnamed>":
        raise PassError(f"pass class {cls.__name__} has no NAME")
    PASS_REGISTRY[name] = cls
    return cls


def get_registered_pass(name: str) -> Callable[..., Pass]:
    if name not in PASS_REGISTRY:
        raise PassError(f"no pass registered under the name '{name}'")
    return PASS_REGISTRY[name]


def available_passes() -> List[str]:
    return sorted(PASS_REGISTRY)


# ---------------------------------------------------------------------------
# Pipeline string parsing
# ---------------------------------------------------------------------------

#: A parsed pipeline entry: either ``(pass_name, options_dict)`` or, for an
#: op-anchored sub-pipeline, ``(anchor_name, [nested entries])``.
PipelineEntry = Tuple[str, Union[Dict[str, object], List["PipelineEntry"]]]

_NAME_RE = re.compile(r"[\w.\-]+")
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+\.?)([eE][+-]?\d+)?$")


#: Non-numeric float spellings accepted (and therefore quoted when they
#: appear as *string* values, to keep the describe/parse round trip exact).
_FLOAT_WORDS = frozenset({"inf", "+inf", "-inf", "infinity", "+infinity",
                          "-infinity", "nan", "+nan", "-nan"})


def _parse_scalar(value: str) -> object:
    """Interpret a bare (unquoted) option value."""
    lowered = value.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        if _NUMBER_RE.match(value) or lowered in _FLOAT_WORDS:
            return float(value)
    except ValueError:  # pragma: no cover - _NUMBER_RE guards float()
        pass
    return value


def _scan_braced(text: str, start: int) -> int:
    """Index just past the ``}`` matching ``text[start] == '{'``, treating
    quoted substrings (with backslash escapes) as opaque."""
    depth = 0
    i, n = start, len(text)
    while i < n:
        ch = text[i]
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            if i >= n:
                raise PassError(
                    f"unterminated quoted value in '{text[start:]}'")
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise PassError(f"unbalanced braces in '{text[start:]}'")


def _parse_options(text: str) -> Dict[str, object]:
    """Parse the ``key=value`` list inside a ``{...}`` option group.

    Pairs are separated by whitespace or commas (both appear in the wild).
    Values may be bare tokens (parsed as bool/int/float when they look like
    one), single- or double-quoted strings (kept verbatim, with ``\\``
    escapes), or balanced ``{...}`` groups kept as raw text.
    """
    options: Dict[str, object] = {}
    i, n = 0, len(text)
    while i < n:
        if text[i] in " \t\n,":
            i += 1
            continue
        m = _NAME_RE.match(text, i)
        if not m:
            raise PassError(f"cannot parse pass options '{text}' "
                            f"(unexpected character {text[i]!r})")
        key = m.group(0).replace("-", "_")
        i = m.end()
        while i < n and text[i] in " \t\n":
            i += 1
        if i >= n or text[i] != "=":
            # a bare flag, mlir style: {flag} means flag=true
            options[key] = True
            continue
        i += 1
        while i < n and text[i] in " \t\n":
            i += 1
        if i < n and text[i] in "\"'":
            quote = text[i]
            i += 1
            chunk: List[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    i += 1
                chunk.append(text[i])
                i += 1
            if i >= n:
                raise PassError(f"unterminated quoted value in options '{text}'")
            i += 1  # closing quote
            options[key] = "".join(chunk)
        elif i < n and text[i] == "{":
            start = i
            i = _scan_braced(text, i)
            options[key] = text[start:i]
        else:
            start = i
            while i < n and text[i] not in " \t\n,":
                i += 1
            options[key] = _parse_scalar(text[start:i])
    return options


def _is_balanced_group(text: str) -> bool:
    if not (text.startswith("{") and text.endswith("}")):
        return False
    try:
        return _scan_braced(text, 0) == len(text)
    except PassError:
        return False


def _quote_option_value(value: object) -> str:
    """Render one option value so that :func:`_parse_options` reads it back
    as an equal object (the describe/parse round trip)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if _is_balanced_group(text):
        return text  # raw {...} group, emitted verbatim
    needs_quotes = (
        text == ""
        or any(ch in text for ch in " \t\n,=\"'(){}")
        or text.lower() in ("true", "false")
        or text.lower() in _FLOAT_WORDS
        or _NUMBER_RE.match(text) is not None
    )
    if needs_quotes:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def format_options(options: Dict[str, object]) -> str:
    """Canonical ``{k=v ...}`` text for a pass option dict ('' when empty)."""
    if not options:
        return ""
    parts = [f"{k.replace('_', '-')}={_quote_option_value(v)}"
             for k, v in options.items()]
    return "{" + " ".join(parts) + "}"


def parse_pipeline(pipeline: str) -> List[PipelineEntry]:
    """Parse an mlir-opt style pipeline string into pipeline entries.

    Flat entries come back as ``(pass_name, options_dict)``; op-anchored
    sub-pipelines (e.g. ``func.func(canonicalize)``) come back as
    ``(anchor, [nested entries])``.  The optional ``builtin.module(...)``
    wrapper is accepted and stripped.
    """
    entries, pos = _parse_entries(pipeline, 0, top=True)
    rest = pipeline[pos:].strip()
    if rest:
        raise PassError(f"trailing text after pipeline: '{rest}'")
    if len(entries) == 1 and entries[0][0] == "builtin.module" \
            and isinstance(entries[0][1], list):
        return entries[0][1]
    return entries


def _parse_entries(text: str, pos: int,
                   top: bool = False) -> Tuple[List[PipelineEntry], int]:
    entries: List[PipelineEntry] = []
    n = len(text)
    need_comma = False
    while pos < n:
        while pos < n and text[pos] in " \t\n":
            pos += 1
        if pos >= n:
            break
        if text[pos] == ",":
            pos += 1
            need_comma = False
            continue
        if text[pos] == ")":
            if top:
                raise PassError(f"unbalanced ')' in pipeline '{text}'")
            return entries, pos
        if need_comma:
            raise PassError(f"expected ',' before '{text[pos:pos + 20]}' "
                            f"in pipeline '{text}'")
        need_comma = True
        m = _NAME_RE.match(text, pos)
        if not m:
            raise PassError(
                f"cannot parse pipeline entry at '{text[pos:pos + 20]}'")
        name = m.group(0)
        pos = m.end()
        if pos < n and text[pos] == "(":
            nested, pos = _parse_entries(text, pos + 1)
            if pos >= n or text[pos] != ")":
                raise PassError(f"unbalanced '(' in pipeline '{text}'")
            pos += 1
            entries.append((name, nested))
        elif pos < n and text[pos] == "{":
            start = pos
            pos = _scan_braced(text, pos)
            entries.append((name, _parse_options(text[start + 1:pos - 1])))
        else:
            entries.append((name, {}))
    return entries, pos


# ---------------------------------------------------------------------------
# Per-run statistics
# ---------------------------------------------------------------------------


def ir_size(op: Operation) -> int:
    """Number of operations in ``op``'s tree — the IR size metric reports use."""
    return sum(1 for _ in op.walk())


@dataclass(frozen=True)
class PassTiming:
    """Wall time + IR size effect of one pass execution."""

    pass_name: str
    anchor: str
    wall_s: float
    ops_before: int
    ops_after: int

    @property
    def ir_delta(self) -> int:
        return self.ops_after - self.ops_before

    def as_dict(self) -> Dict[str, Any]:
        return {"pass": self.pass_name, "anchor": self.anchor,
                "wall_s": self.wall_s, "ops_before": self.ops_before,
                "ops_after": self.ops_after, "ir_delta": self.ir_delta}


@dataclass
class PassTimingReport:
    """Structured statistics for one :meth:`PassManager.run` invocation."""

    pipeline: str
    timings: Tuple[PassTiming, ...] = ()

    @property
    def total_s(self) -> float:
        return sum(t.wall_s for t in self.timings)

    def as_dict(self) -> Dict[str, Any]:
        return {"pipeline": self.pipeline, "total_s": self.total_s,
                "passes": [t.as_dict() for t in self.timings]}

    def merged(self, other: "PassTimingReport") -> "PassTimingReport":
        return PassTimingReport(pipeline=f"{self.pipeline}; {other.pipeline}",
                                timings=self.timings + other.timings)

    def render(self, *, indent: str = "  ") -> str:
        """mlir-opt style ``-mlir-timing`` report text."""
        lines = ["===-------------------------------------------------------===",
                 "                   Pass execution timing report",
                 "===-------------------------------------------------------===",
                 f"{indent}Total execution time: {self.total_s:.6f}s",
                 f"{indent}{'Wall (s)':>10}  {'IR delta':>8}  Pass"]
        for t in self.timings:
            name = t.pass_name if t.anchor == "builtin.module" \
                else f"{t.anchor}({t.pass_name})"
            lines.append(f"{indent}{t.wall_s:>10.6f}  {t.ir_delta:>+8d}  {name}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


class PassInstrumentation:
    """Hooks invoked around every pass execution of a :class:`PassManager`.

    Subclass and override either method; ``op`` is the op the pass anchors on
    (the module for top-level passes, the ``func.func`` for nested ones).
    """

    def before_pass(self, pass_: Pass, op: Operation) -> None:  # pragma: no cover
        pass

    def after_pass(self, pass_: Pass, op: Operation,
                   timing: PassTiming) -> None:  # pragma: no cover
        pass


class IRDumpInstrumentation(PassInstrumentation):
    """Print the IR before and/or after selected passes (``--dump-ir``)."""

    def __init__(self, *, before: bool = False, after: bool = True,
                 only: Optional[Iterable[str]] = None, stream=None):
        self.dump_before = before
        self.dump_after = after
        self.only = set(only) if only is not None else None
        self.stream = stream if stream is not None else sys.stderr

    def _wanted(self, pass_: Pass) -> bool:
        return self.only is None or pass_.NAME in self.only

    def _dump(self, label: str, pass_: Pass, op: Operation) -> None:
        from .printer import print_op
        print(f"// -----// IR dump {label} {pass_.NAME} //----- //",
              file=self.stream)
        print(print_op(op), file=self.stream)

    def before_pass(self, pass_: Pass, op: Operation) -> None:
        if self.dump_before and self._wanted(pass_):
            self._dump("before", pass_, op)

    def after_pass(self, pass_: Pass, op: Operation,
                   timing: PassTiming) -> None:
        if self.dump_after and self._wanted(pass_):
            self._dump("after", pass_, op)


# ---------------------------------------------------------------------------
# PassManager
# ---------------------------------------------------------------------------


class PassManager:
    """Runs a (possibly nested) sequence of passes over a module.

    ``anchor`` names the op kind this manager's passes run on.  The top-level
    manager anchors on ``builtin.module``; :meth:`nest` creates a child
    manager whose passes run once per matching op (MLIR's ``OpPassManager``
    nesting), e.g.::

        pm = PassManager()
        pm.nest("func.func").add("canonicalize").add("cse")
        pm.add("convert-scf-to-cf")

    Each :meth:`run` resets the per-run statistics: ``pm.statistics`` holds
    ``(pass name, seconds)`` pairs for that run only and ``pm.last_report``
    the structured :class:`PassTimingReport`.
    """

    def __init__(self, passes: Sequence[Union[Pass, "PassManager"]] = (), *,
                 anchor: str = "builtin.module", verify_each: bool = False,
                 collect_statistics: bool = True,
                 instrumentations: Sequence[PassInstrumentation] = ()):
        self.passes: List[Union[Pass, PassManager]] = list(passes)
        self.anchor = anchor
        self.verify_each = verify_each
        self.collect_statistics = collect_statistics
        self.instrumentations: List[PassInstrumentation] = list(instrumentations)
        self.statistics: List[Tuple[str, float]] = []
        self.last_report: Optional[PassTimingReport] = None

    # -- construction -----------------------------------------------------------
    def add(self, pass_: "Pass | str", **options) -> "PassManager":
        if isinstance(pass_, str):
            pass_ = get_registered_pass(pass_)(**options)
        self.passes.append(pass_)
        return self

    def nest(self, anchor: str) -> "PassManager":
        """Append and return a sub-pipeline anchored on ``anchor`` ops."""
        child = PassManager(anchor=anchor,
                            collect_statistics=self.collect_statistics)
        self.passes.append(child)
        return child

    def add_instrumentation(self, instr: PassInstrumentation) -> "PassManager":
        self.instrumentations.append(instr)
        return self

    def set_collect_statistics(self, flag: bool) -> "PassManager":
        """Set statistics collection on this manager and every nested one."""
        self.collect_statistics = flag
        for entry in self.passes:
            if isinstance(entry, PassManager):
                entry.set_collect_statistics(flag)
        return self

    @classmethod
    def from_pipeline(cls, pipeline: str, *, verify_each: bool = False,
                      collect_statistics: bool = True) -> "PassManager":
        pm = cls(verify_each=verify_each, collect_statistics=collect_statistics)
        pm._extend_from_entries(parse_pipeline(pipeline))
        return pm

    def _extend_from_entries(self, entries: Sequence[PipelineEntry]) -> None:
        for name, payload in entries:
            if isinstance(payload, list):
                self.nest(name)._extend_from_entries(payload)
            else:
                self.add(name, **payload)

    # -- execution ---------------------------------------------------------------
    def run(self, module: Operation, *,
            instrumentation: Sequence[PassInstrumentation] = ()) -> Operation:
        """Run all passes over ``module``; statistics reset on every call."""
        self.statistics = []
        timings: List[PassTiming] = []
        instruments = self.instrumentations + list(instrumentation)
        self._run_entries(module, module, instruments, timings)
        self.last_report = PassTimingReport(pipeline=self.describe(),
                                            timings=tuple(timings))
        return module

    def _run_entries(self, root: Operation, op: Operation,
                     instruments: Sequence[PassInstrumentation],
                     timings: List[PassTiming],
                     stats: Optional[List[Tuple[str, float]]] = None,
                     verify_each: Optional[bool] = None) -> None:
        stats = self.statistics if stats is None else stats
        verify = self.verify_each if verify_each is None else verify_each
        # between two consecutive passes at this level nothing else mutates
        # ``op``, so the previous pass's post-size is the next pass's
        # pre-size — one tree walk per pass, not two
        size_after_last: Optional[int] = None
        for entry in self.passes:
            if isinstance(entry, PassManager):
                # a nested manager contributes its own hooks on top of the
                # ones inherited from this level
                child_instruments = list(instruments) + entry.instrumentations
                child_verify = verify or entry.verify_each
                targets = [o for o in op.walk() if o.name == entry.anchor]
                for target in targets:
                    entry._run_entries(root, target, child_instruments,
                                       timings, stats, child_verify)
                size_after_last = None  # the child mutated our subtree
                continue
            for instr in instruments:
                instr.before_pass(entry, op)
            if self.collect_statistics:
                before = (size_after_last if size_after_last is not None
                          else ir_size(op))
            else:
                before = 0
            start = time.perf_counter()
            entry.run(op)
            elapsed = time.perf_counter() - start
            after = ir_size(op) if self.collect_statistics else 0
            size_after_last = after if self.collect_statistics else None
            timing = PassTiming(pass_name=entry.NAME, anchor=op.name,
                                wall_s=elapsed, ops_before=before,
                                ops_after=after)
            if self.collect_statistics:
                stats.append((entry.NAME, elapsed))
                timings.append(timing)
            for instr in instruments:
                instr.after_pass(entry, op, timing)
            if verify:
                verify_operation(root)

    # -- description -------------------------------------------------------------
    def _describe_entries(self) -> str:
        parts = []
        for entry in self.passes:
            if isinstance(entry, PassManager):
                parts.append(f"{entry.anchor}({entry._describe_entries()})")
            else:
                parts.append(f"{entry.NAME}{format_options(entry.options)}")
        return ",".join(parts)

    def describe(self) -> str:
        """Canonical pipeline text; ``parse_pipeline`` round-trips it exactly."""
        return f"builtin.module({self._describe_entries()})"


__all__ = [
    "Pass",
    "FunctionPass",
    "PassError",
    "PassManager",
    "PassInstrumentation",
    "IRDumpInstrumentation",
    "PassTiming",
    "PassTimingReport",
    "PASS_REGISTRY",
    "register_pass",
    "get_registered_pass",
    "available_passes",
    "parse_pipeline",
    "format_options",
    "ir_size",
]
