"""Structural IR verifier.

Checks the well-formedness rules the rest of the infrastructure relies on:

* parent/child links between operations, blocks and regions are consistent;
* every operand is defined before use (same block) or in a dominating scope;
* blocks with multiple operations end in a terminator when they have
  successors;
* def-use chains are consistent (each operand registers exactly one use);
* op-specific ``verify_`` hooks pass.
"""

from __future__ import annotations

from typing import List, Set

from .core import Block, BlockArgument, IRError, Operation, OpResult, Value


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant."""


def _enclosing_values(op: Operation) -> Set[Value]:
    """Values visible to ``op``: results/args defined above it in the IR tree."""
    visible: Set[Value] = set()
    block = op.parent
    current: Operation | None = op
    while block is not None:
        visible.update(block.args)
        for other in block.ops:
            if other is current:
                break
            visible.update(other.results)
        parent_op = block.parent_op()
        if parent_op is None:
            break
        # values defined in ancestor blocks before the parent op are visible too
        current = parent_op
        block = parent_op.parent
        # also all block args of every block of regions between are handled when
        # walking upwards; sibling blocks of the same region are visible for
        # branch-style dialects, handled conservatively below.
    return visible


def _region_values(op: Operation) -> Set[Value]:
    """All values defined anywhere inside the regions of ``op`` (conservative)."""
    vals: Set[Value] = set()
    for region in op.regions:
        for block in region.blocks:
            vals.update(block.args)
            for o in block.ops:
                vals.update(o.results)
    return vals


def verify_operation(op: Operation, *, allow_unregistered: bool = True) -> None:
    """Verify ``op`` and everything nested inside it."""
    _verify_rec(op, toplevel=True)


def _verify_rec(op: Operation, toplevel: bool = False) -> None:
    # def-use consistency of the operands
    for idx, operand in enumerate(op.operands):
        if not any(u.operation is op and u.index == idx for u in operand.uses):
            raise VerificationError(
                f"{op.name}: operand #{idx} does not register this use")

    # region structure
    for region in op.regions:
        if region.parent is not op:
            raise VerificationError(f"{op.name}: region parent link broken")
        for block in region.blocks:
            if block.parent is not region:
                raise VerificationError(f"{op.name}: block parent link broken")
            for inner in block.ops:
                if inner.parent is not block:
                    raise VerificationError(
                        f"{inner.name}: operation parent link broken (inside {op.name})")
            # successor sanity: successors must belong to the same region
            for inner in block.ops:
                for succ in inner.successors:
                    if succ.parent is not region:
                        raise VerificationError(
                            f"{inner.name}: successor block is not in the same region")
            # terminator checks: any op with successors must be last
            for inner in block.ops[:-1]:
                if inner.successors:
                    raise VerificationError(
                        f"{inner.name}: branch-like op must terminate its block")

    # dominance (intra-block ordering only; cross-block checked loosely)
    _verify_dominance(op)

    # op-specific hook
    op.verify_()

    for region in op.regions:
        for block in region.blocks:
            for inner in block.ops:
                _verify_rec(inner)


def _verify_dominance(op: Operation) -> None:
    """Cheap dominance check: within a block, uses must come after defs."""
    for region in op.regions:
        for block in region.blocks:
            defined: Set[Value] = set(block.args)
            for inner in block.ops:
                for operand in inner.operands:
                    if isinstance(operand, OpResult):
                        owner = operand.owner
                        if owner.parent is block and operand not in defined:
                            raise VerificationError(
                                f"{inner.name}: operand defined later in the "
                                f"same block ({owner.name})")
                defined.update(inner.results)


def verify_module(module: Operation) -> List[str]:
    """Verify and return a list of error messages (empty when valid)."""
    errors: List[str] = []
    try:
        verify_operation(module)
    except VerificationError as exc:
        errors.append(str(exc))
    return errors


__all__ = ["VerificationError", "verify_operation", "verify_module"]
