"""Builtin type system for the MLIR-like IR.

Types are attributes (as in MLIR).  Dialect-specific types (FIR references,
boxes, LLVM pointers, ...) live with their dialects but derive from
:class:`Type` defined here.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .attributes import Attribute

#: Sentinel used in shaped types for a dynamic dimension (MLIR prints ``?``).
DYNAMIC = -1


class Type(Attribute):
    """Base class of all types."""

    __slots__ = ()


class NoneType(Type):
    __slots__ = ()

    def mlir(self) -> str:
        return "none"


class IndexType(Type):
    """Target-width integer used for loop indices and memory subscripts."""

    __slots__ = ()

    def mlir(self) -> str:
        return "index"


class IntegerType(Type):
    __slots__ = ("width", "signed")

    def __init__(self, width: int, signed: bool = True):
        self.width = int(width)
        self.signed = bool(signed)

    def _key(self):
        return (self.width, self.signed)

    def mlir(self) -> str:
        return f"i{self.width}" if self.signed else f"ui{self.width}"


class FloatType(Type):
    __slots__ = ("width",)

    def __init__(self, width: int):
        if width not in (16, 32, 64, 128):
            raise ValueError(f"unsupported float width {width}")
        self.width = width

    def _key(self):
        return (self.width,)

    def mlir(self) -> str:
        return f"f{self.width}"


class ComplexType(Type):
    __slots__ = ("element_type",)

    def __init__(self, element_type: Type):
        self.element_type = element_type

    def _key(self):
        return (self.element_type,)

    def mlir(self) -> str:
        return f"complex<{self.element_type.mlir()}>"


class FunctionType(Type):
    __slots__ = ("inputs", "results")

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]):
        self.inputs = tuple(inputs)
        self.results = tuple(results)

    def _key(self):
        return (self.inputs, self.results)

    def mlir(self) -> str:
        ins = ", ".join(t.mlir() for t in self.inputs)
        if len(self.results) == 1:
            outs = self.results[0].mlir()
        else:
            outs = "(" + ", ".join(t.mlir() for t in self.results) + ")"
        return f"({ins}) -> {outs}"


class TupleType(Type):
    __slots__ = ("types",)

    def __init__(self, types: Sequence[Type]):
        self.types = tuple(types)

    def _key(self):
        return (self.types,)

    def mlir(self) -> str:
        return "tuple<" + ", ".join(t.mlir() for t in self.types) + ">"


class ShapedType(Type):
    """Common behaviour for memref / tensor / vector types."""

    __slots__ = ("shape", "element_type")

    def __init__(self, shape: Sequence[int], element_type: Type):
        self.shape = tuple(int(d) for d in shape)
        self.element_type = element_type

    def _key(self):
        return (self.shape, self.element_type)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    def num_dynamic_dims(self) -> int:
        return sum(1 for d in self.shape if d == DYNAMIC)

    def num_elements(self) -> Optional[int]:
        if not self.has_static_shape():
            return None
        n = 1
        for d in self.shape:
            n *= d
        return n

    def _shape_str(self) -> str:
        parts = ["?" if d == DYNAMIC else str(d) for d in self.shape]
        return "x".join(parts + [self.element_type.mlir()])


class MemRefType(ShapedType):
    """A reference to a region of memory (MLIR ``memref``).

    ``shape`` may contain :data:`DYNAMIC` entries for dynamically sized
    dimensions.  A rank-0 memref (empty shape) holds a single element; it is
    the representation this reproduction uses for scalar variables and for
    the outer container of allocatable arrays (memref-of-memref).
    """

    __slots__ = ("memory_space",)

    def __init__(self, shape: Sequence[int], element_type: Type,
                 memory_space: str | None = None):
        super().__init__(shape, element_type)
        self.memory_space = memory_space

    def _key(self):
        return (self.shape, self.element_type, self.memory_space)

    def mlir(self) -> str:
        inner = self._shape_str() if self.shape else self.element_type.mlir()
        if self.memory_space:
            return f"memref<{inner}, {self.memory_space}>"
        return f"memref<{inner}>"


class TensorType(ShapedType):
    __slots__ = ()

    def mlir(self) -> str:
        inner = self._shape_str() if self.shape else self.element_type.mlir()
        return f"tensor<{inner}>"


class VectorType(ShapedType):
    __slots__ = ()

    def __init__(self, shape: Sequence[int], element_type: Type):
        super().__init__(shape, element_type)
        if any(d == DYNAMIC for d in self.shape):
            raise ValueError("vector types must have a static shape")

    def mlir(self) -> str:
        return f"vector<{self._shape_str()}>"


# ---------------------------------------------------------------------------
# Interned singletons for the common cases.
# ---------------------------------------------------------------------------

i1 = IntegerType(1)
i8 = IntegerType(8)
i16 = IntegerType(16)
i32 = IntegerType(32)
i64 = IntegerType(64)
f32 = FloatType(32)
f64 = FloatType(64)
index = IndexType()
none = NoneType()


def is_integer(t: Attribute) -> bool:
    return isinstance(t, (IntegerType, IndexType))


def is_float(t: Attribute) -> bool:
    return isinstance(t, FloatType)


def is_scalar(t: Attribute) -> bool:
    return is_integer(t) or is_float(t) or isinstance(t, ComplexType)


def bitwidth(t: Attribute) -> int:
    """Bit width of a scalar type (index counts as 64)."""
    if isinstance(t, IntegerType):
        return t.width
    if isinstance(t, FloatType):
        return t.width
    if isinstance(t, IndexType):
        return 64
    if isinstance(t, ComplexType):
        return 2 * bitwidth(t.element_type)
    raise TypeError(f"no bitwidth for type {t}")


__all__ = [
    "DYNAMIC",
    "Type",
    "NoneType",
    "IndexType",
    "IntegerType",
    "FloatType",
    "ComplexType",
    "FunctionType",
    "TupleType",
    "ShapedType",
    "MemRefType",
    "TensorType",
    "VectorType",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "f32",
    "f64",
    "index",
    "none",
    "is_integer",
    "is_float",
    "is_scalar",
    "bitwidth",
]
