"""Textual printer producing MLIR-generic-form-style output.

The output closely follows MLIR's generic operation form, e.g.::

    %3 = "arith.addi"(%1, %2) : (i32, i32) -> i32
    "scf.if"(%5) ({ ... }, { ... }) : (i1) -> ()

The printer assigns SSA names (``%0``, ``%1``, ...) and block names
(``^bb0``, ...) deterministically per top-level operation so output is stable
across runs and suitable for FileCheck-style substring assertions in tests.
"""

from __future__ import annotations

from io import StringIO
from typing import Dict, Optional

from .attributes import Attribute
from .core import Block, BlockArgument, Operation, Region, Value


class Printer:
    def __init__(self, *, indent_width: int = 2):
        self.indent_width = indent_width
        self._value_names: Dict[Value, str] = {}
        self._block_names: Dict[Block, str] = {}
        self._next_value = 0
        self._next_block = 0

    # -- naming ---------------------------------------------------------------
    def _name_value(self, value: Value) -> str:
        if value not in self._value_names:
            if value.name_hint:
                name = f"%{value.name_hint}_{self._next_value}"
            else:
                name = f"%{self._next_value}"
            self._next_value += 1
            self._value_names[value] = name
        return self._value_names[value]

    def _name_block(self, block: Block) -> str:
        if block not in self._block_names:
            self._block_names[block] = f"^bb{self._next_block}"
            self._next_block += 1
        return self._block_names[block]

    # -- printing ---------------------------------------------------------------
    def print_module(self, op: Operation) -> str:
        out = StringIO()
        self._print_op(op, out, 0)
        return out.getvalue()

    print_op = print_module

    def _print_attr(self, attr: Attribute) -> str:
        return attr.mlir()

    def _print_op(self, op: Operation, out: StringIO, indent: int) -> None:
        pad = " " * (indent * self.indent_width)
        results = ", ".join(self._name_value(r) for r in op.results)
        prefix = f"{pad}{results} = " if results else pad
        operands = ", ".join(self._name_value(o) for o in op.operands)
        out.write(f'{prefix}"{op.name}"({operands})')
        if op.successors:
            succ = ", ".join(self._name_block(b) for b in op.successors)
            out.write(f"[{succ}]")
        if op.regions:
            out.write(" (")
            for i, region in enumerate(op.regions):
                if i:
                    out.write(", ")
                self._print_region(region, out, indent)
            out.write(")")
        if op.attributes:
            inner = ", ".join(
                f'"{k}" = {self._print_attr(v)}' for k, v in sorted(op.attributes.items())
            )
            out.write(" {" + inner + "}")
        in_types = ", ".join(o.type.mlir() for o in op.operands)
        if len(op.results) == 1:
            out_types = op.results[0].type.mlir()
        else:
            out_types = "(" + ", ".join(r.type.mlir() for r in op.results) + ")"
        out.write(f" : ({in_types}) -> {out_types}\n")

    def _print_region(self, region: Region, out: StringIO, indent: int) -> None:
        out.write("{\n")
        multi_block = len(region.blocks) > 1
        for block in region.blocks:
            if multi_block or block.args:
                pad = " " * ((indent + 1) * self.indent_width)
                args = ", ".join(
                    f"{self._name_value(a)}: {a.type.mlir()}" for a in block.args
                )
                out.write(f"{pad}{self._name_block(block)}({args}):\n")
            for op in block.ops:
                self._print_op(op, out, indent + 1)
        pad = " " * (indent * self.indent_width)
        out.write(f"{pad}}}")


def print_op(op: Operation) -> str:
    """Print an operation (or module) in generic form."""
    return Printer().print_module(op)


def print_block(block: Block) -> str:
    out = StringIO()
    printer = Printer()
    for op in block.ops:
        printer._print_op(op, out, 0)
    return out.getvalue()


def dump(op: Operation) -> None:  # pragma: no cover - convenience
    print(print_op(op))


__all__ = ["Printer", "print_op", "print_block", "dump"]
