"""Insertion-point based IR builder.

The builder tracks an insertion point (a block and a position inside it) and
inserts every created operation there, mirroring ``mlir::OpBuilder``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from .core import Block, IRError, Operation, Region, Value


class InsertPoint:
    """A position inside a block: before ``anchor`` or at the block end."""

    __slots__ = ("block", "anchor")

    def __init__(self, block: Block, anchor: Optional[Operation] = None):
        self.block = block
        self.anchor = anchor

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        return InsertPoint(block, None)

    @staticmethod
    def at_start(block: Block) -> "InsertPoint":
        return InsertPoint(block, block.first_op)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("cannot build an insertion point before a detached op")
        return InsertPoint(op.parent, op)

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("cannot build an insertion point after a detached op")
        block = op.parent
        idx = block.ops.index(op)
        anchor = block.ops[idx + 1] if idx + 1 < len(block.ops) else None
        return InsertPoint(block, anchor)


class Builder:
    """Creates operations at a movable insertion point."""

    def __init__(self, insert_point: Optional[InsertPoint] = None):
        self._ip = insert_point

    # -- insertion point management ------------------------------------------
    @property
    def insertion_point(self) -> Optional[InsertPoint]:
        return self._ip

    def set_insertion_point(self, ip: InsertPoint) -> None:
        self._ip = ip

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._ip = InsertPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self._ip = InsertPoint.at_start(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self._ip = InsertPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self._ip = InsertPoint.after(op)

    @contextmanager
    def at(self, ip: InsertPoint):
        """Temporarily move the insertion point."""
        saved = self._ip
        self._ip = ip
        try:
            yield self
        finally:
            self._ip = saved

    @contextmanager
    def at_end_of(self, block: Block):
        with self.at(InsertPoint.at_end(block)):
            yield self

    # -- insertion --------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        if self._ip is None:
            raise IRError("builder has no insertion point")
        block = self._ip.block
        anchor = self._ip.anchor
        if anchor is None:
            block.add_op(op)
        else:
            block.insert_before(anchor, op)
        return op

    def insert_all(self, ops: Sequence[Operation]) -> None:
        for op in ops:
            self.insert(op)

    # -- region/block helpers ------------------------------------------------------
    def create_block(self, region: Region, arg_types: Sequence = ()) -> Block:
        block = Block(arg_types=arg_types)
        region.add_block(block)
        return block

    def create_block_before(self, region: Region, index: int,
                            arg_types: Sequence = ()) -> Block:
        block = Block(arg_types=arg_types)
        region.insert_block_at(index, block)
        return block


__all__ = ["InsertPoint", "Builder"]
