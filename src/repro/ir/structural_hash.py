"""Deterministic structural hashing of IR subtrees.

:func:`structural_fingerprint` reduces an operation tree to a SHA-256 hex
digest over everything that determines how passes transform it: operation
names, attributes, operand/result types, the def-use structure (via local
value numbering, exactly like the printer's per-``Printer`` SSA numbers),
successor blocks, and region/block shape.  Object identity, ``_uid``
counters and ``name_hint`` cosmetics are deliberately excluded, so a
``clone()`` — or the same function re-built by a fresh frontend run — hashes
identically.

This is the addressing scheme of function-granular incremental compilation:
a ``func.func`` hashed at pipeline entry, salted with the nested pipeline's
canonical description, keys the per-function stage artifacts in
:mod:`repro.service.incremental`.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from .core import Block, Operation, Value

#: Bump when the token stream below changes meaning: every previously
#: computed fingerprint then stops matching, exactly like the service's
#: ``KEY_SCHEMA_VERSION`` salt.
STRUCTURAL_HASH_VERSION = 1


class _Fingerprinter:
    """Builds a canonical token stream for one op tree, hashed in one shot.

    Tokens accumulate in a list and hit SHA-256 as a single
    ``\\x00``-joined buffer at the end — this sits on the hot path of every
    incremental lookup (one fingerprint per function per nest), and one
    big ``update`` beats a quarter-million small ones by ~2x.  Type
    renderings are memoised by object identity within one fingerprint;
    the IR holds the objects alive, so ids cannot be recycled mid-run.
    """

    def __init__(self, salt: str):
        self._tokens = [f"structural-hash:v{STRUCTURAL_HASH_VERSION}",
                        f"salt:{salt}"]
        #: Local numbering for values defined inside the hashed subtree,
        #: assigned in visit order (the printer's scheme).
        self._values: Dict[int, int] = {}
        #: Values defined *outside* the subtree get stable ``ext`` numbers
        #: in first-encounter order instead, so the hash stays well-defined
        #: even for non-isolated subtrees.
        self._external: Dict[int, int] = {}
        self._blocks: Dict[int, int] = {}
        self._type_mlir: Dict[int, str] = {}

    def _type_token(self, type_) -> str:
        token = self._type_mlir.get(id(type_))
        if token is None:
            token = type_.mlir()
            self._type_mlir[id(type_)] = token
        return token

    def _value_token(self, value: Value) -> str:
        number = self._values.get(id(value))
        if number is not None:
            return f"v{number}"
        number = self._external.setdefault(id(value), len(self._external))
        return f"ext{number}:{self._type_token(value.type)}"

    def _block_token(self, block: Block) -> str:
        number = self._blocks.get(id(block))
        return f"b{number}" if number is not None else "bext"

    def visit(self, op: Operation) -> None:
        tokens = self._tokens
        values = self._values
        tokens.append(f"op:{op.name}")
        attributes = op.attributes
        for key in sorted(attributes):
            attr = attributes[key]
            tokens.append(f"attr:{key}={type(attr).__name__}:{attr.mlir()}")
        tokens.append("operands:" + ",".join(self._value_token(v)
                                             for v in op.operands))
        tokens.append("results:" + ",".join(self._type_token(r.type)
                                            for r in op.results))
        for result in op.results:
            values[id(result)] = len(values)
        tokens.append("successors:" + ",".join(self._block_token(b)
                                               for b in op.successors))
        tokens.append(f"regions:{len(op.regions)}")
        for region in op.regions:
            # number blocks first so successor forward references resolve
            for block in region.blocks:
                self._blocks[id(block)] = len(self._blocks)
            for block in region.blocks:
                tokens.append("block:" + ",".join(self._type_token(a.type)
                                                  for a in block.args))
                for arg in block.args:
                    values[id(arg)] = len(values)
                for nested in block.ops:
                    self.visit(nested)
            tokens.append("endregion")

    def hexdigest(self) -> str:
        return hashlib.sha256("\x00".join(self._tokens).encode()).hexdigest()


def structural_fingerprint(op: Operation, *, salt: str = "") -> str:
    """SHA-256 hex digest of ``op``'s structure, mixed with ``salt``.

    Two trees fingerprint equal iff a deterministic pass pipeline treats
    them identically: same op names, attributes, types, def-use wiring and
    block structure.  ``salt`` folds in external context — the incremental
    compiler salts with the pipeline description so the same function under
    two pipelines addresses two artifacts.
    """
    fingerprinter = _Fingerprinter(salt)
    fingerprinter.visit(op)
    return fingerprinter.hexdigest()


__all__ = ["structural_fingerprint", "STRUCTURAL_HASH_VERSION"]
