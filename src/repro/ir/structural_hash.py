"""Deterministic structural hashing of IR subtrees.

:func:`structural_fingerprint` reduces an operation tree to a SHA-256 hex
digest over everything that determines how passes transform it: operation
names, attributes, operand/result types, the def-use structure (via local
value numbering, exactly like the printer's per-``Printer`` SSA numbers),
successor blocks, and region/block shape.  Object identity, ``_uid``
counters and ``name_hint`` cosmetics are deliberately excluded, so a
``clone()`` — or the same function re-built by a fresh frontend run — hashes
identically.

This is the addressing scheme of function-granular incremental compilation:
a ``func.func`` hashed at pipeline entry, salted with the nested pipeline's
canonical description, keys the per-function stage artifacts in
:mod:`repro.service.incremental`.

:func:`fingerprint_block` extends the same scheme to a single *block*, the
unit the jit engine translates.  A block is not an isolated subtree, so two
structurally identical blocks can still require different generated code;
the block fingerprint therefore folds in everything the emitter
specializes on beyond the op stream:

* **external constants** — an operand defined outside the block by
  ``arith.constant`` carries its constant value in the token (the emitter
  bakes e.g. the ``fir.do_loop`` direction from a statically known step,
  even when that step is defined in a dominating block);
* **remote uses** — for every value the block (tree) defines, whether any
  consumer lives *outside* the tree (the emitter keeps such values
  env-resident instead of collapsing them into locals).
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Optional, Sequence

from .core import Block, Operation, Value

#: Bump when the token stream below changes meaning: every previously
#: computed fingerprint then stops matching, exactly like the service's
#: ``KEY_SCHEMA_VERSION`` salt.
STRUCTURAL_HASH_VERSION = 1


class _Fingerprinter:
    """Builds a canonical token stream for one op tree, hashed in one shot.

    Tokens accumulate in a list and hit SHA-256 as a single
    ``\\x00``-joined buffer at the end — this sits on the hot path of every
    incremental lookup (one fingerprint per function per nest), and one
    big ``update`` beats a quarter-million small ones by ~2x.  Type
    renderings are memoised by object identity within one fingerprint;
    the IR holds the objects alive, so ids cannot be recycled mid-run.
    """

    def __init__(self, salt: str,
                 members: Optional[FrozenSet[int]] = None):
        self._tokens = [f"structural-hash:v{STRUCTURAL_HASH_VERSION}",
                        f"salt:{salt}"]
        #: Local numbering for values defined inside the hashed subtree,
        #: assigned in visit order (the printer's scheme).
        self._values: Dict[int, int] = {}
        #: Values defined *outside* the subtree get stable ``ext`` numbers
        #: in first-encounter order instead, so the hash stays well-defined
        #: even for non-isolated subtrees.
        self._external: Dict[int, int] = {}
        self._blocks: Dict[int, int] = {}
        self._type_mlir: Dict[int, str] = {}
        #: When hashing a non-isolated block: ``id()`` of every op inside
        #: the hashed tree.  Enables the external-constant and remote-use
        #: tokens of :func:`fingerprint_block`; ``None`` (op-tree hashing)
        #: keeps the token stream byte-identical to version 1.
        self._members = members

    def _type_token(self, type_) -> str:
        token = self._type_mlir.get(id(type_))
        if token is None:
            token = type_.mlir()
            self._type_mlir[id(type_)] = token
        return token

    def _value_token(self, value: Value) -> str:
        number = self._values.get(id(value))
        if number is not None:
            return f"v{number}"
        number = self._external.setdefault(id(value), len(self._external))
        token = f"ext{number}:{self._type_token(value.type)}"
        if self._members is not None:
            # a statically known external constant is codegen material: the
            # jit emitter specializes on it (loop direction, bound folding)
            defining = getattr(value, "op", None)
            if defining is not None and defining.name == "arith.constant":
                attr = defining.get_attr("value")
                if attr is not None:
                    token += f"=c:{attr.mlir()}"
        return token

    def _remote_use_token(self, values: Sequence[Value]) -> str:
        """One flag per defined value: consumed outside the hashed tree?"""
        members = self._members
        return "".join(
            "x" if any(id(use.operation) not in members
                       for use in value.uses) else "."
            for value in values)

    def _block_token(self, block: Block) -> str:
        number = self._blocks.get(id(block))
        return f"b{number}" if number is not None else "bext"

    def visit(self, op: Operation) -> None:
        tokens = self._tokens
        values = self._values
        tokens.append(f"op:{op.name}")
        attributes = op.attributes
        for key in sorted(attributes):
            attr = attributes[key]
            tokens.append(f"attr:{key}={type(attr).__name__}:{attr.mlir()}")
        tokens.append("operands:" + ",".join(self._value_token(v)
                                             for v in op.operands))
        tokens.append("results:" + ",".join(self._type_token(r.type)
                                            for r in op.results))
        for result in op.results:
            values[id(result)] = len(values)
        if self._members is not None and op.results:
            tokens.append("remote:" + self._remote_use_token(op.results))
        tokens.append("successors:" + ",".join(self._block_token(b)
                                               for b in op.successors))
        tokens.append(f"regions:{len(op.regions)}")
        for region in op.regions:
            # number blocks first so successor forward references resolve
            for block in region.blocks:
                self._blocks[id(block)] = len(self._blocks)
            for block in region.blocks:
                tokens.append("block:" + ",".join(self._type_token(a.type)
                                                  for a in block.args))
                for arg in block.args:
                    values[id(arg)] = len(values)
                if self._members is not None and block.args:
                    tokens.append(
                        "bremote:" + self._remote_use_token(block.args))
                for nested in block.ops:
                    self.visit(nested)
            tokens.append("endregion")

    def hexdigest(self) -> str:
        return hashlib.sha256("\x00".join(self._tokens).encode()).hexdigest()


def structural_fingerprint(op: Operation, *, salt: str = "") -> str:
    """SHA-256 hex digest of ``op``'s structure, mixed with ``salt``.

    Two trees fingerprint equal iff a deterministic pass pipeline treats
    them identically: same op names, attributes, types, def-use wiring and
    block structure.  ``salt`` folds in external context — the incremental
    compiler salts with the pipeline description so the same function under
    two pipelines addresses two artifacts.
    """
    fingerprinter = _Fingerprinter(salt)
    fingerprinter.visit(op)
    return fingerprinter.hexdigest()


def _tree_member_ids(block: Block) -> FrozenSet[int]:
    """``id()`` of every op inside ``block`` and its nested regions."""
    members = set()
    stack = [block]
    while stack:
        current = stack.pop()
        for op in current.ops:
            members.add(id(op))
            for region in op.regions:
                stack.extend(region.blocks)
    return frozenset(members)


def fingerprint_block(block: Block, *, salt: str = "") -> str:
    """SHA-256 hex digest of one block's *translation-relevant* structure.

    Two blocks fingerprint equal iff a deterministic per-block code
    generator (the jit emitter) must treat them identically: the structural
    material of :func:`structural_fingerprint` over the block's ops, plus
    the block argument signature, the constant values of externally defined
    ``arith.constant`` operands, and — for every value the block tree
    defines — whether it has consumers outside the tree.  Object identity,
    ``_uid`` counters and ``name_hint`` cosmetics are excluded, so the same
    block rebuilt by a fresh frontend run in another process fingerprints
    identically; this is the persistent translation cache's address.
    """
    fingerprinter = _Fingerprinter(salt, members=_tree_member_ids(block))
    tokens = fingerprinter._tokens
    tokens.append("block-fingerprint:v1")
    fingerprinter._blocks[id(block)] = len(fingerprinter._blocks)
    tokens.append("args:" + ",".join(fingerprinter._type_token(a.type)
                                     for a in block.args))
    for arg in block.args:
        fingerprinter._values[id(arg)] = len(fingerprinter._values)
    if block.args:
        tokens.append("bremote:"
                      + fingerprinter._remote_use_token(block.args))
    for op in block.ops:
        fingerprinter.visit(op)
    return fingerprinter.hexdigest()


__all__ = ["structural_fingerprint", "fingerprint_block",
           "STRUCTURAL_HASH_VERSION"]
