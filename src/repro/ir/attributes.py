"""Attribute hierarchy for the MLIR-like IR.

Attributes are immutable, hashable compile-time values attached to
operations (and, following MLIR, types are themselves attributes).  Only the
attribute kinds actually used by the dialects in this reproduction are
provided, but the base classes mirror MLIR closely enough that new kinds can
be added by subclassing :class:`Attribute`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence, Tuple


class Attribute:
    """Base class of all attributes (and, transitively, all types)."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple[Any, ...]:
        """Structural identity key; subclasses must override."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._key()})"

    # Pretty, MLIR-ish syntax used by the printer.
    def mlir(self) -> str:
        return repr(self)


class UnitAttr(Attribute):
    """Presence-only attribute (MLIR ``unit``)."""

    __slots__ = ()

    def mlir(self) -> str:
        return "unit"


class BoolAttr(Attribute):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self):
        return (self.value,)

    def mlir(self) -> str:
        return "true" if self.value else "false"


class IntegerAttr(Attribute):
    """An integer constant, optionally carrying its type."""

    __slots__ = ("value", "type")

    def __init__(self, value: int, type: "Attribute | None" = None):
        self.value = int(value)
        self.type = type

    def _key(self):
        return (self.value, self.type)

    def mlir(self) -> str:
        if self.type is not None:
            return f"{self.value} : {self.type.mlir()}"
        return str(self.value)


class FloatAttr(Attribute):
    __slots__ = ("value", "type")

    def __init__(self, value: float, type: "Attribute | None" = None):
        self.value = float(value)
        self.type = type

    def _key(self):
        return (self.value, self.type)

    def mlir(self) -> str:
        if self.type is not None:
            return f"{self.value} : {self.type.mlir()}"
        return str(self.value)


class StringAttr(Attribute):
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = str(value)

    def _key(self):
        return (self.value,)

    def mlir(self) -> str:
        return f'"{self.value}"'


class SymbolRefAttr(Attribute):
    """Reference to a symbol (e.g. a function) by name."""

    __slots__ = ("root", "nested")

    def __init__(self, root: str, nested: Sequence[str] = ()):
        self.root = root
        self.nested = tuple(nested)

    def _key(self):
        return (self.root, self.nested)

    def mlir(self) -> str:
        out = f"@{self.root}"
        for n in self.nested:
            out += f"::@{n}"
        return out


class TypeAttr(Attribute):
    """Wraps a type so it can be stored in an attribute dictionary."""

    __slots__ = ("type",)

    def __init__(self, type: Attribute):
        self.type = type

    def _key(self):
        return (self.type,)

    def mlir(self) -> str:
        return self.type.mlir()


class ArrayAttr(Attribute):
    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[Attribute]):
        self.elements = tuple(elements)

    def _key(self):
        return (self.elements,)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, idx: int) -> Attribute:
        return self.elements[idx]

    def mlir(self) -> str:
        return "[" + ", ".join(e.mlir() for e in self.elements) + "]"


class DictAttr(Attribute):
    __slots__ = ("entries",)

    def __init__(self, entries: Mapping[str, Attribute]):
        self.entries = tuple(sorted(entries.items()))

    def _key(self):
        return (self.entries,)

    def as_dict(self) -> dict:
        return dict(self.entries)

    def mlir(self) -> str:
        inner = ", ".join(f'"{k}" = {v.mlir()}' for k, v in self.entries)
        return "{" + inner + "}"


class DenseIntElementsAttr(Attribute):
    """Small dense integer element attribute (e.g. ``array<i64: 1, 2>``)."""

    __slots__ = ("values", "element_type")

    def __init__(self, values: Iterable[int], element_type: "Attribute | None" = None):
        self.values = tuple(int(v) for v in values)
        self.element_type = element_type

    def _key(self):
        return (self.values, self.element_type)

    def __iter__(self):
        return iter(self.values)

    def __len__(self):
        return len(self.values)

    def mlir(self) -> str:
        et = self.element_type.mlir() if self.element_type is not None else "i64"
        return f"array<{et}: " + ", ".join(str(v) for v in self.values) + ">"


class DenseFloatElementsAttr(Attribute):
    __slots__ = ("values", "element_type")

    def __init__(self, values: Iterable[float], element_type: "Attribute | None" = None):
        self.values = tuple(float(v) for v in values)
        self.element_type = element_type

    def _key(self):
        return (self.values, self.element_type)

    def __iter__(self):
        return iter(self.values)

    def __len__(self):
        return len(self.values)

    def mlir(self) -> str:
        et = self.element_type.mlir() if self.element_type is not None else "f64"
        return f"array<{et}: " + ", ".join(str(v) for v in self.values) + ">"


class AffineExpr:
    """A tiny affine-expression tree used by :class:`AffineMapAttr`.

    Supported node kinds: dimension (``d<i>``), symbol (``s<i>``), constant,
    add, mul, floordiv, ceildiv and mod with affine restrictions left to the
    verifier of the affine dialect.
    """

    __slots__ = ("kind", "value", "lhs", "rhs")

    def __init__(self, kind: str, value: int = 0, lhs: "AffineExpr | None" = None,
                 rhs: "AffineExpr | None" = None):
        self.kind = kind
        self.value = value
        self.lhs = lhs
        self.rhs = rhs

    # -- constructors ------------------------------------------------------
    @staticmethod
    def dim(position: int) -> "AffineExpr":
        return AffineExpr("dim", position)

    @staticmethod
    def symbol(position: int) -> "AffineExpr":
        return AffineExpr("sym", position)

    @staticmethod
    def constant(value: int) -> "AffineExpr":
        return AffineExpr("const", value)

    def _binop(self, kind: str, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            other = AffineExpr.constant(other)
        return AffineExpr(kind, 0, self, other)

    def __add__(self, other):
        return self._binop("add", other)

    def __mul__(self, other):
        return self._binop("mul", other)

    def __mod__(self, other):
        return self._binop("mod", other)

    def floordiv(self, other):
        return self._binop("floordiv", other)

    def ceildiv(self, other):
        return self._binop("ceildiv", other)

    # -- evaluation --------------------------------------------------------
    def evaluate(self, dims: Sequence[int], syms: Sequence[int] = ()) -> int:
        if self.kind == "dim":
            return dims[self.value]
        if self.kind == "sym":
            return syms[self.value]
        if self.kind == "const":
            return self.value
        lhs = self.lhs.evaluate(dims, syms)
        rhs = self.rhs.evaluate(dims, syms)
        if self.kind == "add":
            return lhs + rhs
        if self.kind == "mul":
            return lhs * rhs
        if self.kind == "mod":
            return lhs % rhs
        if self.kind == "floordiv":
            return lhs // rhs
        if self.kind == "ceildiv":
            return -((-lhs) // rhs)
        raise ValueError(f"unknown affine expr kind {self.kind}")

    def is_pure_affine(self) -> bool:
        """True when mul/div/mod only involve constants on one side."""
        if self.kind in ("dim", "sym", "const"):
            return True
        lhs_ok = self.lhs.is_pure_affine()
        rhs_ok = self.rhs.is_pure_affine()
        if self.kind == "add":
            return lhs_ok and rhs_ok
        # mul/mod/div: at least one side must be constant
        const_side = self.lhs.kind == "const" or self.rhs.kind == "const"
        return lhs_ok and rhs_ok and const_side

    def __str__(self) -> str:
        if self.kind == "dim":
            return f"d{self.value}"
        if self.kind == "sym":
            return f"s{self.value}"
        if self.kind == "const":
            return str(self.value)
        ops = {"add": "+", "mul": "*", "mod": "mod", "floordiv": "floordiv",
               "ceildiv": "ceildiv"}
        return f"({self.lhs} {ops[self.kind]} {self.rhs})"

    def __eq__(self, other):
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return str(self) == str(other)

    def __hash__(self):
        return hash(str(self))


class AffineMapAttr(Attribute):
    """An affine map ``(d0, .., dn)[s0, .., sm] -> (expr, ...)``."""

    __slots__ = ("num_dims", "num_symbols", "results")

    def __init__(self, num_dims: int, num_symbols: int,
                 results: Sequence[AffineExpr]):
        self.num_dims = num_dims
        self.num_symbols = num_symbols
        self.results = tuple(results)

    @staticmethod
    def identity(rank: int) -> "AffineMapAttr":
        return AffineMapAttr(rank, 0, [AffineExpr.dim(i) for i in range(rank)])

    @staticmethod
    def constant_map(value: int) -> "AffineMapAttr":
        return AffineMapAttr(0, 0, [AffineExpr.constant(value)])

    def evaluate(self, dims: Sequence[int], syms: Sequence[int] = ()) -> Tuple[int, ...]:
        return tuple(r.evaluate(dims, syms) for r in self.results)

    def _key(self):
        return (self.num_dims, self.num_symbols,
                tuple(str(r) for r in self.results))

    def mlir(self) -> str:
        dims = ", ".join(f"d{i}" for i in range(self.num_dims))
        syms = ", ".join(f"s{i}" for i in range(self.num_symbols))
        res = ", ".join(str(r) for r in self.results)
        sym_part = f"[{syms}]" if self.num_symbols else ""
        return f"affine_map<({dims}){sym_part} -> ({res})>"


__all__ = [
    "Attribute",
    "UnitAttr",
    "BoolAttr",
    "IntegerAttr",
    "FloatAttr",
    "StringAttr",
    "SymbolRefAttr",
    "TypeAttr",
    "ArrayAttr",
    "DictAttr",
    "DenseIntElementsAttr",
    "DenseFloatElementsAttr",
    "AffineExpr",
    "AffineMapAttr",
]
