"""Pattern rewriting infrastructure.

Provides the same programming model as MLIR/xDSL pattern rewriting:

* :class:`RewritePattern` subclasses implement ``match_and_rewrite`` and
  signal a successful rewrite by calling methods on the supplied
  :class:`PatternRewriter` (and returning ``True``);
* :func:`apply_patterns_greedily` drives patterns to a fixpoint with a
  **worklist**: every op is seeded once, and after a rewrite only the
  *affected* ops — ops the rewrite created, users of replaced values, and
  the surrounding parent — are re-examined in the next round, instead of
  re-walking the whole module per iteration.  Rounds are capped by
  ``max_iterations`` exactly like the historical full-rewalk driver, so
  non-converging pattern sets terminate with identical effect.

The pre-worklist driver survives as :func:`apply_patterns_rewalk` — it is
the differential-testing reference the worklist driver is checked against
(same final IR on every registered flow).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from .builder import Builder, InsertPoint
from .core import Block, IRError, Operation, Region, Value


class PatternRewriter(Builder):
    """Builder handed to patterns; records whether the IR was modified.

    Besides the modification flag, the rewriter records what a rewrite
    *touched* — created ops and ops whose operands changed — so the worklist
    driver can re-enqueue exactly the affected ops instead of re-walking.
    """

    def __init__(self, root: Operation):
        super().__init__()
        self.root = root
        self.modified = False
        self._erased: List[Operation] = []
        #: ops created by the current rewrite (worklist seeds)
        self._created: List[Operation] = []
        #: pre-existing ops affected by the current rewrite (operand changes,
        #: parents of erased ops) — captured *before* use lists are rewritten
        self._affected: List[Operation] = []

    # -- worklist bookkeeping ------------------------------------------------
    def _note_users(self, op: Operation) -> None:
        for result in op.results:
            for use in result.uses:
                self._affected.append(use.operation)

    def _note_parent(self, op: Operation) -> None:
        parent = op.parent_op()
        if parent is not None:
            self._affected.append(parent)

    def _note_operand_producers(self, op: Operation) -> None:
        """Erasing/replacing ``op`` drops a use of each operand: the
        producers may now be dead or newly foldable — revisit them."""
        for operand in op.operands:
            owner = getattr(operand, "op", None)
            if owner is not None:
                self._affected.append(owner)

    def reset_tracking(self) -> None:
        self._created = []
        self._affected = []

    # -- op replacement ------------------------------------------------------
    def replace_op(self, op: Operation, new_ops: "Sequence[Operation] | Operation",
                   new_results: Optional[Sequence[Value]] = None) -> None:
        """Replace ``op`` with ``new_ops`` (inserted before it).

        When ``new_results`` is not given, the results of the last new
        operation replace the results of ``op``.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        block = op.parent
        if block is None:
            raise IRError("cannot replace a detached operation")
        self._note_users(op)
        self._note_parent(op)
        self._note_operand_producers(op)
        for new_op in new_ops:
            block.insert_before(op, new_op)
            self._created.append(new_op)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if op.results:
            if len(new_results) != len(op.results):
                raise IRError("replace_op: result count mismatch")
            op.replace_all_uses_with(list(new_results))
        op.erase()
        self._erased.append(op)
        self.modified = True

    def replace_op_with_values(self, op: Operation, values: Sequence[Value]) -> None:
        self._note_users(op)
        self._note_parent(op)
        self._note_operand_producers(op)
        op.replace_all_uses_with(list(values))
        op.erase()
        self._erased.append(op)
        self.modified = True

    def erase_op(self, op: Operation, *, check_uses: bool = True) -> None:
        self._note_parent(op)
        self._note_operand_producers(op)
        op.erase(check_uses=check_uses)
        self._erased.append(op)
        self.modified = True

    def was_erased(self, op: Operation) -> bool:
        return op in self._erased

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        anchor.parent.insert_before(anchor, op)
        self._created.append(op)
        self.modified = True
        return op

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        anchor.parent.insert_after(anchor, op)
        self._created.append(op)
        self.modified = True
        return op

    def insert_at_start(self, block: Block, op: Operation) -> Operation:
        block.insert_op_at(0, op)
        self._created.append(op)
        self.modified = True
        return op

    def notify_modified(self) -> None:
        self.modified = True

    # -- region surgery ---------------------------------------------------------
    def inline_block_before(self, block: Block, anchor: Operation,
                            arg_values: Sequence[Value] = ()) -> None:
        """Move the operations of ``block`` before ``anchor``, replacing the
        block arguments with ``arg_values``."""
        if len(arg_values) != len(block.args):
            raise IRError("inline_block_before: argument count mismatch")
        for arg, val in zip(block.args, arg_values):
            arg.replace_all_uses_with(val)
        for op in list(block.ops):
            op.detach()
            anchor.parent.insert_before(anchor, op)
            self._created.append(op)
        self.modified = True

    def inline_region_before(self, region: Region, anchor: Operation,
                             arg_values: Sequence[Value] = ()) -> None:
        if len(region.blocks) != 1:
            raise IRError("inline_region_before expects a single-block region")
        self.inline_block_before(region.blocks[0], anchor, arg_values)


class RewritePattern:
    """Base class of all rewrite patterns."""

    #: Optional operation name this pattern is anchored on (speeds up matching).
    ROOT_OP: Optional[str] = None
    #: Higher benefit patterns are tried first.
    BENEFIT: int = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        raise NotImplementedError


class RewritePatternSet:
    def __init__(self, patterns: Iterable[RewritePattern] = ()):
        self.patterns: List[RewritePattern] = list(patterns)
        self.patterns.sort(key=lambda p: -p.BENEFIT)

    def add(self, pattern: RewritePattern) -> "RewritePatternSet":
        self.patterns.append(pattern)
        self.patterns.sort(key=lambda p: -p.BENEFIT)
        return self


def _apply_on_op(op: Operation, patterns: RewritePatternSet,
                 rewriter: PatternRewriter) -> bool:
    """Try every pattern on ``op``; True when one fired (first match wins)."""
    for pattern in patterns.patterns:
        if pattern.ROOT_OP is not None and op.name != pattern.ROOT_OP:
            continue
        rewriter.modified = False
        if pattern.match_and_rewrite(op, rewriter) or rewriter.modified:
            return True
    return False


def apply_patterns_greedily(root: Operation,
                            patterns: "RewritePatternSet | Iterable[RewritePattern]",
                            *, max_iterations: int = 32) -> bool:
    """Apply patterns over ``root`` to a fixpoint (worklist driver).

    Round 1 seeds every op in walk order; each subsequent round revisits
    only ops affected by the previous round's rewrites (created ops and
    their nested ops, users of replaced values, parents).  ``max_iterations``
    bounds the number of rounds — the same guard, with the same observable
    effect, as the historical full-rewalk driver's sweep cap.

    Returns True when at least one rewrite happened.
    """
    if not isinstance(patterns, RewritePatternSet):
        patterns = RewritePatternSet(patterns)
    changed_any = False
    worklist: List[Operation] = list(root.walk())
    for _ in range(max_iterations):
        if not worklist:
            break
        rewriter = PatternRewriter(root)
        changed = False
        next_round: List[Operation] = []
        queued: Set[Operation] = set()

        def enqueue(op: Operation) -> None:
            if op is not None and op not in queued:
                queued.add(op)
                next_round.append(op)

        for op in worklist:
            if op.parent is None and op is not root:
                continue  # already erased/detached by a previous rewrite
            if rewriter.was_erased(op):
                continue
            rewriter.reset_tracking()
            if _apply_on_op(op, patterns, rewriter):
                changed = True
                for created in rewriter._created:
                    for nested in created.walk():
                        enqueue(nested)
                        for result in nested.results:
                            for use in result.uses:
                                enqueue(use.operation)
                for affected in rewriter._affected:
                    enqueue(affected)
                if op.parent is not None or op is root:
                    # still attached: the op itself (and its users) may
                    # match again
                    enqueue(op)
                    for result in op.results:
                        for use in result.uses:
                            enqueue(use.operation)
        if not changed:
            break
        changed_any = True
        worklist = next_round
    return changed_any


def apply_patterns_rewalk(root: Operation,
                          patterns: "RewritePatternSet | Iterable[RewritePattern]",
                          *, max_iterations: int = 32) -> bool:
    """The historical full-rewalk greedy driver (reference implementation).

    Re-walks the whole module every iteration.  Kept for differential
    testing: the worklist driver must produce identical final IR.
    """
    if not isinstance(patterns, RewritePatternSet):
        patterns = RewritePatternSet(patterns)
    changed_any = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter(root)
        changed = False
        # Snapshot the walk: patterns may mutate the IR while we iterate.
        for op in list(root.walk()):
            if op.parent is None and op is not root:
                continue  # already erased/detached by a previous rewrite
            if rewriter.was_erased(op):
                continue
            rewriter.reset_tracking()
            if _apply_on_op(op, patterns, rewriter):
                changed = True
        if not changed:
            break
        changed_any = True
    return changed_any


__all__ = [
    "PatternRewriter",
    "RewritePattern",
    "RewritePatternSet",
    "apply_patterns_greedily",
    "apply_patterns_rewalk",
]
