"""Pattern rewriting infrastructure.

Provides the same programming model as MLIR/xDSL pattern rewriting:

* :class:`RewritePattern` subclasses implement ``match_and_rewrite`` and
  signal a successful rewrite by calling methods on the supplied
  :class:`PatternRewriter` (and returning ``True``);
* :func:`apply_patterns_greedily` repeatedly walks a module applying patterns
  until a fixpoint (or an iteration cap) is reached.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .builder import Builder, InsertPoint
from .core import Block, IRError, Operation, Region, Value


class PatternRewriter(Builder):
    """Builder handed to patterns; records whether the IR was modified."""

    def __init__(self, root: Operation):
        super().__init__()
        self.root = root
        self.modified = False
        self._erased: List[Operation] = []

    # -- op replacement ------------------------------------------------------
    def replace_op(self, op: Operation, new_ops: "Sequence[Operation] | Operation",
                   new_results: Optional[Sequence[Value]] = None) -> None:
        """Replace ``op`` with ``new_ops`` (inserted before it).

        When ``new_results`` is not given, the results of the last new
        operation replace the results of ``op``.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        block = op.parent
        if block is None:
            raise IRError("cannot replace a detached operation")
        for new_op in new_ops:
            block.insert_before(op, new_op)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if op.results:
            if len(new_results) != len(op.results):
                raise IRError("replace_op: result count mismatch")
            op.replace_all_uses_with(list(new_results))
        op.erase()
        self._erased.append(op)
        self.modified = True

    def replace_op_with_values(self, op: Operation, values: Sequence[Value]) -> None:
        op.replace_all_uses_with(list(values))
        op.erase()
        self._erased.append(op)
        self.modified = True

    def erase_op(self, op: Operation, *, check_uses: bool = True) -> None:
        op.erase(check_uses=check_uses)
        self._erased.append(op)
        self.modified = True

    def was_erased(self, op: Operation) -> bool:
        return op in self._erased

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        anchor.parent.insert_before(anchor, op)
        self.modified = True
        return op

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        anchor.parent.insert_after(anchor, op)
        self.modified = True
        return op

    def insert_at_start(self, block: Block, op: Operation) -> Operation:
        block.insert_op_at(0, op)
        self.modified = True
        return op

    def notify_modified(self) -> None:
        self.modified = True

    # -- region surgery ---------------------------------------------------------
    def inline_block_before(self, block: Block, anchor: Operation,
                            arg_values: Sequence[Value] = ()) -> None:
        """Move the operations of ``block`` before ``anchor``, replacing the
        block arguments with ``arg_values``."""
        if len(arg_values) != len(block.args):
            raise IRError("inline_block_before: argument count mismatch")
        for arg, val in zip(block.args, arg_values):
            arg.replace_all_uses_with(val)
        for op in list(block.ops):
            op.detach()
            anchor.parent.insert_before(anchor, op)
        self.modified = True

    def inline_region_before(self, region: Region, anchor: Operation,
                             arg_values: Sequence[Value] = ()) -> None:
        if len(region.blocks) != 1:
            raise IRError("inline_region_before expects a single-block region")
        self.inline_block_before(region.blocks[0], anchor, arg_values)


class RewritePattern:
    """Base class of all rewrite patterns."""

    #: Optional operation name this pattern is anchored on (speeds up matching).
    ROOT_OP: Optional[str] = None
    #: Higher benefit patterns are tried first.
    BENEFIT: int = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        raise NotImplementedError


class RewritePatternSet:
    def __init__(self, patterns: Iterable[RewritePattern] = ()):
        self.patterns: List[RewritePattern] = list(patterns)
        self.patterns.sort(key=lambda p: -p.BENEFIT)

    def add(self, pattern: RewritePattern) -> "RewritePatternSet":
        self.patterns.append(pattern)
        self.patterns.sort(key=lambda p: -p.BENEFIT)
        return self


def apply_patterns_greedily(root: Operation,
                            patterns: "RewritePatternSet | Iterable[RewritePattern]",
                            *, max_iterations: int = 32) -> bool:
    """Apply patterns over ``root`` until no pattern fires (greedy driver).

    Returns True when at least one rewrite happened.
    """
    if not isinstance(patterns, RewritePatternSet):
        patterns = RewritePatternSet(patterns)
    changed_any = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter(root)
        changed = False
        # Snapshot the walk: patterns may mutate the IR while we iterate.
        for op in list(root.walk()):
            if op.parent is None and op is not root:
                continue  # already erased/detached by a previous rewrite
            if rewriter.was_erased(op):
                continue
            for pattern in patterns.patterns:
                if pattern.ROOT_OP is not None and op.name != pattern.ROOT_OP:
                    continue
                rewriter.modified = False
                if pattern.match_and_rewrite(op, rewriter) or rewriter.modified:
                    changed = True
                    break
        if not changed:
            break
        changed_any = True
    return changed_any


__all__ = [
    "PatternRewriter",
    "RewritePattern",
    "RewritePatternSet",
    "apply_patterns_greedily",
]
