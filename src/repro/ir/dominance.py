"""Control-flow graph utilities: successors, predecessors, dominators.

Used by LICM, CSE across blocks and the branch-fixup rewrite of Section V-A
(which needs to map block indices to blocks after the main transformation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .core import Block, Operation, Region


def region_cfg(region: Region) -> Dict[Block, List[Block]]:
    """Successor map of the blocks of a region."""
    cfg: Dict[Block, List[Block]] = {}
    for block in region.blocks:
        term = block.last_op
        cfg[block] = list(term.successors) if term is not None else []
    return cfg


def reverse_cfg(cfg: Dict[Block, List[Block]]) -> Dict[Block, List[Block]]:
    rev: Dict[Block, List[Block]] = {b: [] for b in cfg}
    for block, succs in cfg.items():
        for s in succs:
            rev.setdefault(s, []).append(block)
    return rev


def reachable_blocks(region: Region) -> List[Block]:
    """Blocks reachable from the entry block, in reverse post-order."""
    if not region.blocks:
        return []
    cfg = region_cfg(region)
    entry = region.blocks[0]
    visited: Set[Block] = set()
    order: List[Block] = []

    def dfs(block: Block) -> None:
        visited.add(block)
        for succ in cfg.get(block, []):
            if succ not in visited:
                dfs(succ)
        order.append(block)

    dfs(entry)
    order.reverse()
    return order


def compute_dominators(region: Region) -> Dict[Block, Set[Block]]:
    """Classic iterative dominator computation over the region's CFG."""
    blocks = reachable_blocks(region)
    if not blocks:
        return {}
    cfg = region_cfg(region)
    preds = reverse_cfg(cfg)
    entry = blocks[0]
    dom: Dict[Block, Set[Block]] = {b: set(blocks) for b in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks[1:]:
            pred_doms = [dom[p] for p in preds.get(block, []) if p in dom]
            new = set(blocks) if not pred_doms else set.intersection(*pred_doms)
            new.add(block)
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def dominates(a: Block, b: Block, dom: Optional[Dict[Block, Set[Block]]] = None) -> bool:
    if a is b:
        return True
    if a.parent is not b.parent:
        return False
    if dom is None:
        dom = compute_dominators(a.parent)
    return a in dom.get(b, set())


def op_dominates(a: Operation, b: Operation) -> bool:
    """True when ``a`` is guaranteed to execute before ``b``.

    Handles the same-block case by position and the different-block case via
    block dominance; nested regions fall back to checking whether ``a``'s
    block is an ancestor of ``b``.
    """
    if a.parent is b.parent and a.parent is not None:
        return a.is_before_in_block(b)
    # walk b's ancestors until we reach a's region
    block_b: Optional[Block] = b.parent
    while block_b is not None and block_b.parent is not (a.parent.parent if a.parent else None):
        parent_op = block_b.parent_op()
        if parent_op is None:
            break
        block_b = parent_op.parent
    if block_b is None or a.parent is None:
        return False
    if block_b is a.parent:
        anchor = block_b.parent_op() if b.parent is not block_b else b
        # find the op in a's block that (transitively) contains b
        container = b
        while container.parent is not a.parent and container.parent_op() is not None:
            container = container.parent_op()
        if container.parent is not a.parent:
            return False
        return a.is_before_in_block(container)
    return dominates(a.parent, block_b)


__all__ = [
    "region_cfg",
    "reverse_cfg",
    "reachable_blocks",
    "compute_dominators",
    "dominates",
    "op_dominates",
]
