"""Operation trait names used across the dialects.

Traits are plain strings stored in each operation class's ``TRAITS`` set.
They model the subset of MLIR traits that matter for this reproduction:
terminators, side-effect freedom (for CSE / canonicalisation / LICM),
symbol-table behaviour and the ``AutomaticAllocationScope`` trait discussed
in Section V-B of the paper.
"""

from __future__ import annotations

#: The operation ends its block and may transfer control to successors.
IS_TERMINATOR = "IsTerminator"

#: The operation has no observable side effects (pure); safe to CSE/DCE/hoist.
PURE = "Pure"

#: The operation only reads memory.
READ_ONLY = "ReadOnly"

#: The operation writes memory.
WRITES_MEMORY = "WritesMemory"

#: The operation allocates memory.
ALLOCATES = "Allocates"

#: The operation frees memory.
FREES = "Frees"

#: The operation defines a symbol (e.g. func.func, memref.global).
SYMBOL = "Symbol"

#: The operation holds a symbol table (e.g. builtin.module).
SYMBOL_TABLE = "SymbolTable"

#: Region-holding op whose stack allocations die when the region exits.
AUTOMATIC_ALLOCATION_SCOPE = "AutomaticAllocationScope"

#: Region-holding op with structured, single-entry single-exit control flow.
STRUCTURED_CONTROL_FLOW = "StructuredControlFlow"

#: Loop-like op (scf.for, scf.while, scf.parallel, affine.for, fir.do_loop).
LOOP_LIKE = "LoopLike"

#: Op is commutative in its two operands.
COMMUTATIVE = "Commutative"

#: Constant-like op (single result, value attribute, no operands).
CONSTANT_LIKE = "ConstantLike"

#: Call-like op referencing a callee symbol.
CALL_LIKE = "CallLike"


def is_pure(op) -> bool:
    """An op is pure if it carries the trait and has no regions with effects."""
    return op.has_trait(PURE)


def is_terminator(op) -> bool:
    return op.has_trait(IS_TERMINATOR)


def has_side_effects(op) -> bool:
    """Conservative side-effect query used by CSE/DCE/LICM."""
    if op.has_trait(PURE) or op.has_trait(CONSTANT_LIKE):
        return False
    if op.has_trait(READ_ONLY):
        # reads are not re-orderable past writes, but are removable if unused
        return False
    return True


__all__ = [
    "IS_TERMINATOR",
    "PURE",
    "READ_ONLY",
    "WRITES_MEMORY",
    "ALLOCATES",
    "FREES",
    "SYMBOL",
    "SYMBOL_TABLE",
    "AUTOMATIC_ALLOCATION_SCOPE",
    "STRUCTURED_CONTROL_FLOW",
    "LOOP_LIKE",
    "COMMUTATIVE",
    "CONSTANT_LIKE",
    "CALL_LIKE",
    "is_pure",
    "is_terminator",
    "has_side_effects",
]
