"""MLIR-like IR infrastructure (SSA values, operations, regions, passes).

This package is the foundation every other subsystem builds on; it plays the
role MLIR + xDSL play in the paper.
"""

from .attributes import (AffineExpr, AffineMapAttr, ArrayAttr, Attribute,
                         BoolAttr, DenseFloatElementsAttr,
                         DenseIntElementsAttr, DictAttr, FloatAttr,
                         IntegerAttr, StringAttr, SymbolRefAttr, TypeAttr,
                         UnitAttr)
from .builder import Builder, InsertPoint
from .core import (Block, BlockArgument, IRError, OpResult, Operation, Region,
                   UnregisteredOp, Use, Value, create_operation, register_op,
                   registered_op)
from .pass_manager import (FunctionPass, Pass, PassError, PassManager,
                           PipelineSettings, available_passes,
                           current_settings, get_registered_pass,
                           parse_pipeline, pipeline_settings, register_pass)
from .printer import Printer, print_block, print_op
from .serial import dumps_op, loads_op, renumber_uids
from .structural_hash import STRUCTURAL_HASH_VERSION, structural_fingerprint
from .rewriter import (PatternRewriter, RewritePattern, RewritePatternSet,
                       apply_patterns_greedily)
from .types import (DYNAMIC, ComplexType, FloatType, FunctionType, IndexType,
                    IntegerType, MemRefType, NoneType, ShapedType, TensorType,
                    TupleType, Type, VectorType, bitwidth, f32, f64, i1, i8,
                    i16, i32, i64, index, is_float, is_integer, is_scalar,
                    none)
from .verifier import VerificationError, verify_module, verify_operation

__all__ = [name for name in dir() if not name.startswith("_")]
