"""The baseline Flang compilation flow: HLFIR -> FIR -> LLVM dialect.

This package models the *status quo* the paper compares against: Flang's
bespoke lowering that bypasses the standard MLIR dialects and optimisation
passes (Figure 1).
"""

from .codegen import FirCfgConversionPass, FirToLLVMPass, FlangCodegenError
from .driver import FlangCompilationResult, FlangCompiler, FlangV17Compiler
from .hlfir_to_fir import ConvertHlfirToFirPass, convert_hlfir_to_fir
from . import runtime

__all__ = [
    "FirCfgConversionPass", "FirToLLVMPass", "FlangCodegenError",
    "FlangCompilationResult", "FlangCompiler", "FlangV17Compiler",
    "ConvertHlfirToFirPass", "convert_hlfir_to_fir", "runtime",
]
