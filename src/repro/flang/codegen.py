"""Flang's direct FIR -> LLVM-dialect code generation (the baseline flow).

This is the bespoke lowering the paper contrasts with the standard-MLIR
pipeline: once the IR is FIR-only, Flang flattens its structured control flow
and emits the ``llvm`` dialect directly, without going through scf / memref /
affine / vector and without any of the standard optimisation passes.  The
resulting code is scalar, performs per-access address arithmetic and calls
the Fortran runtime for array intrinsics.

Two passes are provided:

* ``fir-cfg-conversion`` — flatten ``fir.do_loop`` / ``fir.if`` /
  ``fir.iterate_while`` (and OpenMP regions, via __kmpc runtime calls) into
  branch-based control flow;
* ``fir-to-llvm`` — one-to-one conversion of the remaining FIR / arith /
  math / cf / func operations into the ``llvm`` dialect.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dialects import arith, cf, fir
from ..dialects import func as func_d
from ..dialects import llvm, math as math_d, omp
from ..ir import types as ir_types
from ..ir.attributes import IntegerAttr
from ..ir.core import Block, Operation, Region, Value, create_operation
from ..ir.pass_manager import FunctionPass, Pass, register_pass
from ..transforms.cfg import CFGLowering, split_block
from ..transforms.llvm_common import ARITH_TO_LLVM as _SHARED_ARITH, MATH_TO_LIBM as _SHARED_MATH, llvm_type as _shared_llvm_type


class FlangCodegenError(Exception):
    """Raised when Flang's code generation cannot handle the input IR.

    Notably raised for OpenACC input, mirroring the
    ``LLVMTranslationDialectInterface`` internal error the paper reports for
    Flang v18 (Section VI-C).
    """


# ---------------------------------------------------------------------------
# Stage 1: structured FIR control flow -> CFG
# ---------------------------------------------------------------------------


class FirCfgLowering(CFGLowering):
    structured_op_names = ("fir.do_loop", "fir.iterate_while", "fir.if",
                           "omp.parallel", "omp.wsloop")

    def lower_fir_do_loop(self, op: fir.DoLoopOp) -> None:
        parent_block = op.parent
        region = parent_block.parent
        tail = split_block(parent_block, op)
        op.detach()

        iter_types = [v.type for v in op.iter_args]
        cond_block = Block(arg_types=[ir_types.index] + iter_types)
        region.insert_block_at(parent_block.index_in_region() + 1, cond_block)
        body_block = op.body
        op.regions[0].blocks.remove(body_block)
        region.insert_block_at(cond_block.index_in_region() + 1, body_block)

        for res in op.results:
            arg = tail.add_argument(res.type)
            res.replace_all_uses_with(arg)

        parent_block.add_op(cf.BranchOp(cond_block, [op.lower_bound, *op.iter_args]))

        # Fortran do loops iterate while iv <= ub (positive step) or iv >= ub
        # (negative step); Flang emits both comparisons and selects on the
        # step sign (visible as extra per-iteration instructions).
        iv = cond_block.args[0]
        zero = arith.ConstantOp(0, ir_types.index)
        step_pos = arith.CmpIOp("sgt", op.step, zero.result)
        le = arith.CmpIOp("sle", iv, op.upper_bound)
        ge = arith.CmpIOp("sge", iv, op.upper_bound)
        keep = arith.SelectOp(step_pos.result, le.result, ge.result)
        for o in (zero, step_pos, le, ge, keep):
            cond_block.add_op(o)
        cond_block.add_op(cf.CondBranchOp(
            keep.result, body_block, tail,
            list(cond_block.args), list(cond_block.args)))

        result_op = body_block.terminator
        yielded = list(result_op.operands) if result_op is not None else []
        if result_op is not None:
            result_op.erase(check_uses=False)
        incr = arith.AddIOp(body_block.args[0], op.step)
        body_block.add_op(incr)
        body_block.add_op(cf.BranchOp(cond_block, [incr.result, *yielded]))
        op.erase(check_uses=False)

    def lower_fir_iterate_while(self, op: fir.IterateWhileOp) -> None:
        parent_block = op.parent
        region = parent_block.parent
        tail = split_block(parent_block, op)
        op.detach()

        iter_types = [v.type for v in op.iter_args]
        cond_block = Block(arg_types=[ir_types.index, ir_types.i1] + iter_types)
        region.insert_block_at(parent_block.index_in_region() + 1, cond_block)
        body_block = op.body
        op.regions[0].blocks.remove(body_block)
        region.insert_block_at(cond_block.index_in_region() + 1, body_block)

        for res in op.results:
            arg = tail.add_argument(res.type)
            res.replace_all_uses_with(arg)

        parent_block.add_op(cf.BranchOp(
            cond_block, [op.lower_bound, op.initial_ok, *op.iter_args]))

        iv, ok = cond_block.args[0], cond_block.args[1]
        in_range = arith.CmpIOp("sle", iv, op.upper_bound)
        keep = arith.AndIOp(in_range.result, ok)
        cond_block.add_op(in_range)
        cond_block.add_op(keep)
        cond_block.add_op(cf.CondBranchOp(
            keep.result, body_block, tail,
            list(cond_block.args), list(cond_block.args)))

        result_op = body_block.terminator
        yielded = list(result_op.operands) if result_op is not None else []
        if result_op is not None:
            result_op.erase(check_uses=False)
        incr = arith.AddIOp(body_block.args[0], op.step)
        body_block.add_op(incr)
        new_ok = yielded[0] if yielded else ok
        body_block.add_op(cf.BranchOp(cond_block, [incr.result, new_ok, *yielded[1:]]))
        op.erase(check_uses=False)

    def lower_fir_if(self, op: fir.IfOp) -> None:
        parent_block = op.parent
        region = parent_block.parent
        tail = split_block(parent_block, op)
        op.detach()

        for res in op.results:
            arg = tail.add_argument(res.type)
            res.replace_all_uses_with(arg)

        then_block = op.then_block
        else_block = op.else_block
        op.regions[0].blocks.remove(then_block)
        op.regions[1].blocks.remove(else_block)
        region.insert_block_at(parent_block.index_in_region() + 1, then_block)
        region.insert_block_at(then_block.index_in_region() + 1, else_block)
        for block in (then_block, else_block):
            terminator = block.terminator
            values = list(terminator.operands) if terminator is not None else []
            if terminator is not None:
                terminator.erase(check_uses=False)
            block.add_op(cf.BranchOp(tail, values))
        parent_block.add_op(cf.CondBranchOp(op.condition, then_block, else_block))
        op.erase(check_uses=False)

    # -- OpenMP: lower to __kmpc runtime calls --------------------------------------
    def lower_omp_parallel(self, op: omp.ParallelOp) -> None:
        parent_block = op.parent
        parent_block.insert_before(op, fir.CallOp("__kmpc_fork_call", []))
        body = op.body
        terminator = body.terminator
        if terminator is not None:
            terminator.erase(check_uses=False)
        for inner in list(body.ops):
            inner.detach()
            parent_block.insert_before(op, inner)
        op.erase(check_uses=False)

    def lower_omp_wsloop(self, op: omp.WsLoopOp) -> None:
        parent_block = op.parent
        parent_block.insert_before(op, fir.CallOp("__kmpc_for_static_init_4", []))
        # rebuild as a fir.do_loop so the generic loop lowering applies
        loop = fir.DoLoopOp(op.lower_bounds[0], op.upper_bounds[0], op.steps[0])
        parent_block.insert_before(op, loop)
        body = op.body
        for arg, new in zip(body.args, [loop.induction_variable]):
            arg.replace_all_uses_with(new)
        for inner in list(body.ops):
            if inner.name in ("omp.yield", "omp.terminator"):
                inner.erase(check_uses=False)
                continue
            inner.detach()
            loop.body.add_op(inner)
        if loop.body.terminator is None:
            loop.body.add_op(fir.ResultOp())
        parent_block.insert_after(loop, fir.CallOp("__kmpc_for_static_fini", []))
        op.erase(check_uses=False)
        # the freshly created do_loop is handled by a later iteration


@register_pass
class FirCfgConversionPass(FunctionPass):
    NAME = "fir-cfg-conversion"

    def run_on_function(self, func: Operation) -> None:
        for op in func.walk():
            if op.dialect == "acc":
                raise FlangCodegenError(
                    "flang codegen: missing LLVMTranslationDialectInterface for "
                    "the 'acc' dialect (internal compiler error)")
        FirCfgLowering().run_on_function(func)


# ---------------------------------------------------------------------------
# Stage 2: one-to-one conversion to the llvm dialect
# ---------------------------------------------------------------------------


def _llvm_type(t: ir_types.Type) -> ir_types.Type:
    """FIR/builtin type -> llvm dialect type (shared table)."""
    return _shared_llvm_type(t)


_ARITH_TO_LLVM = dict(_SHARED_ARITH)

_MATH_TO_LIBM = dict(_SHARED_MATH)


class _FirToLLVM:
    """One-to-one rewrite of FIR/arith/math/cf/func ops into the llvm dialect."""

    def __init__(self, module: Operation):
        self.module = module

    def run(self) -> None:
        for func in list(self.module.walk()):
            if func.name == "func.func":
                self._convert_function(func)

    def _convert_function(self, func: Operation) -> None:
        # retype block arguments
        for region in func.regions:
            for block in region.blocks:
                for arg in block.args:
                    arg.type = _llvm_type(arg.type)
        for op in list(func.walk()):
            if op is func:
                continue
            self._convert_op(op)
        func.set_attr("llvm.emit_c_interface", IntegerAttr(1))

    def _replace(self, op: Operation, new_ops: List[Operation],
                 result_map: Optional[List[Value]] = None) -> None:
        block = op.parent
        for new_op in new_ops:
            block.insert_before(op, new_op)
        results = result_map if result_map is not None else \
            (list(new_ops[-1].results) if new_ops else [])
        if op.results:
            op.replace_all_uses_with(results)
        op.erase(check_uses=False)

    def _convert_op(self, op: Operation) -> None:
        name = op.name
        if name in _ARITH_TO_LLVM:
            new = create_operation(_ARITH_TO_LLVM[name], operands=list(op.operands),
                                   result_types=[_llvm_type(r.type) for r in op.results],
                                   attributes=dict(op.attributes))
            self._replace(op, [new])
        elif name == "arith.constant":
            attr = op.attributes["value"]
            new = llvm.ConstantOp(attr, _llvm_type(op.results[0].type))
            self._replace(op, [new])
        elif name == "arith.cmpi":
            new = llvm.ICmpOp(op.attributes["predicate"].value, op.operands[0], op.operands[1])
            self._replace(op, [new])
        elif name == "arith.cmpf":
            new = llvm.FCmpOp(op.attributes["predicate"].value, op.operands[0], op.operands[1])
            self._replace(op, [new])
        elif name in ("arith.maximumf", "arith.minimumf", "arith.maxsi", "arith.minsi"):
            pred = {"arith.maximumf": "ogt", "arith.minimumf": "olt",
                    "arith.maxsi": "sgt", "arith.minsi": "slt"}[name]
            cmp_cls = llvm.FCmpOp if name.endswith("f") else llvm.ICmpOp
            cmp = cmp_cls(pred, op.operands[0], op.operands[1])
            sel = llvm.SelectOp(cmp.results[0], op.operands[0], op.operands[1])
            self._replace(op, [cmp, sel])
        elif name == "arith.index_cast":
            self._replace(op, [], result_map=[op.operands[0]])
        elif name in _MATH_TO_LIBM:
            new = llvm.CallOp(_MATH_TO_LIBM[name], list(op.operands),
                              [_llvm_type(r.type) for r in op.results])
            self._replace(op, [new])
        elif name == "fir.alloca":
            size_ops: List[Operation] = []
            in_type = op.get_attr("in_type").type if op.get_attr("in_type") else None
            static_elems = 1
            if isinstance(in_type, fir.SequenceType) and in_type.has_static_shape():
                for d in in_type.shape:
                    static_elems *= d
            if op.operands:
                size: Value = op.operands[0]
                for extra in op.operands[1:]:
                    mul = llvm.MulOp(size, extra)
                    size_ops.append(mul)
                    size = mul.results[0]
            else:
                const = llvm.ConstantOp(IntegerAttr(static_elems, ir_types.i64),
                                        ir_types.i64)
                size_ops.append(const)
                size = const.results[0]
            elem = fir.element_type_of(op.results[0].type)
            alloca = llvm.AllocaOp(size, _llvm_type(elem))
            self._replace(op, size_ops + [alloca])
        elif name == "fir.allocmem":
            call = llvm.CallOp("malloc", list(op.operands), [llvm.ptr])
            self._replace(op, [call])
        elif name == "fir.freemem":
            call = llvm.CallOp("free", list(op.operands), [])
            self._replace(op, [call])
        elif name == "fir.load":
            new = llvm.LoadOp(op.operands[0], _llvm_type(op.results[0].type))
            self._replace(op, [new])
        elif name == "fir.store":
            new = llvm.StoreOp(op.operands[0], op.operands[1])
            self._replace(op, [new])
        elif name == "fir.coordinate_of":
            elem = _llvm_type(op.results[0].type)
            new = llvm.GEPOp(op.operands[0], list(op.operands[1:]), elem)
            self._replace(op, [new])
        elif name == "fir.convert":
            self._convert_fir_convert(op)
        elif name == "fir.embox":
            undef = llvm.UndefOp(llvm.LLVMStructType([llvm.ptr, ir_types.i64]))
            ins = llvm.InsertValueOp(undef.results[0], op.operands[0], [0])
            self._replace(op, [undef, ins])
        elif name == "fir.box_addr":
            new = llvm.ExtractValueOp(op.operands[0], [0], llvm.ptr)
            self._replace(op, [new])
        elif name == "fir.box_dims":
            ops = [llvm.ExtractValueOp(op.operands[0], [1, i], ir_types.i64)
                   for i in range(3)]
            self._replace(op, ops, result_map=[o.results[0] for o in ops])
        elif name in ("fir.shape", "fir.shape_shift"):
            undef = llvm.UndefOp(llvm.LLVMStructType([ir_types.i64]))
            self._replace(op, [undef])
        elif name == "fir.call":
            new = llvm.CallOp(op.get_attr("callee").root, list(op.operands),
                              [_llvm_type(r.type) for r in op.results])
            self._replace(op, [new])
        elif name in ("fir.undefined", "fir.absent", "fir.zero_bits"):
            new = llvm.UndefOp(_llvm_type(op.results[0].type))
            self._replace(op, [new])
        elif name == "fir.string_lit":
            new = llvm.ConstantOp(op.attributes["value"], llvm.ptr)
            self._replace(op, [new])
        elif name == "fir.address_of":
            new = llvm.AddressOfOp(op.get_attr("symbol").root, llvm.ptr)
            self._replace(op, [new])
        elif name == "fir.global":
            new = llvm.GlobalOp(op.get_attr("sym_name").value,
                                _llvm_type(op.get_attr("type").type),
                                value=op.get_attr("initial_value"))
            self._replace(op, [new])
        elif name == "fir.field_index":
            new = llvm.ConstantOp(IntegerAttr(0, ir_types.i64), ir_types.i64)
            self._replace(op, [new])
        elif name == "fir.unreachable":
            self._replace(op, [llvm.UnreachableOp()])
        elif name == "cf.br":
            new = llvm.BrOp(op.successors[0], list(op.operands))
            self._replace(op, [new])
        elif name == "cf.cond_br":
            n_true = op.get_attr("num_true_operands")
            n = n_true.value if n_true is not None else 0
            new = llvm.CondBrOp(op.operands[0], op.successors[0], op.successors[1],
                                list(op.operands[1:1 + n]), list(op.operands[1 + n:]))
            self._replace(op, [new])
        elif name == "func.call":
            new = llvm.CallOp(op.get_attr("callee").root, list(op.operands),
                              [_llvm_type(r.type) for r in op.results])
            self._replace(op, [new])
        elif name == "func.return":
            new = llvm.ReturnOp(list(op.operands))
            self._replace(op, [new])
        else:
            # retype results of ops that survive (e.g. func.func handled above)
            for res in op.results:
                res.type = _llvm_type(res.type)

    def _convert_fir_convert(self, op: Operation) -> None:
        src_t = op.operands[0].type
        dst_t = op.results[0].type
        src = _llvm_type(src_t)
        dst = _llvm_type(dst_t)
        value = op.operands[0]
        if src == dst:
            self._replace(op, [], result_map=[value])
            return
        src_float = isinstance(src, ir_types.FloatType)
        dst_float = isinstance(dst, ir_types.FloatType)
        if src_float and dst_float:
            cls = llvm.FPExtOp if dst.width > src.width else llvm.FPTruncOp
        elif src_float and not dst_float:
            cls = llvm.FPToSIOp
        elif not src_float and dst_float:
            cls = llvm.SIToFPOp
        elif isinstance(src, llvm.LLVMPointerType) or isinstance(dst, llvm.LLVMPointerType):
            cls = llvm.PtrToIntOp if isinstance(src, llvm.LLVMPointerType) else llvm.IntToPtrOp
        else:
            sw = src.width if isinstance(src, ir_types.IntegerType) else 64
            dw = dst.width if isinstance(dst, ir_types.IntegerType) else 64
            cls = llvm.SExtOp if dw > sw else (llvm.TruncOp if dw < sw else None)
            if cls is None:
                self._replace(op, [], result_map=[value])
                return
        new = cls(value, dst)
        self._replace(op, [new])


@register_pass
class FirToLLVMPass(Pass):
    NAME = "fir-to-llvm"

    def run(self, module: Operation) -> None:
        _FirToLLVM(module).run()


__all__ = ["FirCfgConversionPass", "FirToLLVMPass", "FlangCodegenError"]
