"""Flang's HLFIR -> FIR lowering (the baseline flow's first stage).

Mirrors what Flang does between its HLFIR and FIR-only forms:

* transformational intrinsics (``hlfir.sum``, ``hlfir.matmul``, ...) become
  calls into the Fortran runtime library (Section VI-A of the paper),
* ``hlfir.designate`` element accesses become explicit address arithmetic
  (1-based index normalisation, stride multiplication, linearisation) — the
  "explicitly calculate array access offsets" step the paper describes —
  with allocatable arrays re-loading their descriptor (box) at every access,
* ``hlfir.assign`` becomes a plain ``fir.store`` for scalars and a runtime
  assignment call for whole arrays,
* ``hlfir.declare`` disappears, uses being rewired to the underlying storage.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dialects import arith, fir, hlfir
from ..ir import types as ir_types
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import Pass, register_pass
from ..ir.rewriter import PatternRewriter
from . import runtime


class _HlfirToFir:
    """Stateful lowering over one module."""

    def __init__(self, module: Operation):
        self.module = module
        self.rewriter = PatternRewriter(module)

    # -- helpers -------------------------------------------------------------
    def _insert_before(self, anchor: Operation, op: Operation) -> Operation:
        anchor.parent.insert_before(anchor, op)
        return op

    def _declare_of(self, value: Value) -> Optional[hlfir.DeclareOp]:
        owner = getattr(value, "op", None)
        if isinstance(owner, hlfir.DeclareOp):
            return owner
        return None

    def _extent_values(self, declare: Optional[hlfir.DeclareOp],
                       memref: Value, anchor: Operation) -> List[Value]:
        """SSA extents of an array, from its static type, declare shape, or box."""
        base_type = memref.type
        seq = fir.dereferenced_type(base_type)
        boxed = isinstance(seq, fir.BoxType)
        if boxed:
            seq = fir.dereferenced_type(fir.dereferenced_type(seq))
        if declare is not None and declare.shape is not None:
            shape_op = declare.shape.op
            return list(shape_op.operands)
        if isinstance(seq, fir.SequenceType) and seq.has_static_shape():
            extents = []
            for d in seq.shape:
                c = self._insert_before(anchor, arith.ConstantOp(d, ir_types.index))
                extents.append(c.result)
            return extents
        if boxed:
            # load the descriptor and query every dimension
            box = self._insert_before(anchor, fir.LoadOp(memref)).result
            extents = []
            rank = seq.rank if isinstance(seq, fir.SequenceType) else 1
            for d in range(rank):
                dim_c = self._insert_before(anchor, arith.ConstantOp(d, ir_types.index))
                dims = self._insert_before(anchor, fir.BoxDimsOp(box, dim_c.result))
                extents.append(dims.results[1])
            return extents
        return []

    # -- designate -------------------------------------------------------------
    def lower_designate(self, op: hlfir.DesignateOp) -> None:
        memref = op.memref
        declare = self._declare_of(memref)
        base = memref
        base_type = memref.type
        inner = fir.dereferenced_type(base_type)
        boxed = isinstance(inner, fir.BoxType)

        if op.component is not None:
            coord = self._insert_before(op, fir.CoordinateOfOp(
                base, [], op.results[0].type, field=op.component))
            op.replace_all_uses_with([coord.results[0]])
            self.rewriter.erase_op(op)
            return

        if op.triplets:
            # array section: materialise a runtime section view call
            call = self._insert_before(op, fir.CallOp(
                "_FortranASectionView", [base, *op.triplets], [op.results[0].type]))
            op.replace_all_uses_with([call.results[0]])
            self.rewriter.erase_op(op)
            return

        indices = list(op.indices)
        if not indices:
            op.replace_all_uses_with([base])
            self.rewriter.erase_op(op)
            return

        # element access: normalise 1-based indices, linearise column-major
        if boxed:
            # Flang re-loads the descriptor at every access (no hoisting)
            box = self._insert_before(op, fir.LoadOp(memref)).result
            addr_base = self._insert_before(op, fir.BoxAddrOp(box)).result
        else:
            addr_base = base
        extents = self._extent_values(declare, memref, op)
        one = self._insert_before(op, arith.ConstantOp(1, ir_types.index)).result
        linear: Optional[Value] = None
        stride: Optional[Value] = None
        for dim, idx in enumerate(indices):
            zero_based = self._insert_before(op, arith.SubIOp(idx, one)).result
            if stride is None:
                term: Value = zero_based
            else:
                term = self._insert_before(op, arith.MulIOp(zero_based, stride)).result
            linear = term if linear is None else \
                self._insert_before(op, arith.AddIOp(linear, term)).result
            if dim < len(indices) - 1:
                extent = extents[dim] if dim < len(extents) else one
                stride = extent if stride is None else \
                    self._insert_before(op, arith.MulIOp(stride, extent)).result
        coord = self._insert_before(op, fir.CoordinateOfOp(
            addr_base, [linear], op.results[0].type))
        op.replace_all_uses_with([coord.results[0]])
        self.rewriter.erase_op(op)

    # -- assign ------------------------------------------------------------------
    def lower_assign(self, op: hlfir.AssignOp) -> None:
        rhs, lhs = op.rhs, op.lhs
        lhs_inner = fir.dereferenced_type(lhs.type)
        is_array_target = isinstance(lhs_inner, (fir.SequenceType, fir.BoxType)) or \
            isinstance(fir.dereferenced_type(lhs_inner), fir.SequenceType)
        if not is_array_target and not isinstance(rhs.type, hlfir.ExprType):
            store = fir.StoreOp(rhs, lhs)
            self.rewriter.replace_op(op, [store])
            return
        # whole-array assignment goes through the runtime in Flang
        call = fir.CallOp("_FortranAAssign", [rhs, lhs])
        self.rewriter.replace_op(op, [call])

    # -- transformational intrinsics -------------------------------------------------
    def lower_intrinsic(self, op: Operation) -> None:
        kind = op.name.split(".")[1]
        symbol = runtime.RUNTIME_SYMBOLS.get(kind, f"_FortranA{kind.capitalize()}")
        call = fir.CallOp(symbol, list(op.operands), [r.type for r in op.results])
        self.rewriter.replace_op(op, [call])

    # -- declare ------------------------------------------------------------------------
    def lower_declare(self, op: hlfir.DeclareOp) -> None:
        op.replace_all_uses_with([op.memref, op.memref])
        self.rewriter.erase_op(op)

    # -- driver ----------------------------------------------------------------------------
    def run(self) -> None:
        # 1. designates (need declares still present for shape info)
        for op in list(self.module.walk()):
            if isinstance(op, hlfir.DesignateOp):
                self.lower_designate(op)
        # 2. transformational intrinsics
        for op in list(self.module.walk()):
            if op.name in hlfir.TRANSFORMATIONAL_INTRINSICS:
                self.lower_intrinsic(op)
        # 3. assignments
        for op in list(self.module.walk()):
            if isinstance(op, hlfir.AssignOp):
                self.lower_assign(op)
        # 4. declares (and any remaining hlfir bookkeeping ops)
        for op in list(self.module.walk()):
            if isinstance(op, hlfir.DeclareOp):
                self.lower_declare(op)
            elif op.name in ("hlfir.end_associate", "hlfir.destroy"):
                self.rewriter.erase_op(op)


@register_pass
class ConvertHlfirToFirPass(Pass):
    """``convert-hlfir-to-fir``: Flang's own HLFIR bufferisation/lowering."""

    NAME = "convert-hlfir-to-fir"

    def run(self, module: Operation) -> None:
        _HlfirToFir(module).run()


def convert_hlfir_to_fir(module: Operation) -> Operation:
    ConvertHlfirToFirPass().run(module)
    return module


__all__ = ["ConvertHlfirToFirPass", "convert_hlfir_to_fir"]
