"""The baseline Flang compilation driver (Figure 1 of the paper).

Stages: Fortran source -> parse/semantics -> HLFIR+FIR -> (HLFIR lowered to
FIR only) -> direct LLVM-dialect code generation.  Intermediate modules are
kept so the experiments can analyse/execute the flow at any stage; results
are :class:`~repro.flows.base.FlowResult` subclasses, so both drivers expose
the same ``stages`` / ``module`` / ``timing`` shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dialects.builtin import ModuleOp
from ..flows.base import FlowResult
from ..frontend import analyze, parse_source
from ..frontend.lowering import FortranLowering
from ..ir.pass_manager import (PassInstrumentation, PassManager,
                               PassTimingReport)
from .codegen import FirCfgConversionPass, FirToLLVMPass, FlangCodegenError
from .hlfir_to_fir import ConvertHlfirToFirPass


class FlangCompilationResult(FlowResult):
    """All intermediate stages of one baseline-Flang compilation.

    A :class:`~repro.flows.base.FlowResult` whose stages are ``hlfir``,
    ``fir`` and ``llvm``; the historical attribute names remain available
    as properties.
    """

    def __init__(self, source: str, hlfir_module: ModuleOp,
                 fir_module: ModuleOp, llvm_module: Optional[ModuleOp],
                 error: Optional[str] = None,
                 timing: Optional[PassTimingReport] = None):
        super().__init__(flow="flang", source=source,
                         stages={"hlfir": hlfir_module, "fir": fir_module,
                                 "llvm": llvm_module},
                         timing=timing, error=error)

    @property
    def hlfir_module(self) -> ModuleOp:
        return self.stages["hlfir"]

    @property
    def fir_module(self) -> ModuleOp:
        return self.stages["fir"]

    @property
    def llvm_module(self) -> Optional[ModuleOp]:
        return self.stages["llvm"]

    @property
    def succeeded(self) -> bool:
        return self.error is None


class FlangCompiler:
    """Compile Fortran with the baseline Flang flow.

    ``use_hlfir=False`` models Flang v17, which lowered straight to FIR
    without the HLFIR layer (the paper compares v17 and v20 in Table I); in
    that mode the HLFIR stage is produced and immediately lowered, mirroring
    the older pipeline's behaviour of carrying less high-level information.
    """

    name = "flang"
    version = "20.0.0"

    def __init__(self, use_hlfir: bool = True, optimization_level: int = 3,
                 *, verify_each: bool = False, collect_statistics: bool = True,
                 instrumentations: Sequence[PassInstrumentation] = ()):
        self.use_hlfir = use_hlfir
        self.optimization_level = optimization_level
        self.verify_each = verify_each
        self.collect_statistics = collect_statistics
        self.instrumentations = list(instrumentations)

    # -- pipeline descriptions (Figure 1) -----------------------------------------
    def flow_description(self) -> List[str]:
        return [
            "lex/parse + AST optimisation",
            "lower to HLFIR + FIR" if self.use_hlfir else "lower to FIR",
            "HLFIR -> FIR bufferisation" if self.use_hlfir else "(no HLFIR stage)",
            "bespoke FIR -> LLVM-IR code generation",
            "LLVM backend",
        ]

    def _pass_manager(self, passes) -> PassManager:
        return PassManager(passes, verify_each=self.verify_each,
                           collect_statistics=self.collect_statistics,
                           instrumentations=self.instrumentations)

    # -- compilation ----------------------------------------------------------------
    def lower_to_hlfir(self, source: str) -> ModuleOp:
        unit = parse_source(source)
        analysis = analyze(unit)
        return FortranLowering(analysis).lower()

    def lower_to_fir(self, hlfir_module: ModuleOp) -> ModuleOp:
        pm = self._pass_manager([ConvertHlfirToFirPass()])
        pm.run(hlfir_module)
        self._last_report = pm.last_report
        return hlfir_module

    def lower_to_llvm(self, fir_module: ModuleOp) -> ModuleOp:
        pm = self._pass_manager([FirCfgConversionPass(), FirToLLVMPass()])
        pm.run(fir_module)
        self._last_report = pm.last_report
        return fir_module

    def compile(self, source: str, *, stop_at: str = "llvm") -> FlangCompilationResult:
        hlfir_module = self.lower_to_hlfir(source)
        # keep a pristine copy of the HLFIR stage for inspection
        hlfir_snapshot = hlfir_module.clone()
        if stop_at == "hlfir":
            return FlangCompilationResult(source, hlfir_snapshot, hlfir_module,
                                          None)
        fir_module = self.lower_to_fir(hlfir_module)
        timing = self._last_report
        fir_snapshot = fir_module.clone()
        if stop_at == "fir":
            return FlangCompilationResult(source, hlfir_snapshot, fir_module,
                                          None, timing=timing)
        try:
            llvm_module = self.lower_to_llvm(fir_module)
            timing = timing.merged(self._last_report)
        except FlangCodegenError as exc:
            return FlangCompilationResult(source, hlfir_snapshot, fir_snapshot,
                                          None, error=str(exc), timing=timing)
        return FlangCompilationResult(source, hlfir_snapshot, fir_snapshot,
                                      llvm_module, timing=timing)


class FlangV17Compiler(FlangCompiler):
    """Flang 17.0.0 (LLVM 16): the pre-HLFIR pipeline."""

    version = "17.0.0"

    def __init__(self, optimization_level: int = 3, **kwargs):
        super().__init__(use_hlfir=False,
                         optimization_level=optimization_level, **kwargs)


__all__ = ["FlangCompiler", "FlangV17Compiler", "FlangCompilationResult",
           "FlangCodegenError"]
