"""The baseline Flang compilation driver (Figure 1 of the paper).

Stages: Fortran source -> parse/semantics -> HLFIR+FIR -> (HLFIR lowered to
FIR only) -> direct LLVM-dialect code generation.  Intermediate modules are
kept so the experiments can analyse/execute the flow at any stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dialects.builtin import ModuleOp
from ..frontend import analyze, parse_source
from ..frontend.lowering import FortranLowering
from ..ir.pass_manager import PassManager
from .codegen import FirCfgConversionPass, FirToLLVMPass, FlangCodegenError
from .hlfir_to_fir import ConvertHlfirToFirPass


@dataclass
class FlangCompilationResult:
    """All intermediate stages of one baseline-Flang compilation."""

    source: str
    hlfir_module: ModuleOp
    fir_module: ModuleOp
    llvm_module: Optional[ModuleOp]
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None

    def stage(self, name: str) -> ModuleOp:
        return {"hlfir": self.hlfir_module, "fir": self.fir_module,
                "llvm": self.llvm_module}[name]


class FlangCompiler:
    """Compile Fortran with the baseline Flang flow.

    ``use_hlfir=False`` models Flang v17, which lowered straight to FIR
    without the HLFIR layer (the paper compares v17 and v20 in Table I); in
    that mode the HLFIR stage is produced and immediately lowered, mirroring
    the older pipeline's behaviour of carrying less high-level information.
    """

    name = "flang"
    version = "20.0.0"

    def __init__(self, use_hlfir: bool = True, optimization_level: int = 3):
        self.use_hlfir = use_hlfir
        self.optimization_level = optimization_level

    # -- pipeline descriptions (Figure 1) -----------------------------------------
    def flow_description(self) -> List[str]:
        return [
            "lex/parse + AST optimisation",
            "lower to HLFIR + FIR" if self.use_hlfir else "lower to FIR",
            "HLFIR -> FIR bufferisation" if self.use_hlfir else "(no HLFIR stage)",
            "bespoke FIR -> LLVM-IR code generation",
            "LLVM backend",
        ]

    # -- compilation ----------------------------------------------------------------
    def lower_to_hlfir(self, source: str) -> ModuleOp:
        unit = parse_source(source)
        analysis = analyze(unit)
        return FortranLowering(analysis).lower()

    def lower_to_fir(self, hlfir_module: ModuleOp) -> ModuleOp:
        PassManager([ConvertHlfirToFirPass()]).run(hlfir_module)
        return hlfir_module

    def lower_to_llvm(self, fir_module: ModuleOp) -> ModuleOp:
        PassManager([FirCfgConversionPass(), FirToLLVMPass()]).run(fir_module)
        return fir_module

    def compile(self, source: str, *, stop_at: str = "llvm") -> FlangCompilationResult:
        hlfir_module = self.lower_to_hlfir(source)
        # keep a pristine copy of the HLFIR stage for inspection
        hlfir_snapshot = hlfir_module.clone()
        if stop_at == "hlfir":
            return FlangCompilationResult(source, hlfir_snapshot, hlfir_module, None)
        fir_module = self.lower_to_fir(hlfir_module)
        fir_snapshot = fir_module.clone()
        if stop_at == "fir":
            return FlangCompilationResult(source, hlfir_snapshot, fir_module, None)
        try:
            llvm_module = self.lower_to_llvm(fir_module)
        except FlangCodegenError as exc:
            return FlangCompilationResult(source, hlfir_snapshot, fir_snapshot,
                                          None, error=str(exc))
        return FlangCompilationResult(source, hlfir_snapshot, fir_snapshot, llvm_module)


class FlangV17Compiler(FlangCompiler):
    """Flang 17.0.0 (LLVM 16): the pre-HLFIR pipeline."""

    version = "17.0.0"

    def __init__(self, optimization_level: int = 3):
        super().__init__(use_hlfir=False, optimization_level=optimization_level)


__all__ = ["FlangCompiler", "FlangV17Compiler", "FlangCompilationResult",
           "FlangCodegenError"]
