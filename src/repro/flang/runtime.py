"""The Flang Fortran runtime library.

Flang does not lower transformational intrinsics (sum, matmul, dot_product,
transpose, ...) to IR; it emits calls into its runtime library
(``_FortranASum`` etc.).  Section VI-A of the paper compares that approach
against lowering to the ``linalg`` dialect.

This module provides:

* the symbol names Flang uses for those runtime entry points,
* reference Python/NumPy implementations used by the interpreter when it
  encounters such a call, and
* the cost characteristics of the library routines (straightforward scalar
  loops, which is what the measured Flang numbers in Table III reflect).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

#: Mapping from intrinsic name to the Flang runtime symbol called for it.
RUNTIME_SYMBOLS = {
    "sum": "_FortranASumReal8",
    "product": "_FortranAProduct",
    "maxval": "_FortranAMaxvalReal8",
    "minval": "_FortranAMinvalReal8",
    "count": "_FortranACount",
    "dot_product": "_FortranADotProductReal8",
    "matmul": "_FortranAMatmul",
    "transpose": "_FortranATranspose",
}

#: Reverse map used by the interpreter / cost model.
SYMBOL_TO_INTRINSIC = {v: k for k, v in RUNTIME_SYMBOLS.items()}

#: Non-computational runtime entry points emitted by the frontend.
IO_SYMBOLS = {"_FortranAioOutput", "_FortranAStopStatement"}


def is_runtime_symbol(name: str) -> bool:
    return name in SYMBOL_TO_INTRINSIC or name in IO_SYMBOLS or \
        name.startswith("_Fortran")


# ---------------------------------------------------------------------------
# Reference implementations (used when the interpreter hits a runtime call)
# ---------------------------------------------------------------------------


def runtime_sum(array: np.ndarray) -> float:
    return float(np.sum(array))


def runtime_product(array: np.ndarray) -> float:
    return float(np.prod(array))


def runtime_maxval(array: np.ndarray) -> float:
    return float(np.max(array))


def runtime_minval(array: np.ndarray) -> float:
    return float(np.min(array))


def runtime_count(array: np.ndarray) -> int:
    return int(np.count_nonzero(array))


def runtime_dot_product(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.dot(a.ravel(), b.ravel()))


def runtime_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.asarray(a) @ np.asarray(b)


def runtime_transpose(a: np.ndarray) -> np.ndarray:
    return np.asarray(a).T.copy()


IMPLEMENTATIONS: Dict[str, Callable] = {
    "sum": runtime_sum,
    "product": runtime_product,
    "maxval": runtime_maxval,
    "minval": runtime_minval,
    "count": runtime_count,
    "dot_product": runtime_dot_product,
    "matmul": runtime_matmul,
    "transpose": runtime_transpose,
}


def dispatch(symbol: str, args: List):
    """Execute a Fortran runtime call on interpreter-level values."""
    if symbol in IO_SYMBOLS:
        return None
    intrinsic = SYMBOL_TO_INTRINSIC.get(symbol)
    if intrinsic is None:
        # Unknown _Fortran... entry point: treat as a no-op with no result.
        return None
    impl = IMPLEMENTATIONS[intrinsic]
    return impl(*args)


# ---------------------------------------------------------------------------
# Cost characteristics (consumed by repro.machine.cost_model)
# ---------------------------------------------------------------------------

#: Scalar floating-point operations per element performed by the library
#: routine (library code is portable scalar code — no vectorisation).
FLOPS_PER_ELEMENT = {
    "sum": 1.0,
    "product": 1.0,
    "maxval": 1.0,
    "minval": 1.0,
    "count": 1.0,
    "dot_product": 2.0,
    "matmul": 2.0,          # per inner-loop element (n^3 total)
    "transpose": 0.0,       # pure data movement
}

#: Memory operations (loads+stores) per element for the library routine.
MEMOPS_PER_ELEMENT = {
    "sum": 1.0,
    "product": 1.0,
    "maxval": 1.0,
    "minval": 1.0,
    "count": 1.0,
    "dot_product": 2.0,
    "matmul": 3.0,
    "transpose": 2.0,
}

#: Fixed call overhead (cycles) for entering the runtime, including the
#: descriptor set-up Flang performs before each call.
CALL_OVERHEAD_CYCLES = 220.0


__all__ = [
    "RUNTIME_SYMBOLS", "SYMBOL_TO_INTRINSIC", "IO_SYMBOLS", "IMPLEMENTATIONS",
    "is_runtime_symbol", "dispatch", "FLOPS_PER_ELEMENT", "MEMOPS_PER_ELEMENT",
    "CALL_OVERHEAD_CYCLES",
]
