"""Published numbers from the paper's tables (for shape comparison).

Values are runtimes in seconds unless stated otherwise.  ``None`` marks the
aermod/Flang-v20 entry reported as DNC (did not compile).
"""

from __future__ import annotations

#: Table I: Flang v20 / Flang v17 / Cray 15 / GNU 11.2 on ARCHER2.
TABLE1 = {
    "ac": {"flang-v20": 11.89, "flang-v17": 10.82, "cray": 8.67, "gnu": 31.43},
    "aermod": {"flang-v20": None, "flang-v17": 17.80, "cray": 11.67, "gnu": 13.16},
    "air": {"flang-v20": 5.80, "flang-v17": 5.15, "cray": 3.27, "gnu": 6.88},
    "capacita": {"flang-v20": 37.82, "flang-v17": 32.79, "cray": 36.33, "gnu": 36.71},
    "channel": {"flang-v20": 56.84, "flang-v17": 55.96, "cray": 50.26, "gnu": 54.46},
    "doduc": {"flang-v20": 16.65, "flang-v17": 16.41, "cray": 12.89, "gnu": 15.61},
    "fatigue": {"flang-v20": 105.90, "flang-v17": 111.08, "cray": 121.57, "gnu": 99.42},
    "gas_dyn": {"flang-v20": 116.90, "flang-v17": 99.04, "cray": 46.29, "gnu": 68.38},
    "induct": {"flang-v20": 126.23, "flang-v17": 126.36, "cray": 38.19, "gnu": 35.15},
    "linpk": {"flang-v20": 6.24, "flang-v17": 5.84, "cray": 5.79, "gnu": 4.81},
    "mdbx": {"flang-v20": 11.37, "flang-v17": 12.40, "cray": 9.19, "gnu": 12.68},
    "mp_prop_design": {"flang-v20": 120.71, "flang-v17": 118.10, "cray": 30.10, "gnu": 216.00},
    "nf": {"flang-v20": 10.29, "flang-v17": 14.16, "cray": 7.72, "gnu": 7.43},
    "protein": {"flang-v20": 33.06, "flang-v17": 35.79, "cray": 30.82, "gnu": 26.82},
    "rnflow": {"flang-v20": 27.22, "flang-v17": 29.32, "cray": 15.31, "gnu": 44.00},
    "test_fpu": {"flang-v20": 110.80, "flang-v17": 267.68, "cray": 32.56, "gnu": 76.99},
    "tfft": {"flang-v20": 48.90, "flang-v17": 53.98, "cray": 61.65, "gnu": 115.86},
    "jacobi": {"flang-v20": 277.67, "flang-v17": 301.92, "cray": 109.89, "gnu": 232.62},
    "pw-advection": {"flang-v20": 205.33, "flang-v17": 602.43, "cray": 47.28, "gnu": 192.05},
    "tra-adv": {"flang-v20": 141.95, "flang-v17": 145.82, "cray": 79.38, "gnu": 116.71},
}

#: Table II: our approach vs Flang v20, Cray, GNU.
TABLE2 = {
    "ac": {"our-approach": 10.23, "flang-v20": 11.89, "cray": 8.67, "gnu": 31.43},
    "linpk": {"our-approach": 5.43, "flang-v20": 6.24, "cray": 5.79, "gnu": 4.81},
    "nf": {"our-approach": 10.69, "flang-v20": 10.29, "cray": 7.72, "gnu": 7.43},
    "test_fpu": {"our-approach": 72.41, "flang-v20": 110.80, "cray": 32.56, "gnu": 76.99},
    "tfft": {"our-approach": 52.33, "flang-v20": 48.90, "cray": 61.65, "gnu": 115.86},
    "jacobi": {"our-approach": 249.08, "flang-v20": 277.67, "cray": 109.89, "gnu": 232.62},
    "pw-advection": {"our-approach": 86.47, "flang-v20": 205.33, "cray": 47.28, "gnu": 192.05},
    "tra-adv": {"our-approach": 124.72, "flang-v20": 141.95, "cray": 79.38, "gnu": 116.71},
}

#: Table III: intrinsics — our approach (serial / threaded) vs Flang runtime.
TABLE3 = {
    "transpose": {"ours-serial": 214.48, "ours-threaded": 40.75, "flang-v20": 272.38},
    "matmul": {"ours-serial": 43.12, "ours-threaded": 11.85, "flang-v20": 45.71},
    "dotproduct": {"ours-serial": 0.81, "ours-threaded": None, "flang-v20": 2.70},
    "sum": {"ours-serial": 1.63, "ours-threaded": None, "flang-v20": 1.65},
}

#: Table IV: OpenMP speed-up over serial for jacobi / pw-advection.
TABLE4 = {
    2: {"ours-jacobi": 1.95, "ours-pw": 1.81, "flang-jacobi": 1.76, "flang-pw": 1.82},
    4: {"ours-jacobi": 4.01, "ours-pw": 3.34, "flang-jacobi": 3.42, "flang-pw": 3.28},
    8: {"ours-jacobi": 5.77, "ours-pw": 5.52, "flang-jacobi": 6.47, "flang-pw": 5.37},
    16: {"ours-jacobi": 13.14, "ours-pw": 8.04, "flang-jacobi": 11.43, "flang-pw": 7.75},
    32: {"ours-jacobi": 26.14, "ours-pw": 9.77, "flang-jacobi": 13.96, "flang-pw": 9.75},
    64: {"ours-jacobi": 72.62, "ours-pw": 10.80, "flang-jacobi": 18.39, "flang-pw": 10.90},
}

#: Table V: OpenACC pw-advection on a V100, grid cells -> runtime (s).
TABLE5 = {
    134_000_000: {"our-approach": 4.72, "nvfortran": 3.88},
    268_000_000: {"our-approach": 6.33, "nvfortran": 5.94},
    536_000_000: {"our-approach": 11.65, "nvfortran": 10.84},
    1_100_000_000: {"our-approach": 22.78, "nvfortran": 21.80},
}

#: Section IV profiling narrative (tfft / induct observations).
SECTION4_PROFILES = {
    "tfft": {"gnu_vectorised_fp_fraction": 0.47, "gnu_stall_fraction": 0.68,
             "gnu_fp_fraction": 0.22, "flang_stall_fraction": 0.51,
             "flang_fp_fraction": 0.27, "flang_vectorised_fp_fraction": 0.0},
    "induct": {"gnu_fp_fraction": 0.60, "gnu_vectorised_fp_fraction": 0.67,
               "flang_fp_fraction": 0.58, "flang_vectorised_fp_fraction": 0.0,
               "gnu_instructions_billion": 383, "flang_instructions_billion": 704},
}


__all__ = ["TABLE1", "TABLE2", "TABLE3", "TABLE4", "TABLE5",
           "SECTION4_PROFILES"]
