"""Experiment harness regenerating every table (and Figure 3's data).

Each ``table*`` function returns an :class:`ExperimentTable` holding modeled
measurements alongside the paper's published values, so the benchmark suite
(and EXPERIMENTS.md) can compare shapes: who wins, by roughly what factor,
and where the crossovers are.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..compilers import (CrayAdapter, FlangV17Adapter, FlangV20Adapter,
                         GnuAdapter, Measurement, NvfortranAdapter,
                         OurApproachAdapter)
from ..machine import PerformanceModel, profile_stats
from ..service import CompileService, use_service
from ..service.tuning import (TABLE3_THREADED, TABLE3_THREADS,
                              TABLE5_GRID_SIZES, table3_options)
from ..workloads import (get_workload, jacobi, pw_advection, table1_workloads,
                         table2_workloads, table3_workloads)
from . import paper_data


def _service_scope(service: Optional[CompileService]):
    """Route this table's measurements through ``service`` (default if None)."""
    return use_service(service) if service is not None else nullcontext()


@dataclass
class ExperimentRow:
    label: str
    measured: Dict[str, float]
    paper: Dict[str, Optional[float]] = field(default_factory=dict)
    notes: str = ""


@dataclass
class ExperimentTable:
    name: str
    title: str
    columns: Sequence[str]
    rows: List[ExperimentRow] = field(default_factory=list)

    def row(self, label: str) -> ExperimentRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)

    def measured_matrix(self) -> Dict[str, Dict[str, float]]:
        return {r.label: dict(r.measured) for r in self.rows}


# ---------------------------------------------------------------------------
# Table I — Flang v20 / v17 / Cray / GNU over the 20 benchmarks
# ---------------------------------------------------------------------------


def table1(benchmarks: Optional[Sequence[str]] = None, *,
           service: Optional[CompileService] = None,
           engine: str = "compiled") -> ExperimentTable:
    adapters = {
        "flang-v20": FlangV20Adapter(engine=engine),
        "flang-v17": FlangV17Adapter(engine=engine),
        "cray": CrayAdapter(engine=engine),
        "gnu": GnuAdapter(engine=engine),
    }
    table = ExperimentTable("table1",
                            "Runtime of the benchmarks for Flang v20/v17, Cray and GNU",
                            list(adapters))
    with _service_scope(service):
        for workload in table1_workloads():
            if benchmarks is not None and workload.name not in benchmarks:
                continue
            measured = {}
            for column, adapter in adapters.items():
                if workload.name == "aermod" and column == "flang-v20":
                    # Table I reports DNC: Flang v20 failed to compile aermod
                    measured[column] = float("nan")
                    continue
                measured[column] = adapter.measure(workload).runtime_s
            table.rows.append(ExperimentRow(workload.name, measured,
                                            paper_data.TABLE1.get(workload.name, {})))
    return table


# ---------------------------------------------------------------------------
# Table II — our approach vs Flang v20 / Cray / GNU
# ---------------------------------------------------------------------------


def table2(benchmarks: Optional[Sequence[str]] = None, *,
           service: Optional[CompileService] = None,
           engine: str = "compiled") -> ExperimentTable:
    adapters = {
        "our-approach": OurApproachAdapter(engine=engine),
        "flang-v20": FlangV20Adapter(engine=engine),
        "cray": CrayAdapter(engine=engine),
        "gnu": GnuAdapter(engine=engine),
    }
    table = ExperimentTable("table2",
                            "Our approach against Flang v20, Cray and GNU",
                            list(adapters))
    with _service_scope(service):
        for workload in table2_workloads():
            if benchmarks is not None and workload.name not in benchmarks:
                continue
            measured = {c: a.measure(workload).runtime_s
                        for c, a in adapters.items()}
            table.rows.append(ExperimentRow(workload.name, measured,
                                            paper_data.TABLE2.get(workload.name, {})))
    return table


# ---------------------------------------------------------------------------
# Table III — intrinsics: linalg dialect vs Flang runtime library
# ---------------------------------------------------------------------------


def table3(benchmarks: Optional[Sequence[str]] = None, *,
           service: Optional[CompileService] = None,
           engine: str = "compiled") -> ExperimentTable:
    table = ExperimentTable(
        "table3", "Fortran intrinsics: linalg dialect (ours) vs runtime library (Flang)",
        ["ours-serial", "ours-threaded", "flang-v20"])
    flang = FlangV20Adapter(engine=engine)
    with _service_scope(service):
        for workload in table3_workloads():
            if benchmarks is not None and workload.name not in benchmarks:
                continue
            ours = OurApproachAdapter(engine=engine,
                                      **table3_options(workload.name))
            measured = {
                "ours-serial": ours.measure(workload).runtime_s,
                "flang-v20": flang.measure(workload).runtime_s,
            }
            # the paper's simple scf.parallel conversion does not support
            # reductions, so only transpose and matmul are threaded (64 cores)
            if workload.name in TABLE3_THREADED:
                measured["ours-threaded"] = ours.measure(
                    workload, threads=TABLE3_THREADS).runtime_s
            else:
                measured["ours-threaded"] = float("nan")
            table.rows.append(ExperimentRow(workload.name, measured,
                                            paper_data.TABLE3.get(workload.name, {})))
    return table


# ---------------------------------------------------------------------------
# Table IV — OpenMP speed-up against serial execution
# ---------------------------------------------------------------------------


def table4(core_counts: Sequence[int] = (2, 4, 8, 16, 32, 64), *,
           service: Optional[CompileService] = None,
           engine: str = "compiled") -> ExperimentTable:
    table = ExperimentTable("table4",
                            "OpenMP speed-up over serial for jacobi and pw-advection",
                            ["ours-jacobi", "ours-pw", "flang-jacobi", "flang-pw"])
    ours = OurApproachAdapter(engine=engine)
    flang = FlangV20Adapter(engine=engine)
    workloads = {"jacobi": jacobi(openmp=True),
                 "pw": pw_advection(openmp=True)}
    with _service_scope(service):
        serial = {
            ("ours", key): ours.measure(w, threads=1).runtime_s
            for key, w in workloads.items()
        }
        serial.update({
            ("flang", key): flang.measure(w, threads=1).runtime_s
            for key, w in workloads.items()
        })
        for cores in core_counts:
            measured = {}
            for key, w in workloads.items():
                measured[f"ours-{key}"] = serial[("ours", key)] / \
                    ours.measure(w, threads=cores).runtime_s
                measured[f"flang-{key}"] = serial[("flang", key)] / \
                    flang.measure(w, threads=cores).runtime_s
            table.rows.append(ExperimentRow(str(cores), measured,
                                            paper_data.TABLE4.get(cores, {})))
    return table


# ---------------------------------------------------------------------------
# Table V — OpenACC on the V100 GPU vs nvfortran
# ---------------------------------------------------------------------------


def table5(grid_sizes: Sequence[int] = TABLE5_GRID_SIZES, *,
           service: Optional[CompileService] = None,
           engine: str = "compiled") -> ExperimentTable:
    table = ExperimentTable("table5",
                            "pw-advection with OpenACC on a V100: ours vs nvfortran",
                            ["our-approach", "nvfortran"])
    ours = OurApproachAdapter(engine=engine)
    nvf = NvfortranAdapter(engine=engine)
    with _service_scope(service):
        for cells in grid_sizes:
            workload = pw_advection(openacc=True, grid_cells=cells)
            measured = {
                "our-approach": ours.measure(workload, gpu=True).runtime_s,
                "nvfortran": nvf.measure(workload, gpu=True).runtime_s,
            }
            table.rows.append(ExperimentRow(f"{cells:,}", measured,
                                            paper_data.TABLE5.get(cells, {})))
    return table


# ---------------------------------------------------------------------------
# Figure 3 / Section VI-A — effect of the vectorisation pipeline
# ---------------------------------------------------------------------------


def figure3_vectorization(benchmark: str = "dotproduct", *,
                          service: Optional[CompileService] = None,
                          engine: str = "compiled") -> ExperimentTable:
    """Runtime of a kernel with and without the affine vectorisation pipeline
    of Figure 3 (and, for matmul, with/without affine tiling)."""
    workload = get_workload(benchmark)
    table = ExperimentTable("figure3",
                            "Effect of the affine vectorisation/tiling pipeline",
                            ["scalar", "vectorised", "tiled+vectorised"])
    scalar = OurApproachAdapter(engine=engine, vector_width=0)
    vectorised = OurApproachAdapter(engine=engine, vector_width=4)
    tiled = OurApproachAdapter(engine=engine, vector_width=4, tile=True)
    with _service_scope(service):
        measured = {
            "scalar": scalar.measure(workload).runtime_s,
            "vectorised": vectorised.measure(workload).runtime_s,
            "tiled+vectorised": tiled.measure(workload).runtime_s,
        }
    table.rows.append(ExperimentRow(benchmark, measured, {}))
    return table


# ---------------------------------------------------------------------------
# Section IV profiling narrative
# ---------------------------------------------------------------------------


def section4_profile(benchmark: str = "tfft", *,
                     service: Optional[CompileService] = None,
                     engine: str = "compiled") -> Dict[str, Dict[str, float]]:
    """Instruction-mix profile of a benchmark under both flows (Section IV)."""
    workload = get_workload(benchmark)
    flang = FlangV20Adapter(engine=engine)
    ours = OurApproachAdapter(engine=engine)
    with _service_scope(service):
        return {
            "flang-v20": flang.instruction_mix(workload).as_dict(),
            "our-approach": ours.instruction_mix(workload).as_dict(),
            "paper": paper_data.SECTION4_PROFILES.get(benchmark, {}),
        }


__all__ = ["ExperimentRow", "ExperimentTable", "table1", "table2", "table3",
           "table4", "table5", "figure3_vectorization", "section4_profile"]
