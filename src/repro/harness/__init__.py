"""Experiment harness: regenerates every table/figure of the evaluation."""

from .experiments import (ExperimentRow, ExperimentTable, figure3_vectorization,
                          section4_profile, table1, table2, table3, table4,
                          table5)
from .reporting import format_table, ordering_agreement, speedup
from . import paper_data

__all__ = [
    "ExperimentRow", "ExperimentTable", "figure3_vectorization",
    "section4_profile", "table1", "table2", "table3", "table4", "table5",
    "format_table", "ordering_agreement", "speedup", "paper_data",
]
