"""Formatting and shape comparison of experiment tables."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .experiments import ExperimentTable


def format_table(table: ExperimentTable, *, with_paper: bool = True) -> str:
    """Render an ExperimentTable as fixed-width text (rows mirror the paper)."""
    columns = list(table.columns)
    header = ["benchmark"] + [f"{c} (model)" for c in columns]
    if with_paper:
        header += [f"{c} (paper)" for c in columns]
    widths = [max(18, len(h) + 2) for h in header]
    lines = [table.title, "=" * len(table.title),
             "".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in table.rows:
        cells = [row.label]
        for c in columns:
            value = row.measured.get(c)
            cells.append(_fmt(value))
        if with_paper:
            for c in columns:
                cells.append(_fmt(row.paper.get(c)))
        lines.append("".join(cell.ljust(w) for cell, w in zip(cells, widths)))
    return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "DNC"
    if isinstance(value, float) and math.isnan(value):
        return "DNC"
    return f"{value:.2f}"


def speedup(table: ExperimentTable, baseline: str, candidate: str) -> Dict[str, float]:
    """Per-row speed-up of ``candidate`` over ``baseline`` (>1 means faster)."""
    out = {}
    for row in table.rows:
        base = row.measured.get(baseline)
        cand = row.measured.get(candidate)
        if base and cand and not math.isnan(base) and not math.isnan(cand) and cand > 0:
            out[row.label] = base / cand
    return out


def ordering_agreement(table: ExperimentTable) -> float:
    """Fraction of benchmark rows whose fastest compiler matches the paper's
    fastest compiler (the headline 'shape' check)."""
    agree = 0
    considered = 0
    for row in table.rows:
        paper_vals = {k: v for k, v in row.paper.items()
                      if v is not None and k in row.measured}
        measured_vals = {k: v for k, v in row.measured.items()
                         if not math.isnan(v) and k in paper_vals}
        if len(paper_vals) < 2 or len(measured_vals) < 2:
            continue
        considered += 1
        if min(paper_vals, key=paper_vals.get) == min(measured_vals, key=measured_vals.get):
            agree += 1
    return agree / considered if considered else 1.0


__all__ = ["format_table", "speedup", "ordering_agreement"]
