"""``python -m repro.opt`` — the repository's ``mlir-opt`` analogue.

Takes Fortran source (a file, stdin, a registered workload, or a built-in
demo kernel), runs either a *registered flow* or a *textual pass pipeline*
over it, and prints stage IR, per-pass timings and verification results:

    python -m repro.opt --flow ours --workload jacobi --timing
    python -m repro.opt --pipeline 'builtin.module(canonicalize,cse)'
    python -m repro.opt --flow ours --option vector_width=8 --dump-ir after
    python -m repro.opt --list-flows

Flows come from :mod:`repro.flows`; pipelines use the same mlir-opt syntax
as Listing 1, including op-anchored nesting (``func.func(canonicalize)``)
and typed pass options (``{virtual-vector-size=8}``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

# register every pass before pipelines are parsed
import repro.core  # noqa: F401
import repro.transforms  # noqa: F401
from ..flows import (ENGINES, ExecutionContext, FlowError, available_flows,
                     get_flow)
from ..ir.pass_manager import (IRDumpInstrumentation, PassManager,
                               available_passes, pipeline_settings)
from ..ir.pass_manager import _parse_scalar
from ..ir.printer import print_op
from ..ir.verifier import VerificationError, verify_operation

#: Compiled when no source file and no --workload is given, so that bare
#: invocations like ``python -m repro.opt --pipeline '...'`` run end-to-end.
DEMO_SOURCE = """
subroutine demo_stencil(n)
  implicit none
  integer, intent(in) :: n
  integer :: i
  real(kind=8), dimension(64) :: u, unew
  do i=2, 63
    unew(i) = 0.5d0 * (u(i-1) + u(i+1))
  end do
end subroutine demo_stencil
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.opt",
        description="Run a registered compilation flow or an mlir-opt style "
                    "pass pipeline over Fortran source; print stage IR, "
                    "pass timings and verification results.")
    src = parser.add_argument_group("input")
    src.add_argument("source", nargs="?", metavar="FILE",
                     help="Fortran source file ('-' reads stdin; default: a "
                          "built-in demo kernel)")
    src.add_argument("--workload", metavar="NAME",
                     help="compile a registered workload instead of a file")
    src.add_argument("--workload-arg", action="append", default=[],
                     metavar="K=V",
                     help="workload variant argument (repeatable), e.g. "
                          "openmp=true")

    what = parser.add_argument_group("what to run")
    what.add_argument("--flow", metavar="NAME",
                      help="registered flow to run (default: 'ours' when no "
                           "--pipeline is given; see --list-flows)")
    what.add_argument("--option", action="append", default=[], metavar="K=V",
                      help="flow option (repeatable), validated against the "
                           "flow's options schema, e.g. vector_width=8")
    what.add_argument("--pipeline", metavar="PIPELINE",
                      help="textual pass pipeline in mlir-opt syntax, run "
                           "over the standard-dialect IR")
    what.add_argument("--from", dest="input_stage",
                      choices=("hlfir", "standard"), default="standard",
                      help="IR stage a --pipeline starts from "
                           "(default: standard)")
    what.add_argument("--threads", type=int, default=1, metavar="N",
                      help="execution context: thread count (flows derive "
                           "parallelisation from this)")
    what.add_argument("--gpu", action="store_true",
                      help="execution context: target the GPU lowering")
    what.add_argument("--engine", choices=ENGINES, default="compiled",
                      help="execution context: interpreter engine the "
                           "artifact is built for (affects the service "
                           "cache key; default: compiled)")
    what.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="run func.func-anchored pass nests over up to N "
                           "functions in parallel (default: 1, serial)")
    what.add_argument("--no-incremental", action="store_true",
                      help="disable the per-function stage store: recompile "
                           "every function even if an identical one was "
                           "optimised before in this process")

    out = parser.add_argument_group("output")
    out.add_argument("-o", "--output", metavar="FILE",
                     help="write the final IR to FILE instead of stdout")
    out.add_argument("--timing", action="store_true",
                     help="print the per-pass timing report (wall time + IR "
                          "size delta)")
    out.add_argument("--print-stages", action="store_true",
                     help="print every named stage snapshot, not just the "
                          "final IR")
    out.add_argument("--no-print-ir", action="store_true",
                     help="suppress IR output (timings/verification only)")
    out.add_argument("--dump-ir", choices=("before", "after", "both"),
                     help="dump IR around every pass (to stderr)")
    out.add_argument("--dump-ir-pass", action="append", default=None,
                     metavar="PASS", help="restrict --dump-ir to these passes")
    out.add_argument("--verify-each", action="store_true",
                     help="verify the IR after every pass")
    out.add_argument("--no-verify", action="store_true",
                     help="skip the final verification")

    info = parser.add_argument_group("introspection")
    info.add_argument("--list-flows", action="store_true",
                      help="list registered flows with their options schemas")
    info.add_argument("--list-passes", action="store_true",
                      help="list every registered pass name")

    parser.add_argument("--no-daemon", action="store_true",
                        help="never fetch artifacts from a running "
                             "compilation daemon (daemon use requires "
                             "--workload and --no-verify, and no local-only "
                             "output such as --timing or --dump-ir)")
    return parser


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _parse_assignments(pairs: Sequence[str], what: str) -> Dict[str, Any]:
    """Parse repeated ``k=v`` CLI arguments with pipeline-option typing.

    Each argument is split on its first ``=``; the whole remainder is the
    value (spaces included), typed like a bare pipeline-option token.
    """
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: {what} '{pair}' is not of the form K=V")
        out[key.replace("-", "_")] = _parse_scalar(value)
    return out


class _SourceInput:
    """Duck-typed stand-in for a Workload when compiling raw source text."""

    category = "adhoc"

    def __init__(self, text: str, name: str = "<source>"):
        self._text = text
        self.name = name
        lowered = text.lower()
        self.uses_openmp = "!$omp" in lowered
        self.uses_openacc = "!$acc" in lowered

    def source(self, *, scaled: bool = True, **_) -> str:
        return self._text


def _resolve_input(args) -> Any:
    if args.workload:
        from ..workloads import get_workload
        return get_workload(args.workload,
                            **_parse_assignments(args.workload_arg,
                                                 "--workload-arg"))
    if args.source and args.source != "-":
        with open(args.source) as handle:
            return _SourceInput(handle.read(), name=args.source)
    if args.source == "-":
        return _SourceInput(sys.stdin.read(), name="<stdin>")
    print("// no input given: compiling the built-in demo kernel "
          "(pass a file, '-', or --workload)", file=sys.stderr)
    return _SourceInput(DEMO_SOURCE, name="<demo>")


def _instrumentation(args) -> List[IRDumpInstrumentation]:
    if not args.dump_ir:
        return []
    return [IRDumpInstrumentation(before=args.dump_ir in ("before", "both"),
                                  after=args.dump_ir in ("after", "both"),
                                  only=args.dump_ir_pass)]


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def _verify(module, label: str) -> bool:
    try:
        verify_operation(module)
    except VerificationError as exc:
        print(f"// verification FAILED ({label}): {exc}", file=sys.stderr)
        return False
    print(f"// verification: OK ({label})")
    return True


# ---------------------------------------------------------------------------
# modes
# ---------------------------------------------------------------------------


def _daemon_eligible(args) -> bool:
    """Daemon-served runs must be pure artifact fetches.

    Anything that needs the live module object (final verification, stage
    snapshots, per-pass timing/IR dumps) keeps the in-process path — the
    fallback is silent, so behaviour without a daemon is exactly today's.
    """
    return (not args.no_daemon and args.workload is not None
            and args.no_verify and not args.timing and not args.print_stages
            and not args.verify_each and args.dump_ir is None)


def _run_via_daemon(args, flow, coerced, execution) -> Optional[int]:
    """Serve the run from a compilation daemon; ``None`` means fall back."""
    from ..service import CompileJob, CompileService
    from ..service.client import discover_client

    job = CompileJob(
        flow=flow.name, workload_name=args.workload,
        workload_kwargs=tuple(sorted(_parse_assignments(
            args.workload_arg, "--workload-arg").items())),
        options=coerced, threads=args.threads, gpu=args.gpu,
        engine=args.engine)
    if not CompileService._pool_safe(job):
        return None
    client = discover_client()
    if client is None:
        return None
    try:
        payload, cached = client.execute(job.spec())
    except Exception as exc:
        print(f"// daemon fetch failed ({exc}); compiling in-process",
              file=sys.stderr)
        return None
    finally:
        client.close()
    if not payload["ok"]:
        print(f"error: flow '{flow.name}' failed: {payload['error']}",
              file=sys.stderr)
        return 1
    print(f"// served by compilation daemon at {client.socket_spec}"
          f"{' (cached)' if cached else ''}", file=sys.stderr)
    if not args.no_print_ir:
        _emit(payload["module_text"], args.output)
    if payload.get("pipeline"):
        print(f"// pipeline: {payload['pipeline']}")
    return 0


def _run_flow(args, source) -> int:
    flow = get_flow(args.flow or "ours")
    options = _parse_assignments(args.option, "--option")
    try:
        coerced = flow.schema.coerce(options, strict=True)
    except FlowError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    execution = ExecutionContext(threads=args.threads, gpu=args.gpu,
                                 engine=args.engine)
    if _daemon_eligible(args):
        status = _run_via_daemon(args, flow, coerced, execution)
        if status is not None:
            return status
    from ..service.incremental import get_function_store
    result = flow.run(source, coerced, execution,
                      verify_each=args.verify_each,
                      instrumentation=_instrumentation(args),
                      jobs=args.jobs,
                      function_cache=(None if args.no_incremental
                                      else get_function_store()))
    if result.error is not None:
        print(f"error: flow '{flow.name}' failed: {result.error}",
              file=sys.stderr)
        return 1

    if args.print_stages and not args.no_print_ir:
        chunks = []
        for name, module in result.stages.items():
            if module is None:
                continue
            chunks.append(f"// -----// stage: {name} //----- //")
            chunks.append(print_op(module))
        _emit("\n".join(chunks), args.output)
    elif not args.no_print_ir:
        _emit(print_op(result.module), args.output)

    if result.pipeline:
        print(f"// pipeline: {result.pipeline}")
    if args.timing and result.timing is not None:
        print(result.timing.render())
    ok = True
    if not args.no_verify:
        ok = _verify(result.module, f"flow {flow.name}, final stage")
    return 0 if ok else 1


def _run_pipeline(args, source) -> int:
    from ..flang import FlangCompiler
    from ..core.fir_to_standard import convert_fir_to_standard
    from ..service.incremental import get_function_store

    module = FlangCompiler().lower_to_hlfir(source.source(scaled=True))
    if args.input_stage == "standard":
        module = convert_fir_to_standard(module)
    pm = PassManager.from_pipeline(args.pipeline,
                                   verify_each=args.verify_each)
    for instr in _instrumentation(args):
        pm.add_instrumentation(instr)
    with pipeline_settings(jobs=args.jobs,
                           function_cache=(None if args.no_incremental
                                           else get_function_store())):
        pm.run(module)

    if not args.no_print_ir:
        _emit(print_op(module), args.output)
    print(f"// pipeline: {pm.describe()}")
    if args.timing:
        print(pm.last_report.render())
    ok = True
    if not args.no_verify:
        ok = _verify(module, f"pipeline over {args.input_stage} IR")
    return 0 if ok else 1


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_flows:
        for name in available_flows():
            flow = get_flow(name)
            print(f"{name}\n  {flow.description}\n"
                  f"  options: {flow.schema.describe()}")
        return 0
    if args.list_passes:
        for name in available_passes():
            print(name)
        return 0
    if args.flow and args.pipeline:
        print("error: --flow and --pipeline are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.pipeline and (args.option or args.threads != 1 or args.gpu
                          or args.engine != "compiled"):
        # a raw pipeline has no options schema and no execution context to
        # normalise against — refuse rather than silently drop the flags
        print("error: --option/--threads/--gpu/--engine only apply to --flow "
              "runs, not --pipeline", file=sys.stderr)
        return 2

    try:
        source = _resolve_input(args)
    except (KeyError, OSError) as exc:
        print(f"error: cannot resolve input: {exc}", file=sys.stderr)
        return 2

    try:
        if args.pipeline:
            return _run_pipeline(args, source)
        return _run_flow(args, source)
    except FlowError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


__all__ = ["main", "build_parser", "DEMO_SOURCE"]
