"""Trace-compiling JIT interpreter engine.

The third execution engine (``Interpreter(..., engine="jit")``).  Instead of
executing one closure per operation (the cached-dispatch ``compiled``
engine), every block is translated on first entry into *generated Python
source*: straight-line op sequences are fused into a single function body
with operands bound to locals, ``scf.for`` / ``affine.for`` / ``fir.do_loop``
bodies (and ``scf.if`` arms) are inlined as native ``while`` / ``if``
constructs, statistics counters accumulate in plain integer locals and are
flushed into the per-context :class:`collections.Counter` once per block
exit, and array accesses are emitted as direct indexing expressions.  The
source is ``compile()``/``exec``-ed once and the resulting code object is
re-run on every loop iteration.

Numeric semantics stay centralized: the generated code calls into
:mod:`repro.machine.semantics` for ``cmpi`` / ``cmpf`` and the integer
division family, so all engines share one source of numeric truth;
everything the generator cannot translate (parallel regions, calls, runtime
intrinsics, unstructured control flow) falls back to the exact thunks the
cached-dispatch engine would run, inside the generated function.  The
result is observationally bit-identical to both other engines — printed
output and :class:`~repro.machine.interpreter.ExecutionStats` — which the
conformance oracle and ``tests/machine`` assert on every workload.

Why deferred counter flushing is exact: every statistics bump is an
integer-valued float (``+= 1.0`` or an integer element count), and sums of
integers in float64 are associative below 2**53, so adding ``3.0`` once is
bit-identical to adding ``1.0`` three times — only *touched* categories are
flushed, so the Counter key sets also match.
"""

from __future__ import annotations

import base64
import itertools
import marshal
from collections import OrderedDict
from importlib.util import MAGIC_NUMBER
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ir import types as ir_types
from ..ir.core import Block, Operation, Value
from ..ir.structural_hash import fingerprint_block
from . import semantics
from .interpreter import (_BR_OPS, _COND_BR_OPS, _FLOAT_BINOPS, _INT_BINOPS,
                          _MATH_UNARY, _RETURN_OPS, _YIELD_OPS, _fusable,
                          Interpreter, InterpreterError)
from .loop_patterns import (static_constant as _static_constant,
                            static_trip_count as _static_trips)
from .semantics import (CMPF, CMPI_SIGNED, CMPI_UNSIGNED, as_unsigned,
                        int_ceildiv, int_div, int_floordiv, int_rem, int_width)
from .values import (Cell, ElementPtr, FortranArray, load_element,
                     store_element)

#: loop ops whose single-block bodies are inlined as native ``while`` loops
_INLINE_LOOPS = frozenset({"scf.for", "affine.for", "fir.do_loop"})
#: conditionals inlined as native ``if`` statements
_INLINE_IFS = frozenset({"scf.if", "fir.if"})

#: binary ops emitted as raw operator expressions (semantics identical to the
#: dispatch-table lambdas of the other two engines)
_OPERATOR_FLOAT = {"arith.addf": "+", "arith.subf": "-", "arith.mulf": "*",
                   "arith.divf": "/"}
_OPERATOR_INT = {"arith.addi": "+", "arith.subi": "-", "arith.muli": "*",
                 "arith.shli": "<<", "arith.shrsi": ">>"}
#: integer ops routed through repro.machine.semantics (shared numeric truth)
_SEMANTIC_INT = {"arith.divsi": int_div, "arith.floordivsi": int_floordiv,
                 "arith.ceildivsi": int_ceildiv, "arith.remsi": int_rem}

_ALL_TERMINATORS = _RETURN_OPS | _BR_OPS | _COND_BR_OPS | _YIELD_OPS

_CAST_OPS = frozenset({"arith.index_cast", "arith.sitofp", "arith.fptosi",
                       "arith.extf", "arith.truncf", "arith.extsi",
                       "arith.extui", "arith.trunci", "arith.bitcast"})
_POW_OPS = frozenset({"math.powf", "math.fpowi", "math.ipowi"})
_FMA_OPS = frozenset({"math.fma", "vector.fma", "llvm.intr.fmuladd"})

_SIMPLE_INLINE = (frozenset({
    "arith.constant", "arith.cmpi", "arith.cmpf", "arith.select",
    "arith.negf", "fir.convert", "fir.load", "fir.store", "memref.load",
    "memref.store", "llvm.load", "llvm.store", "affine.load", "affine.store",
    "affine.apply", "fir.array_coor", "hlfir.designate", "math.atan2",
    "fir.box_addr", "fir.box_dims", "fir.coordinate_of", "fir.embox",
    "fir.shape", "fir.shape_shift", "fir.undefined", "fir.absent",
    "fir.zero_bits", "fir.string_lit"})
    | frozenset(_FLOAT_BINOPS) | frozenset(_INT_BINOPS)
    | frozenset(_MATH_UNARY) | _POW_OPS | _FMA_OPS | _CAST_OPS)


def _coor_fusable(op: Operation, follower: Optional[Operation]) -> bool:
    """``fir.coordinate_of`` whose single use is the adjacent load/store:
    the pair runs as one direct flat access (stats-identical: the fused
    emission bumps the same index_arith + load/store pair)."""
    if follower is None or not op.results \
            or op.get_attr("field") is not None:
        return False
    address = op.results[0]
    if len(address.uses) != 1 or address.uses[0].operation is not follower:
        return False
    if follower.name == "fir.load":
        return follower.operands[0] is address
    if follower.name == "fir.store":
        return follower.operands[1] is address \
            and follower.operands[0] is not address
    return False


# ---------------------------------------------------------------------------
# Planning: decide, per op, inline translation vs fallback thunk
# ---------------------------------------------------------------------------


class _Plan:
    """Structured translation plan for one block (plus inlined regions)."""

    __slots__ = ("steps", "inline_ops", "defined", "fallback_defined")

    def __init__(self):
        #: nested step tree; see _plan_ops for the step tuple shapes
        self.steps: List[Tuple] = []
        #: every op handled by generated code (incl. terminators/loops/ifs)
        self.inline_ops: Set[Operation] = set()
        #: values the generated code itself defines (op results, body args)
        self.defined: List[Value] = []
        #: values fallback thunks define (through env, possibly mid-loop)
        self.fallback_defined: List[Value] = []


def _region_block(op: Operation, index: int) -> Optional[Block]:
    if index >= len(op.regions):
        return None
    blocks = op.regions[index].blocks
    return blocks[0] if len(blocks) == 1 else None


def _structured_body(block: Optional[Block]) -> bool:
    """True when ``block`` is straight-line code ending (at most) in a yield:
    the shape the loop/if inliners can translate.  Anything with branches or
    returns falls back to the generic handlers."""
    if block is None:
        return False
    for position, op in enumerate(block.ops):
        if op.name in _RETURN_OPS or op.name in _BR_OPS \
                or op.name in _COND_BR_OPS:
            return False
        if op.name in _YIELD_OPS and position != len(block.ops) - 1:
            return False
    return True


def _can_inline_simple(op: Operation) -> bool:
    name = op.name
    if name not in _SIMPLE_INLINE:
        return False
    if name == "hlfir.designate":
        return op.component is None and not op.triplets
    if name == "fir.coordinate_of":
        return op.get_attr("field") is None
    return True


def _loop_inlineable(op: Operation) -> bool:
    if len(op.regions) != 1 or not _structured_body(_region_block(op, 0)):
        return False
    if op.name in ("scf.for", "fir.do_loop") and len(op.operands) < 3:
        return False
    return True


def _if_inlineable(op: Operation) -> bool:
    then_block = _region_block(op, 0)
    if not _structured_body(then_block):
        return False
    has_else = len(op.regions) > 1 and bool(op.regions[1].blocks)
    else_block = _region_block(op, 1) if has_else else None
    if has_else and not _structured_body(else_block):
        return False
    if op.results:
        # both arms must yield exactly the result values
        if else_block is None:
            return False
        for block in (then_block, else_block):
            term = block.ops[-1] if block.ops else None
            if term is None or term.name not in _YIELD_OPS \
                    or len(term.operands) != len(op.results):
                return False
    return True


def _plan_ops(block: Block, plan: _Plan, *, nested: bool) -> List[Tuple]:
    steps: List[Tuple] = []
    ops = block.ops
    position = 0
    while position < len(ops):
        op = ops[position]
        name = op.name
        if name in _RETURN_OPS:
            plan.inline_ops.add(op)
            steps.append(("return", op))
            return steps
        if name in _BR_OPS:
            plan.inline_ops.add(op)
            steps.append(("br", op))
            return steps
        if name in _COND_BR_OPS:
            plan.inline_ops.add(op)
            steps.append(("condbr", op))
            return steps
        if name in _YIELD_OPS:
            plan.inline_ops.add(op)
            steps.append(("yield", op))
            return steps
        follower = ops[position + 1] if position + 1 < len(ops) else None
        if name in ("fir.array_coor", "hlfir.designate") \
                and _can_inline_simple(op) and _fusable(op, follower):
            plan.inline_ops.add(op)
            plan.inline_ops.add(follower)
            plan.defined.extend(follower.results)
            steps.append(("fused", op, follower))
            position += 2
            continue
        if name == "fir.coordinate_of" and _coor_fusable(op, follower):
            plan.inline_ops.add(op)
            plan.inline_ops.add(follower)
            plan.defined.extend(follower.results)
            steps.append(("fusedcoor", op, follower))
            position += 2
            continue
        if name in _INLINE_LOOPS and _loop_inlineable(op):
            body = op.regions[0].blocks[0]
            plan.inline_ops.add(op)
            plan.defined.extend(op.results)
            plan.defined.extend(body.args)
            body_steps = _plan_ops(body, plan, nested=True)
            steps.append(("loop", op, body_steps))
            position += 1
            continue
        if name in _INLINE_IFS and _if_inlineable(op):
            then_block = _region_block(op, 0)
            has_else = len(op.regions) > 1 and bool(op.regions[1].blocks)
            plan.inline_ops.add(op)
            plan.defined.extend(op.results)
            then_steps = _plan_ops(then_block, plan, nested=True)
            else_steps = _plan_ops(_region_block(op, 1), plan, nested=True) \
                if has_else else None
            steps.append(("if", op, then_steps, else_steps))
            position += 1
            continue
        if _can_inline_simple(op):
            plan.inline_ops.add(op)
            plan.defined.extend(op.results)
            steps.append(("inline", op))
            position += 1
            continue
        plan.fallback_defined.extend(op.results)
        steps.append(("fallback", op))
        position += 1
    return steps


def plan_block(block: Block) -> _Plan:
    plan = _Plan()
    plan.steps = _plan_ops(block, plan, nested=False)
    return plan


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _Emitter:
    """Generates the Python source for one planned block.

    The emitted source and every namespace binding except ``_interp`` /
    ``_stats`` / the fallback thunks are interpreter-independent, so one
    emission can be instantiated for any number of interpreters (see
    :func:`compile_block`'s process-level cache).  Interpreter-specific
    state is rebound per instantiation; fallback ops are recorded as
    ``(name, op)`` pairs and compiled into thunks at instantiation time."""

    def __init__(self, interp: Interpreter, plan: _Plan):
        self.interp = interp
        self.plan = plan
        self.fallback_binds: List[Tuple[str, Operation]] = []
        # values that must live in env: anything the generated code defines
        # that a non-inline op (fallback thunk, nested region, another block)
        # also reads
        inline_ops = plan.inline_ops
        self.env_resident: Set[Value] = {
            value for value in plan.defined
            if any(use.operation not in inline_ops for use in value.uses)}
        self.defined: Set[Value] = set(plan.defined)
        self.fallback_defined: Set[Value] = set(plan.fallback_defined)
        self.inline_ops: Set[Operation] = inline_ops
        self.lines: List[Tuple[int, str]] = []
        self.ind = 1
        self._seq = itertools.count()
        self.ns: Dict[str, object] = {
            "_interp": interp, "_stats": interp.stats,
            "_np": np, "_nda": np.ndarray,
            "_Cell": Cell, "_EPtr": ElementPtr, "_FArr": FortranArray,
            "_ldel": load_element, "_stel": store_element,
            "_int": int, "_float": float, "_bool": bool,
            "_IErr": InterpreterError,
            "_boxt": (Cell, FortranArray, ElementPtr, np.ndarray),
        }
        self._bound: Dict[int, str] = {}     # id(obj) -> ns name
        self.names: Dict[Value, str] = {}    # value -> local variable
        self.keys: Dict[Value, str] = {}     # value -> bound env-key name
        self.counters: Dict[str, str] = {}   # category -> local variable
        self.pending: Dict[str, int] = {}    # category -> deferred increments
        self.pending_total = 0

    # -- low-level helpers ---------------------------------------------------
    def w(self, text: str) -> None:
        self.lines.append((self.ind, text))

    def tmp(self) -> str:
        return f"x{next(self._seq)}"

    def bind(self, obj, prefix: str = "g") -> str:
        name = self._bound.get(id(obj))
        if name is None:
            name = f"_{prefix}{next(self._seq)}"
            self._bound[id(obj)] = name
            self.ns[name] = obj
        return name

    def key(self, value: Value) -> str:
        name = self.keys.get(value)
        if name is None:
            name = self.keys[value] = self.bind(value, "k")
        return name

    # -- value access --------------------------------------------------------
    def read(self, value: Value) -> str:
        name = self.names.get(value)
        if name is not None:
            return name
        return f"env[{self.key(value)}]"

    def read_get(self, value: Value) -> str:
        """Terminator payload read: ``env.get`` tolerance like the thunks."""
        name = self.names.get(value)
        if name is not None:
            return name
        return f"env.get({self.key(value)})"

    def operand_var(self, value: Value) -> str:
        """A *named* local holding the operand (for multi-use emissions)."""
        name = self.names.get(value)
        if name is not None:
            return name
        var = self.tmp()
        self.w(f"{var} = env[{self.key(value)}]")
        return var

    def result_var(self, value: Value) -> str:
        """The variable an op result is computed into (local preferred)."""
        if value in self.env_resident or value not in self.defined:
            return self.tmp()
        name = self.names.get(value)
        if name is None:
            name = self.names[value] = f"t{next(self._seq)}"
        return name

    def store_result(self, value: Value, var: str) -> None:
        if value in self.env_resident or value not in self.defined:
            self.w(f"env[{self.key(value)}] = {var}")

    def compute(self, value: Value, expr: str) -> str:
        var = self.result_var(value)
        self.w(f"{var} = {expr}")
        self.store_result(value, var)
        return var

    # -- statistics ----------------------------------------------------------
    def counter(self, category: str) -> str:
        var = self.counters.get(category)
        if var is None:
            var = self.counters[category] = f"_c_{category}"
        return var

    def bump(self, category: str, amount: int = 1) -> None:
        self.counter(category)
        self.pending[category] = self.pending.get(category, 0) + amount
        self.pending_total += amount

    def bump_total(self, amount: int = 1) -> None:
        self.pending_total += amount

    def dyncat(self, var: str, vector_category: str, scalar_category: str) -> None:
        """Runtime ndarray-vs-scalar category choice (matches the thunks).

        ``type(x) is ndarray`` is exact here: the interpreter's value model
        only ever produces plain ndarrays (views/ufunc results), never
        subclasses, so this matches the thunks' ``isinstance`` bit for bit.
        """
        vec = self.counter(vector_category)
        scalar = self.counter(scalar_category)
        self.w(f"if type({var}) is _nda and {var}.size > 1:")
        self.w(f"    {vec} += 1")
        self.w("else:")
        self.w(f"    {scalar} += 1")

    def flush_pending(self) -> None:
        for category, amount in self.pending.items():
            self.w(f"{self.counter(category)} += {amount}")
        if self.pending_total:
            self.w(f"_t += {self.pending_total}")
        self.pending.clear()
        self.pending_total = 0

    def flush_all(self) -> None:
        """Move every live counter into the interpreter's stats objects.

        Counters cannot be gated on ``_t``: the in-loop stride check resets
        ``_t`` (total) without flushing the per-category locals, so a unit
        can reach its exit with ``_t == 0`` but nonzero category counters.
        """
        self.flush_pending()
        if self.counters:
            self.w("_cts = _interp._ctx_counts")
        for category in self.counters:
            var = self.counters[category]
            self.w(f"if {var}:")
            self.w(f"    _cts[{category!r}] += {var} * 1.0")
            self.w(f"    {var} = 0")
        self.w("if _t:")
        self.w("    _stats.total_ops += _t")
        self.w("    _t = 0")

    def emit_stride_check(self) -> None:
        """Per-iteration execution-limit metering inside inlined loops.

        Only ``total_ops`` needs to be current for the limit check; the
        per-category counters keep accumulating in locals until block exit
        (their Counter sums are order-independent integer adds).
        """
        self.w(f"if _t > {self.interp._check_stride}:")
        self.w("    _stats.total_ops += _t")
        self.w("    _t = 0")
        self.w("    _interp._check_limit()")

    # ------------------------------------------------------------------ steps
    def emit_steps(self, steps: Sequence[Tuple]) -> None:
        for step in steps:
            kind = step[0]
            if kind == "inline":
                self.emit_inline(step[1])
            elif kind == "fused":
                self.emit_fused(step[1], step[2])
            elif kind == "fusedcoor":
                self.emit_fused_coordinate(step[1], step[2])
            elif kind == "fallback":
                self.emit_fallback(step[1])
            elif kind == "loop":
                self.emit_loop(step[1], step[2])
            elif kind == "if":
                self.emit_if(step[1], step[2], step[3])
            elif kind == "return":
                self.emit_return(step[1])
            elif kind == "br":
                self.emit_br(step[1])
            elif kind == "condbr":
                self.emit_condbr(step[1])
            elif kind == "yield":
                self.emit_root_yield(step[1])
            else:  # pragma: no cover - planner emits only the kinds above
                raise InterpreterError(f"unknown jit step {kind}")

    # -- terminators ---------------------------------------------------------
    def emit_return(self, op: Operation) -> None:
        self.flush_all()
        payload = ", ".join(self.read_get(v) for v in op.operands)
        self.w(f"return 'return', [{payload}]")

    def emit_br(self, op: Operation) -> None:
        self.bump("branch")
        self.flush_all()
        succ = self.bind(op.successors[0], "b")
        payload = ", ".join(self.read_get(v) for v in op.operands)
        self.w(f"return 'branch', ({succ}, [{payload}])")

    def emit_condbr(self, op: Operation) -> None:
        self.bump("branch")
        self.flush_all()
        n_attr = op.get_attr("num_true_operands")
        n = n_attr.value if n_attr is not None else 0
        true_vals = op.operands[1:1 + n]
        false_vals = op.operands[1 + n:]
        true_succ = self.bind(op.successors[0], "b")
        false_succ = self.bind(op.successors[1], "b")
        self.w(f"if {self.read_get(op.operands[0])}:")
        payload = ", ".join(self.read_get(v) for v in true_vals)
        self.w(f"    return 'branch', ({true_succ}, [{payload}])")
        payload = ", ".join(self.read_get(v) for v in false_vals)
        self.w(f"return 'branch', ({false_succ}, [{payload}])")

    def emit_root_yield(self, op: Operation) -> None:
        self.flush_all()
        payload = ", ".join(self.read_get(v) for v in op.operands)
        self.w(f"return 'yield', ({self.bind(op, 'o')}, [{payload}])")

    def emit_fallthrough(self) -> None:
        self.flush_all()
        self.w("return 'yield', (None, [])")

    # -- fallback ------------------------------------------------------------
    def emit_fallback(self, op: Operation) -> None:
        name = f"_f{next(self._seq)}"
        self.fallback_binds.append((name, op))
        self.w(f"{name}(env)")

    # -- straight-line ops ---------------------------------------------------
    def emit_inline(self, op: Operation) -> None:
        name = op.name
        res = op.results[0] if op.results else None
        if name == "arith.constant":
            self.compute(res, self.bind(op.get_attr("value").value, "c"))
            return
        if name in _FLOAT_BINOPS:
            a, b = self.read(op.operands[0]), self.read(op.operands[1])
            symbol = _OPERATOR_FLOAT.get(name)
            if symbol is not None:
                expr = f"{a} {symbol} {b}"
            else:
                expr = f"{self.bind(_FLOAT_BINOPS[name])}({a}, {b})"
            var = self.compute(res, expr)
            self.bump_total()
            self.dyncat(var, "vector_float", "float_arith")
            return
        if name in _INT_BINOPS:
            a, b = self.read(op.operands[0]), self.read(op.operands[1])
            symbol = _OPERATOR_INT.get(name)
            if symbol is not None:
                expr = f"{a} {symbol} {b}"
            elif name in _SEMANTIC_INT:
                expr = f"{self.bind(_SEMANTIC_INT[name])}({a}, {b})"
            else:
                expr = f"{self.bind(_INT_BINOPS[name])}({a}, {b})"
            var = self.compute(res, expr)
            scalar_cat = "index_arith" if isinstance(
                op.operands[0].type, ir_types.IndexType) else "int_arith"
            self.bump_total()
            self.dyncat(var, "vector_int", scalar_cat)
            return
        if name in _MATH_UNARY:
            a = self.operand_var(op.operands[0])
            self.compute(res, f"{self.bind(_MATH_UNARY[name])}({a})")
            self.bump_total()
            self.dyncat(a, "vector_float", "float_math")
            return
        if name in _POW_OPS:
            a = self.operand_var(op.operands[0])
            self.compute(res, f"{a} ** {self.read(op.operands[1])}")
            self.bump_total()
            self.dyncat(a, "vector_float", "float_math")
            return
        if name in _FMA_OPS:
            a = self.operand_var(op.operands[0])
            self.compute(res, f"{a} * {self.read(op.operands[1])} + "
                              f"{self.read(op.operands[2])}")
            self.bump_total()
            self.dyncat(a, "vector_float", "float_fma")
            return
        if name == "math.atan2":
            a = self.operand_var(op.operands[0])
            arctan2 = self.bind(np.arctan2)
            self.compute(res, f"{arctan2}({a}, {self.read(op.operands[1])})")
            self.bump_total()
            self.dyncat(a, "vector_float", "float_math")
            return
        if name == "arith.cmpi":
            self._emit_cmpi(op)
            return
        if name == "arith.cmpf":
            fn = self.bind(CMPF[op.get_attr("predicate").value])
            self.compute(res, f"{fn}({self.read(op.operands[0])}, "
                              f"{self.read(op.operands[1])})")
            self.bump("cmp")
            return
        if name == "arith.select":
            cond, a, b = (self.read(v) for v in op.operands)
            self.compute(res, f"{a} if {cond} else {b}")
            self.bump("int_arith")
            return
        if name == "arith.negf":
            a = self.operand_var(op.operands[0])
            self.compute(res, f"-{a}")
            self.bump_total()
            self.dyncat(a, "vector_float", "float_arith")
            return
        if name in _CAST_OPS:
            self._emit_cast(op)
            return
        if name == "fir.convert":
            self._emit_fir_convert(op)
            return
        if name == "fir.load":
            self._emit_fir_load(op)
            return
        if name == "fir.store":
            self._emit_fir_store(op)
            return
        if name in ("memref.load", "memref.store"):
            self._emit_memref_access(op)
            return
        if name == "llvm.load":
            src = self.operand_var(op.operands[0])
            self.compute(res, f"{src}.value if type({src}) is _Cell else {src}")
            self.bump("load")
            return
        if name == "llvm.store":
            dest = self.operand_var(op.operands[1])
            self.w(f"if type({dest}) is _Cell:")
            self.w(f"    {dest}.value = {self.read(op.operands[0])}")
            self.bump("store")
            return
        if name in ("affine.load", "affine.store", "affine.apply"):
            self._emit_affine(op)
            return
        if name == "fir.array_coor":
            indices = ", ".join(f"_int({self.read(v)})" for v in op.indices)
            self.compute(res, f"_EPtr({self.read(op.memref)}, "
                              f"indices=({indices}{',' if indices else ''}))")
            self.bump("index_arith")
            return
        if name == "hlfir.designate":
            base = self.operand_var(op.memref)
            unwrapped = self.tmp()
            self.w(f"{unwrapped} = {base}.value "
                   f"if type({base}) is _Cell else {base}")
            indices = ", ".join(f"_int({self.read(v)})" for v in op.indices)
            self.compute(res, f"_EPtr({unwrapped}, "
                              f"indices=({indices}{',' if indices else ''}))")
            self.bump("index_arith")
            return
        if name == "fir.box_addr":
            self.compute(res, self.read(op.operands[0]))
            self.bump("load")
            return
        if name == "fir.box_dims":
            self._emit_fir_box_dims(op)
            return
        if name == "fir.coordinate_of":
            self._emit_fir_coordinate_of(op)
            return
        if name == "fir.embox":
            self.compute(res, self.read(op.operands[0]))
            return
        if name in ("fir.shape", "fir.shape_shift"):
            items = ", ".join(f"_int({self.read(v)})" for v in op.operands)
            self.compute(res, f"({items}{',' if items else ''})")
            return
        if name in ("fir.undefined", "fir.absent", "fir.zero_bits"):
            self.compute(res, "0")
            return
        if name == "fir.string_lit":
            self.compute(res, self.bind(op.get_attr("value").value, "c"))
            return
        raise InterpreterError(
            f"jit planner marked {name} inline without an emitter")

    def _emit_fir_box_dims(self, op: Operation) -> None:
        box = self.operand_var(op.operands[0])
        dim = self.tmp()
        self.w(f"{dim} = _int({self.read(op.operands[1])})")
        shape = self.tmp()
        self.w(f"{shape} = {box}.shape "
               f"if isinstance({box}, (_FArr, _nda)) else (1,)")
        self.compute(op.results[0], "1")
        self.compute(op.results[1],
                     f"_int({shape}[{dim}]) if {dim} < len({shape}) else 1")
        self.compute(op.results[2], "1")
        self.bump("load")

    def _emit_fir_coordinate_of(self, op: Operation) -> None:
        base = self.operand_var(op.operands[0])
        flat = self.tmp()
        if len(op.operands) > 1:
            self.w(f"{flat} = _int({self.read(op.operands[1])})")
        else:
            self.w(f"{flat} = 0")
        var = self.result_var(op.results[0])
        self.w(f"if type({base}) is _FArr or type({base}) is _nda:")
        self.w(f"    {var} = _EPtr({base}, flat={flat})")
        self.w(f"elif type({base}) is _Cell:")
        self.w(f"    {var} = {base}")
        self.w("else:")
        self.w("    raise _IErr('fir.coordinate_of on a non-array value')")
        self.store_result(op.results[0], var)
        self.bump("index_arith")

    def _emit_cmpi(self, op: Operation) -> None:
        predicate = op.get_attr("predicate").value
        a, b = self.read(op.operands[0]), self.read(op.operands[1])
        signed = CMPI_SIGNED.get(predicate)
        if signed is not None:
            expr = f"{self.bind(signed)}({a}, {b})"
        else:
            width = int_width(op.operands[0].type)
            unsigned = self.bind(CMPI_UNSIGNED[predicate])
            reinterpret = self.bind(as_unsigned)
            expr = (f"{unsigned}({reinterpret}({a}, {width}), "
                    f"{reinterpret}({b}, {width}))")
        self.compute(op.results[0], expr)
        self.bump("cmp")

    def _emit_cast(self, op: Operation) -> None:
        target = op.results[0].type
        a = self.read(op.operands[0])
        if isinstance(target, ir_types.FloatType):
            expr = f"_float({a})"
        elif isinstance(target, ir_types.IntegerType) and target.width == 1:
            expr = f"_bool({a})"
        elif isinstance(target, (ir_types.IntegerType, ir_types.IndexType)):
            expr = f"_int({a})"
        else:
            expr = a
        self.compute(op.results[0], expr)
        self.bump("cast")

    def _emit_fir_convert(self, op: Operation) -> None:
        target = op.results[0].type
        if isinstance(target, ir_types.FloatType):
            convert, fast = "_float", "float"
        elif isinstance(target, (ir_types.IntegerType, ir_types.IndexType)):
            convert, fast = "_int", "int"
        else:
            convert = fast = None
        a = self.operand_var(op.operands[0])
        if convert is None:
            self.compute(op.results[0], a)
        else:
            # fast path: an exact int/float converts to itself, so the
            # common scalar case skips the box-type isinstance entirely
            var = self.result_var(op.results[0])
            self.w(f"if type({a}) is {fast}:")
            self.w(f"    {var} = {a}")
            self.w(f"elif isinstance({a}, _boxt):")
            self.w(f"    {var} = {a}")
            self.w("else:")
            self.w(f"    {var} = {convert}({a})")
            self.store_result(op.results[0], var)
        self.bump("cast")

    def _emit_fir_load(self, op: Operation) -> None:
        src = self.operand_var(op.operands[0])
        var = self.result_var(op.results[0])
        self.w(f"if type({src}) is _Cell:")
        self.w(f"    {var} = {src}.value")
        self.w(f"elif type({src}) is _EPtr:")
        self.w(f"    {var} = {src}.load()")
        self.w("else:")
        self.w(f"    {var} = {src}")
        self.store_result(op.results[0], var)
        self.bump("load")

    def _emit_fir_store(self, op: Operation) -> None:
        value = self.read(op.operands[0])
        dest = self.operand_var(op.operands[1])
        self.w(f"if type({dest}) is _Cell:")
        self.w(f"    {dest}.value = {value}")
        self.w(f"elif type({dest}) is _EPtr:")
        self.w(f"    {dest}.store({value})")
        self.w("else:")
        self.w("    raise _IErr('fir.store destination is not a "
               "storage location')")
        self.bump("store")

    def _emit_memref_access(self, op: Operation) -> None:
        load = op.name == "memref.load"
        mem_index = 0 if load else 1
        mem = self.operand_var(op.operands[mem_index])
        index_vals = op.operands[mem_index + 1:]
        subscript = ", ".join(f"_int({self.read(v)})" for v in index_vals)
        element = f"{mem}[{subscript}]" if index_vals else f"{mem}[()]"
        if load:
            var = self.result_var(op.results[0])
            self.w(f"if type({mem}) is _Cell:")
            self.w(f"    {var} = {mem}.value")
            self.w("else:")
            self.w(f"    {var} = {element}")
            self.store_result(op.results[0], var)
            self.bump("load")
        else:
            value = self.read(op.operands[0])
            self.w(f"if type({mem}) is _Cell:")
            self.w(f"    {mem}.value = {value}")
            self.w("else:")
            self.w(f"    {element} = {value}")
            self.bump("store")

    def _emit_affine(self, op: Operation) -> None:
        amap = self.bind(op.get_attr("map"), "m")
        if op.name == "affine.apply":
            operands = ", ".join(f"_int({self.read(v)})" for v in op.operands)
            self.compute(op.results[0], f"{amap}.evaluate([{operands}])[0]")
            self.bump("index_arith")
            return
        load = op.name == "affine.load"
        mem_index = 0 if load else 1
        mem = self.operand_var(op.operands[mem_index])
        operands = ", ".join(f"_int({self.read(v)})"
                             for v in op.operands[mem_index + 1:])
        indices = self.tmp()
        self.w(f"{indices} = {amap}.evaluate([{operands}])")
        n_results = len(op.get_attr("map").results)
        element = f"{mem}[tuple({indices})]" if n_results else f"{mem}[()]"
        if load:
            var = self.result_var(op.results[0])
            self.w(f"if type({mem}) is _Cell:")
            self.w(f"    {var} = {mem}.value")
            self.w("else:")
            self.w(f"    {var} = {element}")
            self.store_result(op.results[0], var)
            self.bump("load")
        else:
            value = self.read(op.operands[0])
            self.w(f"if type({mem}) is _Cell:")
            self.w(f"    {mem}.value = {value}")
            self.w("else:")
            self.w(f"    {element} = {value}")
            self.bump("store")

    def emit_fused(self, op: Operation, follower: Operation) -> None:
        """Address computation + its single consuming load/store, with the
        intermediate ElementPtr skipped (same as the compiled engine)."""
        base = self.operand_var(op.operands[0])
        if op.name == "hlfir.designate":
            unwrapped = self.tmp()
            self.w(f"{unwrapped} = {base}.value "
                   f"if type({base}) is _Cell else {base}")
            base = unwrapped
        indices = ", ".join(f"_int({self.read(v)})" for v in op.indices)
        index_tuple = f"({indices}{',' if indices else ''})"
        self.bump("index_arith")
        if follower.name == "fir.load":
            self.compute(follower.results[0], f"_ldel({base}, {index_tuple})")
            self.bump("load")
        else:
            value = self.read(follower.operands[0])
            self.w(f"_stel({base}, {index_tuple}, {value})")
            self.bump("store")

    def emit_fused_coordinate(self, op: Operation,
                              follower: Operation) -> None:
        """``fir.coordinate_of`` + its single load/store as one direct flat
        access (the ElementPtr the pair would route through is skipped)."""
        base = self.operand_var(op.operands[0])
        flat = self.tmp()
        if len(op.operands) > 1:
            self.w(f"{flat} = _int({self.read(op.operands[1])})")
        else:
            self.w(f"{flat} = 0")
        self.bump("index_arith")
        if follower.name == "fir.load":
            var = self.result_var(follower.results[0])
            self.w(f"if type({base}) is _FArr:")
            self.w(f"    {var} = {base}.data[{flat}]")
            self.w(f"elif type({base}) is _nda:")
            self.w(f"    {var} = {base}.reshape(-1)[{flat}]")
            self.w(f"elif type({base}) is _Cell:")
            self.w(f"    {var} = {base}.value")
            self.w("else:")
            self.w("    raise _IErr('fir.coordinate_of on a non-array value')")
            self.store_result(follower.results[0], var)
            self.bump("load")
        else:
            value = self.read(follower.operands[0])
            self.w(f"if type({base}) is _FArr:")
            self.w(f"    {base}.data[{flat}] = {value}")
            self.w(f"elif type({base}) is _nda:")
            self.w(f"    {base}.reshape(-1)[{flat}] = {value}")
            self.w(f"elif type({base}) is _Cell:")
            self.w(f"    {base}.value = {value}")
            self.w("else:")
            self.w("    raise _IErr('fir.coordinate_of on a non-array value')")
            self.bump("store")

    # -- structured control flow ---------------------------------------------
    def _collect_invariant_reads(self, steps: Sequence[Tuple],
                                 out: List[Value]) -> None:
        """Values the generated code will read inside ``steps`` that are
        defined outside this unit entirely — safe to hoist into one env read
        before the loop (SSA dominance guarantees they are bound by then)."""

        def note(value: Value) -> None:
            if value in self.defined or value in self.names \
                    or value in self.fallback_defined or value in out:
                return
            defining_op = getattr(value, "op", None)
            if defining_op is not None and defining_op in self.inline_ops:
                return  # fused-away address: never materialized anywhere
            out.append(value)

        for step in steps:
            kind = step[0]
            if kind == "inline":
                for operand in step[1].operands:
                    note(operand)
            elif kind in ("fused", "fusedcoor"):
                for operand in step[1].operands:
                    note(operand)
                for operand in step[2].operands:
                    note(operand)
            elif kind == "loop":
                for operand in step[1].operands:
                    note(operand)
                self._collect_invariant_reads(step[2], out)
            elif kind == "if":
                note(step[1].operands[0])
                self._collect_invariant_reads(step[2], out)
                if step[3] is not None:
                    self._collect_invariant_reads(step[3], out)
            elif kind == "yield":
                for operand in step[1].operands:
                    note(operand)
            # fallback steps read through env by design: not hoisted

    def _hoist_invariants(self, body_steps: Sequence[Tuple]) -> None:
        invariants: List[Value] = []
        self._collect_invariant_reads(body_steps, invariants)
        for value in invariants:
            var = self.tmp()
            self.w(f"{var} = env[{self.key(value)}]")
            self.names[value] = var

    def _bind_loop_arg(self, arg: Value, var: str) -> None:
        """Expose a loop body argument: as a local, and through env when a
        fallback op (or nested non-inlined region) also reads it."""
        self.names[arg] = var
        if arg in self.env_resident:
            self.w(f"env[{self.key(arg)}] = {var}")

    def _assign_loop_results(self, op: Operation, carried: List[str],
                             prefix: Sequence[str] = ()) -> None:
        values = list(prefix) + carried
        for res, var in zip(op.results, values):
            if res in self.env_resident:
                self.w(f"env[{self.key(res)}] = {var}")
            else:
                self.names[res] = var

    def _emit_loop_body(self, op: Operation, body: Block,
                        body_steps: Sequence[Tuple],
                        carried: List[str], iv_var: str) -> None:
        """Shared per-iteration emission: arg binding, body, yield, check."""
        self.bump("loop_iter")
        self._bind_loop_arg(body.args[0], iv_var)
        for arg, var in zip(body.args[1:], carried):
            self._bind_loop_arg(arg, var)
        terminator = body_steps[-1] if body_steps \
            and body_steps[-1][0] == "yield" else None
        self.emit_steps(body_steps[:-1] if terminator else body_steps)
        if terminator is not None and terminator[1].operands and carried:
            yielded = terminator[1].operands
            targets = ", ".join(carried[:len(yielded)])
            exprs = ", ".join(self.read(v) for v in yielded)
            self.w(f"{targets} = {exprs}")
        self.flush_pending()
        self.emit_stride_check()

    def emit_loop(self, op: Operation, body_steps: Sequence[Tuple]) -> None:
        self.flush_pending()
        self._hoist_invariants(body_steps)
        body = op.regions[0].blocks[0]
        if op.name == "affine.for":
            lower_map = self.bind(op.lower_bound_map, "m")
            upper_map = self.bind(op.upper_bound_map, "m")
            lower_ops = ", ".join(f"_int({self.read(v)})"
                                  for v in op.lower_operands)
            upper_ops = ", ".join(f"_int({self.read(v)})"
                                  for v in op.upper_operands)
            lo, hi = self.tmp(), self.tmp()
            self.w(f"{lo} = {lower_map}.evaluate([{lower_ops}])[0]")
            self.w(f"{hi} = {upper_map}.evaluate([{upper_ops}])[0]")
            step = op.step_value
            inits = op.iter_args
        else:
            lo, hi, st = self.tmp(), self.tmp(), self.tmp()
            self.w(f"{lo} = _int({self.read(op.operands[0])})")
            self.w(f"{hi} = _int({self.read(op.operands[1])})")
            self.w(f"{st} = _int({self.read(op.operands[2])})")
            inits = op.operands[3:]
        carried = []
        for init in inits:
            var = self.tmp()
            self.w(f"{var} = {self.read(init)}")
            carried.append(var)
        iv = self.tmp()
        self.w(f"{iv} = {lo}")

        if op.name == "scf.for":
            self.w(f"while {iv} < {hi}:")
            self.ind += 1
            self._emit_loop_body(op, body, body_steps, carried, iv)
            self.w(f"if {st} <= 0:")
            self.w("    break")
            self.w(f"{iv} += {st}")
            self.ind -= 1
            self._assign_loop_results(op, carried)
        elif op.name == "affine.for":
            self.w(f"while {iv} < {hi}:")
            self.ind += 1
            self._emit_loop_body(op, body, body_steps, carried, iv)
            self.w(f"{iv} += {step}")
            self.ind -= 1
            self._assign_loop_results(op, carried)
        else:  # fir.do_loop: inclusive bounds, direction from the step sign
            static_step = _static_constant(op.operands[2])
            if static_step is not None and static_step != 0:
                # sign known at jit-compile time: emit one specialized loop
                condition = f"{iv} <= {hi}" if static_step > 0 \
                    else f"{iv} >= {hi}"
            else:
                direction = self.tmp()
                self.w(f"if {st} == 0:")
                self.w(f"    {st} = 1")
                self.w(f"{direction} = {st} > 0")
                condition = f"({iv} <= {hi}) if {direction} " \
                            f"else ({iv} >= {hi})"
            self.w(f"while {condition}:")
            self.ind += 1
            self._emit_loop_body(op, body, body_steps, carried, iv)
            self.w(f"{iv} += {st}")
            self.ind -= 1
            self._assign_loop_results(op, carried, prefix=[iv])

    def emit_if(self, op: Operation, then_steps: Sequence[Tuple],
                else_steps: Optional[Sequence[Tuple]]) -> None:
        self.bump("branch")
        self.flush_pending()
        result_vars = [self.result_var(res) for res in op.results]

        def emit_arm(steps: Sequence[Tuple]) -> None:
            # locals registered inside the arm (hoisted preheader reads,
            # inlined-loop args/results) are only assigned when this arm
            # executes — they must not leak into code emitted after the if
            saved_names = dict(self.names)
            terminator = steps[-1] if steps and steps[-1][0] == "yield" \
                else None
            self.emit_steps(steps[:-1] if terminator else steps)
            if result_vars and terminator is not None:
                targets = ", ".join(result_vars)
                exprs = ", ".join(self.read(v)
                                  for v in terminator[1].operands)
                self.w(f"{targets} = {exprs}")
            self.flush_pending()
            if len(self.lines) == arm_start:
                self.w("pass")
            self.names = saved_names

        self.w(f"if {self.read(op.operands[0])}:")
        self.ind += 1
        arm_start = len(self.lines)
        emit_arm(then_steps)
        self.ind -= 1
        if else_steps is not None or result_vars:
            self.w("else:")
            self.ind += 1
            arm_start = len(self.lines)
            emit_arm(else_steps or [])
            self.ind -= 1
        for res, var in zip(op.results, result_vars):
            self.store_result(res, var)

    # ------------------------------------------------------------------ build
    def build(self) -> Tuple[str, Dict[str, object]]:
        self.emit_steps(self.plan.steps)
        terminal_kinds = {"return", "br", "condbr", "yield"}
        if not self.plan.steps or self.plan.steps[-1][0] not in terminal_kinds:
            self.emit_fallthrough()
        body = self.lines
        header: List[Tuple[int, str]] = [(0, "def _jit_block(env):"), (1, "_t = 0")]
        header.extend((1, f"{var} = 0") for var in self.counters.values())
        source = "\n".join("    " * indent + text
                           for indent, text in header + body)
        return source, self.ns


# ---------------------------------------------------------------------------
# Engine entry point: the tiered, persistent translation cache
# ---------------------------------------------------------------------------


#: Version of the translation format: the emitted source shape, the payload
#: layout stored on disk, and the meaning of the fingerprint salt.  Bump
#: whenever :class:`_Emitter` changes its output for the same input block —
#: every persisted translation then misses cleanly.
JIT_FORMAT_VERSION = 1


class _Translation:
    """One process-cached translation, addressed by structural fingerprint.

    ``code``/``nops``/``source`` are *structure-portable*: any block with
    the same fingerprint executes the same code object.  ``template`` and
    ``fallback_binds`` are not — the emitter binds live objects (``Value``
    env keys, successor ``Block``s, ops backing fallback thunks) into the
    namespace, so they are valid only for the exact block object they were
    planned against.  ``block`` records that object; a fingerprint hit from
    a *different* block object re-plans to rebuild the live bindings, then
    reuses ``code`` when the regenerated source matches."""

    __slots__ = ("code", "nops", "source", "block", "template",
                 "fallback_binds")

    def __init__(self, code, nops, source, block, template, fallback_binds):
        self.code = code
        self.nops = nops
        self.source = source
        self.block = block
        self.template = template
        self.fallback_binds = fallback_binds


#: process-level translation cache: structural fingerprint (see
#: :func:`translation_key`) -> :class:`_Translation`.  The expensive work —
#: planning, source emission, ``compile()`` — happens once per block
#: *structure* per process; every further interpreter only copies the
#: namespace, rebinds its own ``_interp``/``_stats``/fallback thunks and
#: ``exec``s the cached code object.  Ordered for LRU eviction: overflow
#: evicts the single least-recently-used entry, never the whole cache.
_CODE_CACHE: "OrderedDict[str, _Translation]" = OrderedDict()
_CODE_CACHE_MAX = 4096

#: Optional persistent tier (installed by the service layer): an object
#: with ``lookup(key) -> Optional[dict]``, ``store(key, payload)`` and
#: ``contains(key) -> bool``.  ``None`` keeps the cache process-local.
_TRANSLATION_STORE = None

#: Monotonic process-wide counters over :func:`_translation_for` outcomes.
_COUNTER_FIELDS = ("memory_hits", "disk_hits", "misses", "stores")
_counters = dict.fromkeys(_COUNTER_FIELDS, 0)


def set_translation_store(store) -> None:
    """Install (or with ``None`` remove) the persistent translation tier."""
    global _TRANSLATION_STORE
    _TRANSLATION_STORE = store


def get_translation_store():
    return _TRANSLATION_STORE


def translation_counters() -> Dict[str, float]:
    """Translation-cache traffic: raw counters plus derived rates."""
    snapshot = dict(_counters)
    return _derive_counters(snapshot)


def snapshot_translation_counters() -> Dict[str, int]:
    return dict(_counters)


def translation_counters_delta(before: Dict[str, int]) -> Dict[str, float]:
    """Traffic since ``before`` (a :func:`snapshot_translation_counters`)."""
    delta = {field: _counters[field] - before.get(field, 0)
             for field in _COUNTER_FIELDS}
    return _derive_counters(delta)


def _derive_counters(raw: Dict[str, int]) -> Dict[str, float]:
    hits = raw["memory_hits"] + raw["disk_hits"]
    lookups = hits + raw["misses"]
    raw["hits"] = hits
    raw["lookups"] = lookups
    raw["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
    return raw


def clear_translation_cache() -> None:
    """Drop every in-process translation (tests simulate a fresh process);
    the persistent tier and the counters are left untouched."""
    _CODE_CACHE.clear()
    _KEY_MEMO.clear()


#: (block id, check stride) -> (block, semantics version, fingerprint).
#: Fingerprinting walks the whole block; a process shared by many short
#: interpreter instances (the bench's steady state, the daemon) would
#: otherwise re-fingerprint every block once per instance.  The stored
#: block reference both validates the id (``is`` check — a recycled id can
#: never alias while the memo holds the old block alive) and ages out via
#: LRU exactly like the translations themselves.
_KEY_MEMO: "OrderedDict[Tuple[int, int], Tuple[Block, int, str]]" = \
    OrderedDict()
_KEY_MEMO_MAX = 8192


def translation_key(block: Block, check_stride: int) -> str:
    """Stable cross-process address of ``block``'s translation.

    A structural fingerprint (:func:`fingerprint_block`) salted with the
    translation-format version, the numeric-semantics version and the
    check stride the generated source hard-codes into its execution-limit
    checks.  Unlike the block's ``_uid`` — reused after unpickling and
    meaningless across processes — the fingerprint is identical for every
    rebuild of the same block, and distinct for structurally different
    blocks even when their uids collide."""
    sem_version = semantics.SEMANTICS_VERSION
    memo_key = (id(block), check_stride)
    cached = _KEY_MEMO.get(memo_key)
    if cached is not None and cached[0] is block and cached[1] == sem_version:
        _KEY_MEMO.move_to_end(memo_key)
        return cached[2]
    salt = (f"jit:v{JIT_FORMAT_VERSION}"
            f":sem{sem_version}"
            f":stride{check_stride}")
    key = fingerprint_block(block, salt=salt)
    if memo_key not in _KEY_MEMO and len(_KEY_MEMO) >= _KEY_MEMO_MAX:
        _KEY_MEMO.popitem(last=False)
    _KEY_MEMO[memo_key] = (block, sem_version, key)
    return key


def _payload_for(source: str, code, nops: int) -> Dict:
    """Disk form of one translation: source of record plus a bytecode
    fast path valid only under the exact same interpreter build."""
    return {"format": JIT_FORMAT_VERSION,
            "source": source,
            "nops": nops,
            "magic": MAGIC_NUMBER.hex(),
            "bytecode": base64.b64encode(marshal.dumps(code)).decode()}


def _code_from_payload(payload: Dict, filename: str):
    """Code object for a stored payload: unmarshal the persisted bytecode
    when the interpreter magic matches, else recompile the stored source
    (the source is authoritative; bytecode is only a shortcut)."""
    if payload.get("magic") == MAGIC_NUMBER.hex():
        try:
            return marshal.loads(base64.b64decode(payload["bytecode"]))
        except Exception:
            pass
    return compile(payload["source"], filename, "exec")


def _translation_for(interp: Interpreter, block: Block,
                     key: Optional[str] = None) -> _Translation:
    if key is None:
        key = translation_key(block, interp._check_stride)
    entry = _CODE_CACHE.get(key)
    if entry is not None and entry.block is block:
        _CODE_CACHE.move_to_end(key)
        _counters["memory_hits"] += 1
        return entry

    # Either a true miss or a fingerprint hit from a different block
    # object.  Both need a fresh plan/emit: the namespace template binds
    # live objects, so only the compiled code is structure-portable.
    plan = plan_block(block)
    emitter = _Emitter(interp, plan)
    source, ns = emitter.build()
    template = dict(ns)
    del template["_interp"], template["_stats"]    # rebound per instance
    fallback_binds = tuple(emitter.fallback_binds)
    nops = max(1, len(plan.steps))
    filename = f"<jit:{key[:12]}>"

    if entry is not None and entry.source == source:
        # same structure, new block object: keep the code, repoint the
        # instantiation material at this block's live objects
        entry.block = block
        entry.template = template
        entry.fallback_binds = fallback_binds
        _CODE_CACHE.move_to_end(key)
        _counters["memory_hits"] += 1
        return entry

    store = _TRANSLATION_STORE
    code = None
    if entry is None and store is not None:
        try:
            payload = store.lookup(key)
        except Exception:
            payload = None
        if payload is not None and payload.get("source") == source:
            # source-verified: the stored translation provably generates
            # the exact code this block needs, so warm behaviour is
            # bit-identical by construction
            try:
                code = _code_from_payload(payload, filename)
            except Exception:
                code = None
    if code is not None:
        _counters["disk_hits"] += 1
    else:
        code = compile(source, filename, "exec")
        _counters["misses"] += 1
        if store is not None:
            try:
                store.store(key, _payload_for(source, code, nops))
                _counters["stores"] += 1
            except Exception:
                pass

    entry = _Translation(code, nops, source, block, template, fallback_binds)
    if key not in _CODE_CACHE and len(_CODE_CACHE) >= _CODE_CACHE_MAX:
        _CODE_CACHE.popitem(last=False)    # evict one LRU entry, not all
    _CODE_CACHE[key] = entry
    _CODE_CACHE.move_to_end(key)
    return entry


def compile_block(interp: Interpreter, block: Block,
                  key: Optional[str] = None):
    """Translate ``block`` into one generated function; returns (fn, nops)."""
    entry = _translation_for(interp, block, key)
    ns = dict(entry.template)
    ns["_interp"] = interp
    ns["_stats"] = interp.stats
    for name, op in entry.fallback_binds:
        ns[name] = Interpreter._compile_op(interp, op, None)
    exec(entry.code, ns)
    fn = ns["_jit_block"]
    fn.__jit_source__ = entry.source
    return fn, entry.nops


#: entries of a cold block before translation pays for itself; colder
#: blocks run on the compiled engine's (cheap, cached) thunk lists instead
_PROMOTE_AFTER = 8
#: estimated ops per entry above which translation pays off immediately
_TRANSLATE_WORK = 1024


def _estimated_work(block: Block) -> Optional[int]:
    """Rough op count one entry of ``block`` executes; ``None`` = unknown
    (a loop with runtime bounds — assume hot)."""
    total = 0
    for op in block.ops:
        if op.name in _INLINE_LOOPS and _loop_inlineable(op):
            trips = _static_trips(op)
            inner = _estimated_work(op.regions[0].blocks[0])
            if trips is None or inner is None:
                return None
            total += trips * (inner + 1)
        else:
            total += 1
    return total


def _worth_translating(block: Block) -> bool:
    """Translate on first entry only when one entry amortizes the
    ``compile()``/``exec`` price: the block's statically estimated
    per-entry work clears :data:`_TRANSLATE_WORK`, or contains a loop
    whose bounds only resolve at run time.  Everything colder pays off
    only when re-entered (:data:`_PROMOTE_AFTER`)."""
    work = _estimated_work(block)
    return work is None or work >= _TRANSLATE_WORK


class JitEngine:
    """Per-interpreter cache of generated block functions.

    Translation is tiered: loop-bearing blocks are translated on first
    entry, anything else runs on the compiled engine's dispatch until it
    has been entered :data:`_PROMOTE_AFTER` times.  Both tiers are
    observationally bit-identical, so the mix never shows in stats."""

    __slots__ = ("interp", "cache", "entries", "keys", "known")

    def __init__(self, interp: Interpreter):
        self.interp = interp
        self.cache: Dict[Block, Tuple] = {}
        self.entries: Dict[Block, int] = {}
        #: Block -> structural fingerprint, computed once per block.
        self.keys: Dict[Block, str] = {}
        #: fingerprint -> persistent-tier ``contains`` verdict, memoised so
        #: the tiering bypass costs one disk probe per structure, not one
        #: per cold entry.
        self.known: Dict[str, bool] = {}

    def _key_for(self, block: Block) -> str:
        key = self.keys.get(block)
        if key is None:
            key = self.keys[block] = \
                translation_key(block, self.interp._check_stride)
        return key

    def _translated(self, key: str) -> bool:
        """Is a translation already available (memory or disk) for pennies?"""
        if key in _CODE_CACHE:
            return True
        known = self.known.get(key)
        if known is None:
            store = _TRANSLATION_STORE
            try:
                known = store is not None and bool(store.contains(key))
            except Exception:
                known = False
            self.known[key] = known
        return known

    def run_block(self, block: Block, env: Dict) -> Tuple[str, object]:
        entry = self.cache.get(block)
        if entry is None:
            # an already-available translation (this process or the
            # persistent tier) instantiates for pennies — use it
            # regardless of how cold this block looks to the tiering
            key = self._key_for(block)
            if not self._translated(key) and not _worth_translating(block):
                count = self.entries.get(block, 0)
                if count < _PROMOTE_AFTER:
                    self.entries[block] = count + 1
                    return self.interp._run_block_compiled(block, env)
            entry = self.cache[block] = \
                compile_block(self.interp, block, key=key)
        fn, nops = entry
        interp = self.interp
        budget = interp._budget - nops
        if budget <= 0:
            interp._check_limit()
            budget = interp._check_stride
        interp._budget = budget
        return fn(env)

    def source_for(self, block: Block) -> str:
        """The generated Python source for ``block`` (debugging aid)."""
        entry = self.cache.get(block)
        if entry is None:
            entry = self.cache[block] = compile_block(self.interp, block)
        return entry[0].__jit_source__


__all__ = ["JitEngine", "compile_block", "plan_block",
           "translation_key", "set_translation_store",
           "get_translation_store", "translation_counters",
           "snapshot_translation_counters", "translation_counters_delta",
           "clear_translation_cache", "JIT_FORMAT_VERSION"]
