"""Multi-dialect IR interpreter with dynamic operation accounting.

The interpreter executes modules at any of the levels the two compilation
flows produce — HLFIR/FIR (Flang frontend output and FIR-only baseline form)
and the standard dialects (scf/affine/memref/vector/linalg, optionally with
omp/acc/gpu regions) — so that:

* numerical results of the two flows can be compared (correctness gate), and
* dynamic operation counts per category feed the machine cost model
  (:mod:`repro.machine.perf`), which is how modeled runtimes for the paper's
  tables are produced.

Statistics are kept per execution context: ``serial``, ``parallel`` (inside
omp/scf.parallel regions) and ``gpu`` (inside gpu.launch kernels), which the
threading and GPU models use.

Execution engines
-----------------

Three engines execute the same IR with bit-identical observables
(``engine="reference" | "compiled" | "jit"``).  ``compiled`` — the default
cached-dispatch engine — is described below; ``jit`` goes further and
translates blocks into generated Python source (:mod:`repro.machine.jit`).

Interpreting a table regeneration executes tens of millions of operations,
so the cached-dispatch inner loop avoids all per-operation dispatch work:

* handler resolution is cached at class level (op name -> handler, resolved
  once per name instead of a ``getattr`` with string building per executed
  op), and
* every block is compiled on first entry into a list of closures ("thunks"),
  one per operation, with operands, results, attributes and the stats
  category already resolved; re-executing the block (every loop iteration)
  just calls the thunks.  Adjacent address-computation + load/store pairs
  (``fir.array_coor``/``hlfir.designate`` feeding a single ``fir.load``,
  ``fir.store`` or ``hlfir.assign``) are fused into a single thunk that
  skips the intermediate :class:`ElementPtr` allocation.
* the ``max_ops`` limit is checked once per ``N`` executed operations
  (``N`` scales with ``max_ops``) instead of before every operation, and
* statistics bumps go straight into a pre-fetched per-context ``Counter``
  (kept in sync with the context stack) with fused total-ops accounting.

The original one-op-at-a-time engine is kept as a reference implementation
(``Interpreter(..., engine="reference")``); all engines produce
bit-identical results and statistics, which ``tests/machine`` asserts and
``benchmarks/interpreter_bench.py`` uses as the speedup baseline.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dialects import fir as fir_d
from ..flang import runtime as flang_runtime
from ..ir import types as ir_types
from ..ir.core import Block, Operation, Value
from .semantics import (CMPF, CMPI_SIGNED, CMPI_UNSIGNED, as_unsigned,
                        cmpi_eval, int_ceildiv, int_div, int_floordiv,
                        int_rem, int_width)
from .values import (Cell, ElementPtr, FortranArray, as_ndarray, load_element,
                     numpy_dtype_for, store_element)


class InterpreterError(Exception):
    pass


class ExecutionLimitExceeded(InterpreterError):
    pass


@dataclass
class ExecutionStats:
    """Dynamic operation counts per context ('serial', 'parallel', 'gpu')."""

    counts: Dict[str, Counter] = field(default_factory=lambda: defaultdict(Counter))
    parallel_loop_iterations: int = 0
    parallel_regions: int = 0
    gpu_kernel_launches: int = 0
    gpu_threads: int = 0
    runtime_calls: Counter = field(default_factory=Counter)
    runtime_elements: Counter = field(default_factory=Counter)
    total_ops: int = 0

    def bump(self, context: str, category: str, amount: float = 1.0) -> None:
        self.counts[context][category] += amount
        self.total_ops += 1

    def total(self, category: str, contexts: Optional[Sequence[str]] = None) -> float:
        contexts = contexts or list(self.counts)
        return sum(self.counts[c].get(category, 0.0) for c in contexts)

    def context_total(self, context: str) -> float:
        return sum(self.counts[context].values())

    def merged(self) -> Counter:
        """All per-context counts folded into one Counter (single pass)."""
        total: Counter = Counter()
        for ctr in self.counts.values():
            total.update(ctr)
        return total

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {c: dict(v) for c, v in self.counts.items()}

    def diff(self, other: "ExecutionStats") -> List[str]:
        """Human-readable field-level differences against ``other``.

        Returns an empty list when the two stats are identical; used by the
        conformance oracle to name exactly which observable diverged.
        """
        out: List[str] = []
        contexts = sorted(set(self.counts) | set(other.counts))
        for context in contexts:
            # .get, not indexing: diff must not grow either defaultdict
            mine = self.counts.get(context, Counter())
            theirs = other.counts.get(context, Counter())
            for category in sorted(set(mine) | set(theirs)):
                if mine.get(category, 0.0) != theirs.get(category, 0.0):
                    out.append(f"counts[{context}][{category}]: "
                               f"{mine.get(category, 0.0)} != "
                               f"{theirs.get(category, 0.0)}")
        for name in ("parallel_loop_iterations", "parallel_regions",
                     "gpu_kernel_launches", "gpu_threads", "total_ops"):
            a, b = getattr(self, name), getattr(other, name)
            if a != b:
                out.append(f"{name}: {a} != {b}")
        for name in ("runtime_calls", "runtime_elements"):
            mine, theirs = getattr(self, name), getattr(other, name)
            for key in sorted(set(mine) | set(theirs)):
                if mine.get(key, 0) != theirs.get(key, 0):
                    out.append(f"{name}[{key}]: {mine.get(key, 0)} != "
                               f"{theirs.get(key, 0)}")
        return out


# ---------------------------------------------------------------------------
# Dispatch tables (value semantics live in repro.machine.semantics, shared
# with the canonicalizer's constant folder)
# ---------------------------------------------------------------------------

_FLOAT_BINOPS = {
    "arith.addf": lambda a, b: a + b, "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b, "arith.divf": lambda a, b: a / b,
    "arith.remf": lambda a, b: np.fmod(a, b),
    "arith.maximumf": lambda a, b: np.maximum(a, b),
    "arith.minimumf": lambda a, b: np.minimum(a, b),
}
_INT_BINOPS = {
    "arith.addi": lambda a, b: a + b, "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": int_div,
    "arith.floordivsi": int_floordiv,
    "arith.ceildivsi": int_ceildiv,
    "arith.remsi": int_rem,
    "arith.andi": lambda a, b: (bool(a) and bool(b)) if isinstance(a, (bool, np.bool_)) else a & b,
    "arith.ori": lambda a, b: (bool(a) or bool(b)) if isinstance(a, (bool, np.bool_)) else a | b,
    "arith.xori": lambda a, b: bool(a) != bool(b) if isinstance(a, (bool, np.bool_)) else a ^ b,
    "arith.maxsi": lambda a, b: max(a, b), "arith.minsi": lambda a, b: min(a, b),
    "arith.shli": lambda a, b: a << b, "arith.shrsi": lambda a, b: a >> b,
}
_MATH_UNARY = {
    "math.sqrt": np.sqrt, "math.exp": np.exp, "math.log": np.log,
    "math.log10": np.log10, "math.sin": np.sin, "math.cos": np.cos,
    "math.tan": np.tan, "math.tanh": np.tanh, "math.atan": np.arctan,
    "math.absf": np.abs, "math.absi": abs,
}

# ---------------------------------------------------------------------------
# Block-structure sets used by both execution engines
# ---------------------------------------------------------------------------

_RETURN_OPS = frozenset({"func.return", "llvm.return"})
_BR_OPS = frozenset({"cf.br", "llvm.br"})
_COND_BR_OPS = frozenset({"cf.cond_br", "llvm.cond_br"})
_YIELD_OPS = frozenset({
    "scf.yield", "fir.result", "affine.yield", "omp.yield",
    "omp.terminator", "acc.terminator", "gpu.terminator",
    "linalg.yield", "scf.reduce.return", "memref.alloca_scope.return",
    "scf.condition", "hlfir.yield_element", "fir.has_value"})


#: The four interpreter engines.  ``reference`` executes one op at a time
#: (string-built getattr dispatch), ``compiled`` caches per-block thunk
#: lists, ``jit`` translates blocks (and structured loop bodies) into
#: generated Python source (see :mod:`repro.machine.jit`), and ``vector``
#: evaluates matched affine/scf/fir loop nests as whole-array numpy
#: expressions with analytic statistics (see :mod:`repro.machine.vector`).
#: All four are observationally bit-identical — output and statistics.
ENGINE_NAMES = ("compiled", "reference", "jit", "vector")


class Interpreter:
    """Executes a module and records dynamic operation statistics."""

    #: op name -> handler function (resolved once per name, class-level).
    _HANDLER_CACHE: Dict[str, Optional[Callable]] = {}

    def __init__(self, module: Operation, *, max_ops: int = 80_000_000,
                 trace_output: bool = False, compile_blocks: bool = True,
                 engine: Optional[str] = None):
        if engine is None:
            engine = "compiled" if compile_blocks else "reference"
        if engine not in ENGINE_NAMES:
            raise InterpreterError(
                f"unknown interpreter engine {engine!r} "
                f"(known: {', '.join(ENGINE_NAMES)})")
        self.module = module
        self.stats = ExecutionStats()
        self.max_ops = max_ops
        self.globals: Dict[str, object] = {}
        self.functions: Dict[str, Operation] = {}
        self.context_stack: List[str] = ["serial"]
        self.printed: List[str] = []
        self.trace_output = trace_output
        self.engine = engine
        self.compile_blocks = engine != "reference"
        #: per-context Counter for the current context (hot-path bump target)
        self._ctx_counts: Counter = self.stats.counts["serial"]
        #: compiled thunk lists, one per visited Block
        self._block_cache: Dict[Block, List[Callable]] = {}
        # limit checking is batched: every _check_stride executed ops
        self._check_stride = max(1, min(4096, max_ops // 16))
        self._budget = self._check_stride
        if engine == "jit":
            from .jit import JitEngine
            self._jit = JitEngine(self)
            self._run_block = self._jit.run_block
        elif engine == "vector":
            from .vector import VectorEngine
            self._vector = VectorEngine(self)
            self._run_block = self._vector.run_block
        elif engine == "compiled":
            self._run_block = self._run_block_compiled
        else:
            self._run_block = self._run_block_simple
        self._collect_symbols()

    # ------------------------------------------------------------------ set-up
    def _collect_symbols(self) -> None:
        for op in self.module.body.ops:
            sym = op.get_attr("sym_name")
            if op.name in ("func.func", "llvm.func") and sym is not None:
                self.functions[sym.value] = op
            elif op.name in ("fir.global", "memref.global", "llvm.mlir.global") \
                    and sym is not None:
                self.globals[sym.value] = self._init_global(op)

    def _init_global(self, op: Operation):
        gtype = op.get_attr("type") or op.get_attr("global_type")
        t = gtype.type if gtype is not None else None
        init = op.get_attr("initial_value") or op.get_attr("value")
        if isinstance(t, fir_d.SequenceType):
            arr = FortranArray(t.shape, dtype=numpy_dtype_for(t.element_type))
            return arr
        if isinstance(t, ir_types.MemRefType):
            return np.zeros(t.shape, dtype=numpy_dtype_for(t.element_type))
        cell = Cell(0)
        if init is not None and hasattr(init, "value"):
            cell.value = init.value
        return cell

    # ------------------------------------------------------------------ context
    @property
    def context(self) -> str:
        return self.context_stack[-1]

    def _push_context(self, name: str) -> None:
        self.context_stack.append(name)
        self._ctx_counts = self.stats.counts[name]

    def _pop_context(self) -> None:
        self.context_stack.pop()
        self._ctx_counts = self.stats.counts[self.context_stack[-1]]

    def _check_limit(self) -> None:
        if self.stats.total_ops > self.max_ops:
            raise ExecutionLimitExceeded(
                f"interpreter exceeded {self.max_ops} operations")

    # ------------------------------------------------------------------ running
    def run_main(self):
        for name in ("_QQmain", "main", "MAIN"):
            if name in self.functions:
                return self.call(name, [])
        raise InterpreterError("module has no main program")

    def call(self, name: str, args: Sequence) -> List:
        func = self.functions.get(name)
        if func is None:
            return self._runtime_call(name, list(args), [])
        self._ctx_counts["call"] += 1.0
        self.stats.total_ops += 1
        return self._run_function(func, list(args))

    def _run_function(self, func: Operation, args: List) -> List:
        region = func.regions[0]
        if not region.blocks:
            return []
        env: Dict[Value, object] = {}
        entry = region.blocks[0]
        for block_arg, value in zip(entry.args, args):
            env[block_arg] = value
        block = entry
        run_block = self._run_block
        while True:
            action, payload = run_block(block, env)
            if action == "return":
                return payload
            if action == "branch":
                block, incoming = payload
                for block_arg, value in zip(block.args, incoming):
                    env[block_arg] = value
                continue
            raise InterpreterError(f"unexpected control action {action}")

    # ------------------------------------------------------------------ blocks
    #
    # The compiled engine turns each block into a list of closures on first
    # entry.  A thunk returns None (plain operation) or a control tuple
    # ("return" | "branch" | "yield", payload) that _run_block forwards.

    def _run_block_compiled(self, block: Block, env: Dict) -> Tuple[str, object]:
        code = self._block_cache.get(block)
        if code is None:
            code = self._block_cache[block] = self._compile_block(block)
        budget = self._budget - len(code)
        if budget <= 0:
            self._check_limit()
            budget = self._check_stride
        self._budget = budget
        for step in code:
            result = step(env)
            if result is not None:
                return result
        return "yield", (None, [])

    def _compile_block(self, block: Block) -> List[Callable]:
        code: List[Callable] = []
        ops = block.ops
        skip_next = False
        for position, op in enumerate(ops):
            if skip_next:
                skip_next = False
                continue
            follower = ops[position + 1] if position + 1 < len(ops) else None
            thunk = self._compile_op(op, follower)
            if thunk is _FUSED_WITH_NEXT:
                thunk = self._fused_thunk(op, follower)
                skip_next = True
            code.append(thunk)
        return code

    def _compile_op(self, op: Operation, follower: Optional[Operation]) -> Callable:
        name = op.name
        interp = self
        stats = self.stats
        if name in _RETURN_OPS:
            vals = op.operands

            def do_return(env, _vals=vals):
                return "return", [env.get(v) for v in _vals]
            return do_return
        if name in _BR_OPS:
            succ = op.successors[0]
            vals = op.operands

            def do_br(env, _succ=succ, _vals=vals):
                interp._ctx_counts["branch"] += 1.0
                stats.total_ops += 1
                return "branch", (_succ, [env.get(v) for v in _vals])
            return do_br
        if name in _COND_BR_OPS:
            n_attr = op.get_attr("num_true_operands")
            n = n_attr.value if n_attr is not None else 0
            cond_v = op.operands[0]
            true_vals = op.operands[1:1 + n]
            false_vals = op.operands[1 + n:]
            true_succ, false_succ = op.successors[0], op.successors[1]

            def do_cond_br(env):
                interp._ctx_counts["branch"] += 1.0
                stats.total_ops += 1
                if env.get(cond_v):
                    return "branch", (true_succ, [env.get(v) for v in true_vals])
                return "branch", (false_succ, [env.get(v) for v in false_vals])
            return do_cond_br
        if name in _YIELD_OPS:
            vals = op.operands

            def do_yield(env, _op=op, _vals=vals):
                return "yield", (_op, [env.get(v) for v in _vals])
            return do_yield
        maker = _THUNK_MAKERS.get(name)
        if maker is not None:
            if maker in _FUSABLE_MAKERS and _fusable(op, follower):
                return _FUSED_WITH_NEXT
            return maker(self, op)
        handler = self._resolve_handler(name)
        if handler is None:
            def missing(env, _name=name):
                raise InterpreterError(
                    f"interpreter cannot execute operation {_name}")
            return missing
        # partial(bound_handler, op) -> handler(self, op, env) on each call
        return partial(handler.__get__(self, type(self)), op)

    @classmethod
    def _resolve_handler(cls, name: str) -> Optional[Callable]:
        """Class-level dispatch table: op name -> handler, resolved once."""
        try:
            return cls._HANDLER_CACHE[name]
        except KeyError:
            handler = getattr(cls, "_exec_" + name.replace(".", "_"), None)
            if handler is None:
                handler = _TABLE_HANDLERS.get(name)
            cls._HANDLER_CACHE[name] = handler
            return handler

    def _fused_thunk(self, op: Operation, follower: Operation) -> Callable:
        """One thunk for an address computation plus the single load/store
        that consumes it (skips the intermediate ElementPtr)."""
        interp = self
        stats = self.stats
        unwrap_cell = op.name == "hlfir.designate"
        base_v = op.operands[0]
        index_vals = tuple(op.indices)
        if follower.name == "fir.load":
            res = follower.results[0]

            def fused_load(env):
                base = env[base_v]
                counts = interp._ctx_counts
                counts["index_arith"] += 1.0
                counts["load"] += 1.0
                stats.total_ops += 2
                if unwrap_cell and type(base) is Cell:
                    base = base.value
                env[res] = load_element(
                    base, tuple(int(env[v]) for v in index_vals))
            return fused_load
        value_v = follower.operands[0]

        def fused_store(env):
            base = env[base_v]
            counts = interp._ctx_counts
            counts["index_arith"] += 1.0
            counts["store"] += 1.0
            stats.total_ops += 2
            if unwrap_cell and type(base) is Cell:
                base = base.value
            store_element(base, tuple(int(env[v]) for v in index_vals),
                          env[value_v])
        return fused_store

    # The reference engine: one op at a time, exactly the pre-cached-dispatch
    # behaviour (per-op limit check, string-built getattr dispatch).  Kept as
    # the correctness baseline for the compiled engine and as the benchmark's
    # reference point.
    def _run_block_simple(self, block: Block, env: Dict) -> Tuple[str, object]:
        for op in block.ops:
            self._check_limit()
            name = op.name
            # terminators that transfer control
            if name in _RETURN_OPS:
                return "return", [env.get(v) for v in op.operands]
            if name in _BR_OPS:
                self.stats.bump(self.context, "branch")
                return "branch", (op.successors[0], [env.get(v) for v in op.operands])
            if name in _COND_BR_OPS:
                self.stats.bump(self.context, "branch")
                cond = bool(env.get(op.operands[0]))
                n_attr = op.get_attr("num_true_operands")
                n = n_attr.value if n_attr is not None else 0
                if cond:
                    return "branch", (op.successors[0],
                                      [env.get(v) for v in op.operands[1:1 + n]])
                return "branch", (op.successors[1],
                                  [env.get(v) for v in op.operands[1 + n:]])
            if name in _YIELD_OPS:
                return "yield", (op, [env.get(v) for v in op.operands])
            self._execute_op(op, env)
        return "yield", (None, [])

    # ------------------------------------------------------------- single ops
    def _execute_op(self, op: Operation, env: Dict) -> None:
        name = op.name
        handler = getattr(self, "_exec_" + name.replace(".", "_"), None)
        if handler is not None:
            handler(op, env)
            return
        table_handler = _TABLE_HANDLERS.get(name)
        if table_handler is not None:
            table_handler(self, op, env)
            return
        raise InterpreterError(f"interpreter cannot execute operation {name}")

    # -- accounting helpers ------------------------------------------------------
    def _count_arith(self, op: Operation, result, is_float: bool) -> None:
        if isinstance(result, np.ndarray) and result.size > 1:
            self.stats.bump(self.context, "vector_float" if is_float else "vector_int")
            return
        if is_float:
            self.stats.bump(self.context, "float_arith")
        else:
            operand_type = op.operands[0].type
            if isinstance(operand_type, ir_types.IndexType):
                self.stats.bump(self.context, "index_arith")
            else:
                self.stats.bump(self.context, "int_arith")

    def _count_vector_or_scalar(self, value, category: str) -> None:
        if isinstance(value, np.ndarray) and value.size > 1:
            self.stats.bump(self.context, "vector_float")
        else:
            self.stats.bump(self.context, category)

    # -- constants & casts -------------------------------------------------------
    def _exec_arith_constant(self, op, env) -> None:
        env[op.results[0]] = op.get_attr("value").value

    def _exec_arith_cmpi(self, op, env) -> None:
        a, b = env[op.operands[0]], env[op.operands[1]]
        predicate = op.get_attr("predicate").value
        env[op.results[0]] = cmpi_eval(predicate,
                                       int_width(op.operands[0].type), a, b)
        self.stats.bump(self.context, "cmp")

    def _exec_arith_cmpf(self, op, env) -> None:
        a, b = env[op.operands[0]], env[op.operands[1]]
        env[op.results[0]] = CMPF[op.get_attr("predicate").value](a, b)
        self.stats.bump(self.context, "cmp")

    def _exec_arith_select(self, op, env) -> None:
        cond, a, b = (env[v] for v in op.operands)
        env[op.results[0]] = a if cond else b
        self.stats.bump(self.context, "int_arith")

    def _exec_arith_negf(self, op, env) -> None:
        value = env[op.operands[0]]
        env[op.results[0]] = -value
        self._count_vector_or_scalar(value, "float_arith")

    def _cast_like(self, op, env) -> None:
        value = env[op.operands[0]]
        target = op.results[0].type
        if isinstance(target, ir_types.FloatType):
            env[op.results[0]] = float(value)
        elif isinstance(target, (ir_types.IntegerType, ir_types.IndexType)):
            if isinstance(target, ir_types.IntegerType) and target.width == 1:
                env[op.results[0]] = bool(value)
            else:
                env[op.results[0]] = int(value)
        else:
            env[op.results[0]] = value
        self.stats.bump(self.context, "cast")

    _exec_arith_index_cast = _cast_like
    _exec_arith_sitofp = _cast_like
    _exec_arith_fptosi = _cast_like
    _exec_arith_extf = _cast_like
    _exec_arith_truncf = _cast_like
    _exec_arith_extsi = _cast_like
    _exec_arith_extui = _cast_like
    _exec_arith_trunci = _cast_like
    _exec_arith_bitcast = _cast_like

    def _exec_fir_convert(self, op, env) -> None:
        value = env[op.operands[0]]
        target = op.results[0].type
        if isinstance(value, (Cell, FortranArray, ElementPtr, np.ndarray)):
            env[op.results[0]] = value
        elif isinstance(target, ir_types.FloatType):
            env[op.results[0]] = float(value)
        elif isinstance(target, (ir_types.IntegerType, ir_types.IndexType)):
            env[op.results[0]] = int(value)
        else:
            env[op.results[0]] = value
        self.stats.bump(self.context, "cast")

    # -- FIR memory ----------------------------------------------------------------
    def _exec_fir_alloca(self, op, env) -> None:
        in_type = op.get_attr("in_type").type
        self.stats.bump(self.context, "alloc")
        if isinstance(in_type, fir_d.SequenceType):
            shape = []
            dyn = iter([env[v] for v in op.operands])
            for d in in_type.shape:
                shape.append(int(next(dyn)) if d == ir_types.DYNAMIC else d)
            env[op.results[0]] = FortranArray(shape, numpy_dtype_for(in_type.element_type))
        else:
            env[op.results[0]] = Cell(0)

    def _exec_fir_allocmem(self, op, env) -> None:
        in_type = op.get_attr("in_type").type
        self.stats.bump(self.context, "alloc")
        if isinstance(in_type, fir_d.SequenceType):
            shape = []
            dyn = iter([env[v] for v in op.operands])
            for d in in_type.shape:
                shape.append(int(next(dyn)) if d == ir_types.DYNAMIC else d)
            env[op.results[0]] = FortranArray(shape, numpy_dtype_for(in_type.element_type))
        else:
            env[op.results[0]] = Cell(0)

    def _exec_fir_freemem(self, op, env) -> None:
        self.stats.bump(self.context, "free")

    def _exec_fir_load(self, op, env) -> None:
        source = env[op.operands[0]]
        self.stats.bump(self.context, "load")
        if isinstance(source, Cell):
            env[op.results[0]] = source.value
        elif isinstance(source, ElementPtr):
            env[op.results[0]] = source.load()
        else:
            env[op.results[0]] = source

    def _exec_fir_store(self, op, env) -> None:
        value, dest = env[op.operands[0]], env[op.operands[1]]
        self.stats.bump(self.context, "store")
        if isinstance(dest, Cell):
            dest.value = value
        elif isinstance(dest, ElementPtr):
            dest.store(value)
        else:
            raise InterpreterError("fir.store destination is not a storage location")

    def _exec_fir_shape(self, op, env) -> None:
        env[op.results[0]] = tuple(int(env[v]) for v in op.operands)

    _exec_fir_shape_shift = _exec_fir_shape

    def _exec_fir_embox(self, op, env) -> None:
        env[op.results[0]] = env[op.operands[0]]

    def _exec_fir_box_addr(self, op, env) -> None:
        value = env[op.operands[0]]
        env[op.results[0]] = value
        self.stats.bump(self.context, "load")

    def _exec_fir_box_dims(self, op, env) -> None:
        box = env[op.operands[0]]
        dim = int(env[op.operands[1]])
        shape = box.shape if isinstance(box, (FortranArray, np.ndarray)) else (1,)
        env[op.results[0]] = 1
        env[op.results[1]] = int(shape[dim]) if dim < len(shape) else 1
        env[op.results[2]] = 1
        self.stats.bump(self.context, "load")

    def _exec_fir_coordinate_of(self, op, env) -> None:
        base = env[op.operands[0]]
        self.stats.bump(self.context, "index_arith")
        if op.get_attr("field") is not None:
            # derived-type member access on a Cell holding a dict
            if isinstance(base, Cell) and isinstance(base.value, dict):
                env[op.results[0]] = base.value.setdefault(
                    op.get_attr("field").value, Cell(0))
            else:
                env[op.results[0]] = base
            return
        flat = int(env[op.operands[1]]) if len(op.operands) > 1 else 0
        if isinstance(base, FortranArray):
            env[op.results[0]] = ElementPtr(base, flat=flat)
        elif isinstance(base, np.ndarray):
            env[op.results[0]] = ElementPtr(base, flat=flat)
        elif isinstance(base, Cell):
            env[op.results[0]] = base
        else:
            raise InterpreterError("fir.coordinate_of on a non-array value")

    def _exec_fir_array_coor(self, op, env) -> None:
        base = env[op.memref]
        indices = [int(env[v]) for v in op.indices]
        self.stats.bump(self.context, "index_arith")
        env[op.results[0]] = ElementPtr(base, indices=tuple(indices))

    def _exec_fir_undefined(self, op, env) -> None:
        env[op.results[0]] = 0

    _exec_fir_absent = _exec_fir_undefined
    _exec_fir_zero_bits = _exec_fir_undefined

    def _exec_fir_string_lit(self, op, env) -> None:
        env[op.results[0]] = op.get_attr("value").value

    def _exec_fir_address_of(self, op, env) -> None:
        env[op.results[0]] = self.globals.get(op.get_attr("symbol").root, Cell(0))

    def _exec_fir_field_index(self, op, env) -> None:
        env[op.results[0]] = op.get_attr("field_id").value

    def _exec_fir_unreachable(self, op, env) -> None:
        raise InterpreterError("reached fir.unreachable")

    # -- HLFIR ----------------------------------------------------------------------
    def _exec_hlfir_declare(self, op, env) -> None:
        value = env[op.operands[0]]
        env[op.results[0]] = value
        env[op.results[1]] = value
        # derived-type storage: a Cell holding a member dict
        inner = fir_d.dereferenced_type(op.operands[0].type)
        if isinstance(inner, fir_d.RecordType) and isinstance(value, Cell) \
                and not isinstance(value.value, dict):
            value.value = {}
            for member, mtype in inner.members:
                if isinstance(mtype, fir_d.SequenceType):
                    value.value[member] = FortranArray(
                        mtype.shape, numpy_dtype_for(mtype.element_type))
                else:
                    value.value[member] = Cell(0)

    def _exec_hlfir_designate(self, op, env) -> None:
        base = env[op.memref]
        self.stats.bump(self.context, "index_arith")
        component = op.component
        if component is not None:
            if isinstance(base, Cell) and isinstance(base.value, dict):
                env[op.results[0]] = base.value.setdefault(component, Cell(0))
            else:
                raise InterpreterError("component access on non-derived storage")
            return
        if isinstance(base, Cell):
            base = base.value
        if op.triplets:
            arr = as_ndarray(base)
            trip = [int(env[v]) for v in op.triplets]
            slices = []
            for d in range(len(trip) // 3):
                lo, hi, st = trip[3 * d:3 * d + 3]
                slices.append(slice(lo - 1, hi, st))
            env[op.results[0]] = arr[tuple(slices)]
            return
        indices = tuple(int(env[v]) for v in op.indices)
        env[op.results[0]] = ElementPtr(base, indices=indices)

    def _exec_hlfir_assign(self, op, env) -> None:
        value, dest = env[op.rhs], env[op.lhs]
        self.stats.bump(self.context, "store")
        if isinstance(dest, Cell):
            if isinstance(dest.value, FortranArray) or isinstance(value, (FortranArray, np.ndarray)):
                dest = dest.value if isinstance(dest.value, FortranArray) else dest
        if isinstance(dest, ElementPtr):
            dest.store(value)
        elif isinstance(dest, Cell):
            dest.value = value
        elif isinstance(dest, FortranArray):
            if isinstance(value, FortranArray):
                dest.data[:] = value.data
            elif isinstance(value, np.ndarray):
                dest.data[:] = value.reshape(-1, order="F")
            else:
                dest.data[:] = value
            self.stats.bump(self.context, "array_assign_elements", dest.size)
        elif isinstance(dest, np.ndarray):
            dest[...] = as_ndarray(value) if not np.isscalar(value) else value
        else:
            raise InterpreterError("hlfir.assign to a non-storage value")

    def _hlfir_reduction(self, op, env, fn) -> None:
        array = as_ndarray(self._unbox(env[op.operands[0]]))
        env[op.results[0]] = fn(array)
        self.stats.bump(self.context, "runtime_elem", array.size)

    def _exec_hlfir_sum(self, op, env) -> None:
        self._hlfir_reduction(op, env, lambda a: float(np.sum(a)))

    def _exec_hlfir_product(self, op, env) -> None:
        self._hlfir_reduction(op, env, lambda a: float(np.prod(a)))

    def _exec_hlfir_maxval(self, op, env) -> None:
        self._hlfir_reduction(op, env, lambda a: float(np.max(a)))

    def _exec_hlfir_minval(self, op, env) -> None:
        self._hlfir_reduction(op, env, lambda a: float(np.min(a)))

    def _exec_hlfir_count(self, op, env) -> None:
        self._hlfir_reduction(op, env, lambda a: int(np.count_nonzero(a)))

    def _exec_hlfir_dot_product(self, op, env) -> None:
        a = as_ndarray(self._unbox(env[op.operands[0]]))
        b = as_ndarray(self._unbox(env[op.operands[1]]))
        env[op.results[0]] = float(np.dot(a.ravel(), b.ravel()))
        self.stats.bump(self.context, "runtime_elem", a.size * 2)

    def _exec_hlfir_matmul(self, op, env) -> None:
        a = as_ndarray(self._unbox(env[op.operands[0]]))
        b = as_ndarray(self._unbox(env[op.operands[1]]))
        env[op.results[0]] = a @ b
        self.stats.bump(self.context, "runtime_elem", a.shape[0] * b.shape[-1])

    def _exec_hlfir_transpose(self, op, env) -> None:
        a = as_ndarray(self._unbox(env[op.operands[0]]))
        env[op.results[0]] = a.T.copy()
        self.stats.bump(self.context, "runtime_elem", a.size)

    def _unbox(self, value):
        return value.value if isinstance(value, Cell) else value

    # -- memref -----------------------------------------------------------------------
    def _exec_memref_alloca(self, op, env) -> None:
        self._memref_alloc(op, env)

    def _exec_memref_alloc(self, op, env) -> None:
        self._memref_alloc(op, env)

    def _memref_alloc(self, op, env) -> None:
        mtype = op.results[0].type
        self.stats.bump(self.context, "alloc")
        if mtype.rank == 0:
            env[op.results[0]] = Cell(0)
            return
        shape = []
        dyn = iter([int(env[v]) for v in op.operands])
        for d in mtype.shape:
            shape.append(int(next(dyn)) if d == ir_types.DYNAMIC else d)
        env[op.results[0]] = np.zeros(shape, dtype=numpy_dtype_for(mtype.element_type))

    def _exec_memref_dealloc(self, op, env) -> None:
        self.stats.bump(self.context, "free")

    def _exec_memref_load(self, op, env) -> None:
        memref_value = env[op.operands[0]]
        indices = [int(env[v]) for v in op.operands[1:]]
        self.stats.bump(self.context, "load")
        if isinstance(memref_value, Cell):
            env[op.results[0]] = memref_value.value
        else:
            env[op.results[0]] = memref_value[tuple(indices)] if indices \
                else memref_value[()]

    def _exec_memref_store(self, op, env) -> None:
        value = env[op.operands[0]]
        memref_value = env[op.operands[1]]
        indices = [int(env[v]) for v in op.operands[2:]]
        self.stats.bump(self.context, "store")
        if isinstance(memref_value, Cell):
            memref_value.value = value
        else:
            memref_value[tuple(indices) if indices else ()] = value

    def _exec_memref_dim(self, op, env) -> None:
        memref_value = env[op.operands[0]]
        dim = int(env[op.operands[1]])
        env[op.results[0]] = int(memref_value.shape[dim])
        self.stats.bump(self.context, "load")

    def _exec_memref_copy(self, op, env) -> None:
        src, dst = env[op.operands[0]], env[op.operands[1]]
        dst[...] = src
        self.stats.bump(self.context, "array_assign_elements", dst.size)

    def _exec_memref_cast(self, op, env) -> None:
        env[op.results[0]] = env[op.operands[0]]

    def _exec_memref_subview(self, op, env) -> None:
        base = env[op.operands[0]]
        rank = base.ndim
        offsets = [int(env[v]) for v in op.offsets]
        sizes = [int(env[v]) for v in op.sizes]
        strides = [int(env[v]) for v in op.strides]
        slices = tuple(slice(o, o + s * st, st) for o, s, st in
                       zip(offsets, sizes, strides))
        env[op.results[0]] = base[slices]
        self.stats.bump(self.context, "index_arith")

    def _exec_memref_get_global(self, op, env) -> None:
        env[op.results[0]] = self.globals[op.get_attr("name").value]

    def _exec_memref_alloca_scope(self, op, env) -> None:
        self._run_nested_block(op.regions[0].blocks[0], env)

    def _exec_llvm_mlir_addressof(self, op, env) -> None:
        env[op.results[0]] = self.globals.get(op.get_attr("global_name").root, Cell(0))

    def _exec_llvm_load(self, op, env) -> None:
        source = env[op.operands[0]]
        env[op.results[0]] = source.value if isinstance(source, Cell) else source
        self.stats.bump(self.context, "load")

    def _exec_llvm_store(self, op, env) -> None:
        value, dest = env[op.operands[0]], env[op.operands[1]]
        if isinstance(dest, Cell):
            dest.value = value
        self.stats.bump(self.context, "store")

    # -- vector ------------------------------------------------------------------------
    def _vector_indices(self, op, env, first_index_operand: int):
        amap = op.get_attr("map")
        operand_values = [int(env[v]) for v in op.operands[first_index_operand:]]
        if amap is not None and len(amap.results) > 0:
            return list(amap.evaluate(operand_values))
        return operand_values

    def _exec_vector_load(self, op, env) -> None:
        memref_value = env[op.operands[0]]
        width = op.results[0].type.shape[0]
        indices = self._vector_indices(op, env, 1)
        lead, last = indices[:-1], indices[-1]
        arr = memref_value[tuple(lead)] if lead else memref_value
        end = min(last + width, arr.shape[-1])
        chunk = np.array(arr[last:end], dtype=float)
        if chunk.size < width:
            chunk = np.pad(chunk, (0, width - chunk.size))
        env[op.results[0]] = chunk
        self.stats.bump(self.context, "vector_load")

    def _exec_vector_store(self, op, env) -> None:
        value = env[op.operands[0]]
        memref_value = env[op.operands[1]]
        indices = self._vector_indices(op, env, 2)
        lead, last = indices[:-1], indices[-1]
        arr = memref_value[tuple(lead)] if lead else memref_value
        end = min(last + len(value), arr.shape[-1])
        arr[last:end] = value[:end - last]
        self.stats.bump(self.context, "vector_store")

    def _exec_vector_broadcast(self, op, env) -> None:
        width = op.results[0].type.shape[0]
        env[op.results[0]] = np.full(width, float(env[op.operands[0]]))
        self.stats.bump(self.context, "vector_int")

    _exec_vector_splat = _exec_vector_broadcast

    def _exec_vector_reduction(self, op, env) -> None:
        value = env[op.operands[0]]
        kind = op.get_attr("kind").value
        table = {"add": np.sum, "mul": np.prod, "minf": np.min, "maxf": np.max,
                 "minsi": np.min, "maxsi": np.max}
        env[op.results[0]] = float(table[kind](value))
        self.stats.bump(self.context, "vector_reduce")

    # -- structured control flow ----------------------------------------------------------
    def _run_nested_block(self, block: Block, env: Dict):
        action, payload = self._run_block(block, env)
        if action == "yield":
            return payload
        if action == "return":
            raise _FunctionReturn(payload)
        raise InterpreterError("unstructured control flow escaping a region")

    def _exec_scf_if(self, op, env) -> None:
        cond = bool(env[op.operands[0]])
        self.stats.bump(self.context, "branch")
        block = op.regions[0].blocks[0] if cond else (
            op.regions[1].blocks[0] if op.regions[1].blocks else None)
        values: List = []
        if block is not None:
            _, (_, values) = None, self._run_nested_block(block, env)
        for res, val in zip(op.results, values[1] if values and isinstance(values, tuple) else values):
            env[res] = val

    def _exec_fir_if(self, op, env) -> None:
        self._exec_scf_if(op, env)

    def _exec_scf_for(self, op, env) -> None:
        lower = int(env[op.operands[0]])
        upper = int(env[op.operands[1]])
        step = int(env[op.operands[2]])
        iter_values = [env[v] for v in op.operands[3:]]
        body = op.regions[0].blocks[0]
        counts = self._ctx_counts
        stats = self.stats
        iv = lower
        while iv < upper:
            counts["loop_iter"] += 1.0
            stats.total_ops += 1
            env[body.args[0]] = iv
            for arg, val in zip(body.args[1:], iter_values):
                env[arg] = val
            result = self._run_nested_block(body, env)
            _, yielded = result
            if yielded:
                iter_values = yielded
            iv += max(step, 1) if step > 0 else step
            if step <= 0:
                break
        for res, val in zip(op.results, iter_values):
            env[res] = val

    def _exec_affine_for(self, op, env) -> None:
        lower_ops = [int(env[v]) for v in op.lower_operands]
        upper_ops = [int(env[v]) for v in op.upper_operands]
        lower = op.lower_bound_map.evaluate(lower_ops)[0]
        upper = op.upper_bound_map.evaluate(upper_ops)[0]
        step = op.step_value
        iter_values = [env[v] for v in op.iter_args]
        body = op.regions[0].blocks[0]
        counts = self._ctx_counts
        stats = self.stats
        iv = lower
        while iv < upper:
            counts["loop_iter"] += 1.0
            stats.total_ops += 1
            env[body.args[0]] = iv
            for arg, val in zip(body.args[1:], iter_values):
                env[arg] = val
            _, yielded = self._run_nested_block(body, env)
            if yielded:
                iter_values = yielded
            iv += step
        for res, val in zip(op.results, iter_values):
            env[res] = val

    def _exec_affine_load(self, op, env) -> None:
        memref_value = env[op.operands[0]]
        operand_values = [int(env[v]) for v in op.operands[1:]]
        indices = op.get_attr("map").evaluate(operand_values)
        self.stats.bump(self.context, "load")
        if isinstance(memref_value, Cell):
            env[op.results[0]] = memref_value.value
        else:
            env[op.results[0]] = memref_value[tuple(indices)] if indices \
                else memref_value[()]

    def _exec_affine_store(self, op, env) -> None:
        value = env[op.operands[0]]
        memref_value = env[op.operands[1]]
        operand_values = [int(env[v]) for v in op.operands[2:]]
        indices = op.get_attr("map").evaluate(operand_values)
        self.stats.bump(self.context, "store")
        if isinstance(memref_value, Cell):
            memref_value.value = value
        else:
            memref_value[tuple(indices) if indices else ()] = value

    def _exec_affine_apply(self, op, env) -> None:
        operand_values = [int(env[v]) for v in op.operands]
        env[op.results[0]] = op.get_attr("map").evaluate(operand_values)[0]
        self.stats.bump(self.context, "index_arith")

    def _exec_scf_while(self, op, env) -> None:
        before = op.regions[0].blocks[0]
        after = op.regions[1].blocks[0]
        carried = [env[v] for v in op.operands]
        counts = self._ctx_counts
        stats = self.stats
        while True:
            counts["loop_iter"] += 1.0
            stats.total_ops += 1
            for arg, val in zip(before.args, carried):
                env[arg] = val
            terminator, values = self._run_nested_block(before, env)
            cond = bool(values[0])
            forwarded = values[1:]
            if not cond:
                results = forwarded
                break
            for arg, val in zip(after.args, forwarded):
                env[arg] = val
            _, yielded = self._run_nested_block(after, env)
            carried = yielded
        for res, val in zip(op.results, results):
            env[res] = val

    def _exec_scf_parallel(self, op, env) -> None:
        rank = op.rank
        lowers = [int(env[v]) for v in op.lower_bounds]
        uppers = [int(env[v]) for v in op.upper_bounds]
        steps = [int(env[v]) for v in op.steps]
        body = op.body
        self.stats.parallel_regions += 1
        self._push_context("parallel")
        try:
            self._iterate_parallel(body, lowers, uppers, steps, env)
        finally:
            self._pop_context()

    def _iterate_parallel(self, body, lowers, uppers, steps, env) -> None:
        counts = self._ctx_counts
        stats = self.stats

        def recurse(dim, indices):
            if dim == len(lowers):
                stats.parallel_loop_iterations += 1
                counts["loop_iter"] += 1.0
                stats.total_ops += 1
                for arg, val in zip(body.args, indices):
                    env[arg] = val
                self._run_nested_block(body, env)
                return
            iv = lowers[dim]
            while iv < uppers[dim]:
                recurse(dim + 1, indices + [iv])
                iv += steps[dim]
        recurse(0, [])

    # -- fir loops -----------------------------------------------------------------------
    def _exec_fir_do_loop(self, op, env) -> None:
        lower = int(env[op.operands[0]])
        upper = int(env[op.operands[1]])
        step = int(env[op.operands[2]])
        iter_values = [env[v] for v in op.operands[3:]]
        body = op.regions[0].blocks[0]
        counts = self._ctx_counts
        stats = self.stats
        iv = lower
        if step == 0:
            step = 1
        while (step > 0 and iv <= upper) or (step < 0 and iv >= upper):
            counts["loop_iter"] += 1.0
            stats.total_ops += 1
            env[body.args[0]] = iv
            for arg, val in zip(body.args[1:], iter_values):
                env[arg] = val
            _, yielded = self._run_nested_block(body, env)
            if yielded:
                iter_values = yielded
            iv += step
        results = [iv] + iter_values
        for res, val in zip(op.results, results):
            env[res] = val

    def _exec_fir_iterate_while(self, op, env) -> None:
        lower = int(env[op.operands[0]])
        upper = int(env[op.operands[1]])
        step = int(env[op.operands[2]])
        ok = bool(env[op.operands[3]])
        iter_values = [env[v] for v in op.operands[4:]]
        body = op.regions[0].blocks[0]
        counts = self._ctx_counts
        stats = self.stats
        iv = lower
        while iv <= upper and ok:
            counts["loop_iter"] += 1.0
            stats.total_ops += 1
            env[body.args[0]] = iv
            env[body.args[1]] = ok
            for arg, val in zip(body.args[2:], iter_values):
                env[arg] = val
            _, yielded = self._run_nested_block(body, env)
            if yielded:
                ok = bool(yielded[0])
                iter_values = yielded[1:]
            iv += step if step else 1
        results = [iv, ok] + iter_values
        for res, val in zip(op.results, results):
            env[res] = val

    # -- OpenMP / OpenACC / GPU --------------------------------------------------------------
    def _exec_omp_parallel(self, op, env) -> None:
        self.stats.parallel_regions += 1
        self._push_context("parallel")
        try:
            self._run_nested_block(op.regions[0].blocks[0], env)
        finally:
            self._pop_context()

    def _exec_omp_wsloop(self, op, env) -> None:
        rank = op.rank
        lowers = [int(env[v]) for v in op.lower_bounds]
        uppers = [int(env[v]) for v in op.upper_bounds]
        steps = [int(env[v]) for v in op.steps]
        body = op.body
        self._push_context("parallel")
        counts = self._ctx_counts
        stats = self.stats
        inclusive = op.get_attr("inclusive_ub") is not None
        if not inclusive:
            uppers = [u - 1 for u in uppers]
        try:
            iv = lowers[0]
            # Fortran-generated omp.wsloop uses inclusive bounds; wsloops
            # converted from scf.parallel are exclusive (adjusted above)
            while iv <= uppers[0]:
                stats.parallel_loop_iterations += 1
                counts["loop_iter"] += 1.0
                stats.total_ops += 1
                env[body.args[0]] = iv
                self._run_nested_block(body, env)
                iv += steps[0] if steps[0] else 1
        finally:
            self._pop_context()

    def _exec_omp_barrier(self, op, env) -> None:
        self.stats.bump(self.context, "sync")

    def _exec_acc_kernels(self, op, env) -> None:
        self.stats.gpu_kernel_launches += 1
        self._push_context("gpu")
        try:
            self._run_nested_block(op.regions[0].blocks[0], env)
        finally:
            self._pop_context()
        for res, operand in zip(op.results, op.operands):
            env[res] = env[operand]

    def _exec_acc_data(self, op, env) -> None:
        self._run_nested_block(op.regions[0].blocks[0], env)
        for res, operand in zip(op.results, op.operands):
            env[res] = env[operand]

    def _exec_acc_create(self, op, env) -> None:
        if op.results:
            env[op.results[0]] = env[op.operands[0]]
        self.stats.bump(self.context, "gpu_data_clause")

    _exec_acc_copyin = _exec_acc_create

    def _exec_acc_copyout(self, op, env) -> None:
        self.stats.bump(self.context, "gpu_data_clause")

    _exec_acc_delete = _exec_acc_copyout

    def _exec_gpu_host_register(self, op, env) -> None:
        self.stats.bump(self.context, "gpu_data_clause")

    _exec_gpu_host_unregister = _exec_gpu_host_register

    def _exec_gpu_launch(self, op, env) -> None:
        grid = [int(env[v]) for v in op.operands[0:3]]
        block = [int(env[v]) for v in op.operands[3:6]]
        total_threads = grid[0] * grid[1] * grid[2] * block[0] * block[1] * block[2]
        self.stats.gpu_kernel_launches += 1
        self.stats.gpu_threads += total_threads
        body = op.regions[0].blocks[0]
        self._push_context("gpu")
        try:
            for linear in range(total_threads):
                bid = linear // (block[0] * block[1] * block[2])
                tid = linear % (block[0] * block[1] * block[2])
                args = [bid, 0, 0, tid, 0, 0, grid[0], grid[1], grid[2],
                        block[0], block[1], block[2]]
                for arg, val in zip(body.args, args):
                    env[arg] = val
                self._run_nested_block(body, env)
        finally:
            self._pop_context()

    # -- linalg (when not lowered to loops) ---------------------------------------------------
    def _exec_linalg_fill(self, op, env) -> None:
        value, out = env[op.operands[0]], env[op.operands[1]]
        out[...] = value
        self.stats.bump(self.context, "array_assign_elements", out.size)

    def _exec_linalg_copy(self, op, env) -> None:
        src, out = env[op.operands[0]], env[op.operands[1]]
        out[...] = src
        self.stats.bump(self.context, "array_assign_elements", out.size)

    def _exec_linalg_matmul(self, op, env) -> None:
        a, b, c = (env[v] for v in op.operands)
        c += a @ b
        self.stats.bump(self.context, "linalg_elements", a.shape[0] * b.shape[1] * a.shape[1])

    def _exec_linalg_dot(self, op, env) -> None:
        a, b, out = (env[v] for v in op.operands)
        out.value = (out.value or 0.0) + float(np.dot(a, b)) if isinstance(out, Cell) \
            else out + np.dot(a, b)
        self.stats.bump(self.context, "linalg_elements", a.size)

    def _exec_linalg_transpose(self, op, env) -> None:
        src, out = env[op.operands[0]], env[op.operands[1]]
        out[...] = src.T
        self.stats.bump(self.context, "linalg_elements", out.size)

    def _exec_linalg_reduce(self, op, env) -> None:
        src, out = env[op.operands[0]], env[op.operands[1]]
        total = float(np.sum(src))
        if isinstance(out, Cell):
            out.value = (out.value or 0.0) + total
        else:
            out[()] = out[()] + total
        self.stats.bump(self.context, "linalg_elements", src.size)

    # -- calls ---------------------------------------------------------------------------------
    def _exec_func_call(self, op, env) -> None:
        callee = op.get_attr("callee").root
        args = [env[v] for v in op.operands]
        results = self.call(callee, args)
        for res, val in zip(op.results, results or []):
            env[res] = val

    _exec_fir_call = _exec_func_call
    _exec_llvm_call = _exec_func_call

    def _runtime_call(self, name: str, args: List, result_types) -> List:
        """Calls that do not resolve to a function in the module: Fortran
        runtime entry points, OpenMP runtime, libm, malloc/free."""
        self.stats.runtime_calls[name] += 1
        self.stats.bump(self.context, "runtime_call")
        if name in flang_runtime.IO_SYMBOLS or name.startswith("_FortranAio"):
            self.printed.append(" ".join(str(self._unbox(a)) for a in args))
            return []
        if name == "_FortranAStopStatement":
            return []
        if name == "_FortranAAssign":
            value, target = args[0], args[1]
            target_storage = self._unbox(target)
            if isinstance(target_storage, FortranArray):
                source = self._unbox(value)
                if isinstance(source, FortranArray):
                    target_storage.data[:] = source.data
                elif isinstance(source, np.ndarray):
                    target_storage.data[:] = source.reshape(-1, order="F")
                else:
                    target_storage.data[:] = source
                self.stats.bump(self.context, "runtime_elem", target_storage.size)
            elif isinstance(target, Cell):
                target.value = value
            return []
        if name == "_FortranASectionView":
            base = self._unbox(args[0])
            arr = as_ndarray(base)
            trip = [int(a) for a in args[1:]]
            slices = tuple(slice(trip[i] - 1, trip[i + 1], trip[i + 2])
                           for i in range(0, len(trip), 3))
            return [arr[slices]]
        intrinsic = flang_runtime.SYMBOL_TO_INTRINSIC.get(name)
        if intrinsic is not None:
            arrays = [as_ndarray(self._unbox(a)) for a in args]
            result = flang_runtime.IMPLEMENTATIONS[intrinsic](*arrays)
            elements = max(a.size for a in arrays) if arrays else 0
            if intrinsic == "matmul":
                elements = arrays[0].shape[0] * arrays[0].shape[1] * arrays[1].shape[-1]
            self.stats.runtime_elements[intrinsic] += elements
            self.stats.bump(self.context, "runtime_elem", elements)
            return [result]
        if name in ("malloc",):
            return [Cell(0)]
        if name.startswith("__kmpc") or name in ("free", "memcpy"):
            return []
        if name in ("sqrt", "exp", "log", "sin", "cos", "pow", "fabs", "fma"):
            fn = {"sqrt": np.sqrt, "exp": np.exp, "log": np.log, "sin": np.sin,
                  "cos": np.cos, "fabs": np.abs}.get(name)
            if fn is not None and args:
                return [float(fn(args[0]))]
            if name == "pow" and len(args) >= 2:
                return [float(args[0] ** args[1])]
            if name == "fma" and len(args) >= 3:
                return [float(args[0] * args[1] + args[2])]
        return []


class _FunctionReturn(Exception):
    def __init__(self, values):
        super().__init__("return")
        self.values = values


# ---------------------------------------------------------------------------
# Table-driven handlers (shared by both engines for ops without _exec_ methods)
# ---------------------------------------------------------------------------

def _table_float_binop(interp, op, env):
    a, b = env[op.operands[0]], env[op.operands[1]]
    result = _FLOAT_BINOPS[op.name](a, b)
    env[op.results[0]] = result
    interp._count_arith(op, result, is_float=True)


def _table_int_binop(interp, op, env):
    a, b = env[op.operands[0]], env[op.operands[1]]
    result = _INT_BINOPS[op.name](a, b)
    env[op.results[0]] = result
    interp._count_arith(op, result, is_float=False)


def _table_math_unary(interp, op, env):
    value = env[op.operands[0]]
    env[op.results[0]] = _MATH_UNARY[op.name](value)
    interp._count_vector_or_scalar(value, "float_math")


def _table_pow(interp, op, env):
    a, b = env[op.operands[0]], env[op.operands[1]]
    env[op.results[0]] = a ** b
    interp._count_vector_or_scalar(a, "float_math")


def _table_fma(interp, op, env):
    a, b, c = (env[v] for v in op.operands)
    env[op.results[0]] = a * b + c
    interp._count_vector_or_scalar(a, "float_fma")


def _table_atan2(interp, op, env):
    a, b = env[op.operands[0]], env[op.operands[1]]
    env[op.results[0]] = np.arctan2(a, b)
    interp._count_vector_or_scalar(a, "float_math")


_TABLE_HANDLERS: Dict[str, Callable] = {}
for _name in _FLOAT_BINOPS:
    _TABLE_HANDLERS[_name] = _table_float_binop
for _name in _INT_BINOPS:
    _TABLE_HANDLERS[_name] = _table_int_binop
for _name in _MATH_UNARY:
    _TABLE_HANDLERS[_name] = _table_math_unary
for _name in ("math.powf", "math.fpowi", "math.ipowi"):
    _TABLE_HANDLERS[_name] = _table_pow
for _name in ("math.fma", "vector.fma", "llvm.intr.fmuladd"):
    _TABLE_HANDLERS[_name] = _table_fma
_TABLE_HANDLERS["math.atan2"] = _table_atan2
del _name


# ---------------------------------------------------------------------------
# Thunk makers: (interpreter, op) -> fn(env), with everything static resolved
# at block-compile time (operands, results, attributes, stats category).
# ---------------------------------------------------------------------------

def _mk_constant(interp, op):
    res = op.results[0]
    value = op.get_attr("value").value

    def run(env):
        env[res] = value
    return run


def _mk_float_binop(interp, op):
    fn = _FLOAT_BINOPS[op.name]
    a, b = op.operands[0], op.operands[1]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        result = fn(env[a], env[b])
        env[res] = result
        if isinstance(result, np.ndarray) and result.size > 1:
            interp._ctx_counts["vector_float"] += 1.0
        else:
            interp._ctx_counts["float_arith"] += 1.0
        stats.total_ops += 1
    return run


def _mk_int_binop(interp, op):
    fn = _INT_BINOPS[op.name]
    a, b = op.operands[0], op.operands[1]
    res = op.results[0]
    stats = interp.stats
    scalar_cat = "index_arith" if isinstance(a.type, ir_types.IndexType) \
        else "int_arith"

    def run(env):
        result = fn(env[a], env[b])
        env[res] = result
        if isinstance(result, np.ndarray) and result.size > 1:
            interp._ctx_counts["vector_int"] += 1.0
        else:
            interp._ctx_counts[scalar_cat] += 1.0
        stats.total_ops += 1
    return run


def _mk_math_unary(interp, op):
    fn = _MATH_UNARY[op.name]
    a = op.operands[0]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        value = env[a]
        env[res] = fn(value)
        if isinstance(value, np.ndarray) and value.size > 1:
            interp._ctx_counts["vector_float"] += 1.0
        else:
            interp._ctx_counts["float_math"] += 1.0
        stats.total_ops += 1
    return run


def _mk_pow(interp, op):
    a, b = op.operands[0], op.operands[1]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        base = env[a]
        env[res] = base ** env[b]
        if isinstance(base, np.ndarray) and base.size > 1:
            interp._ctx_counts["vector_float"] += 1.0
        else:
            interp._ctx_counts["float_math"] += 1.0
        stats.total_ops += 1
    return run


def _mk_fma(interp, op):
    a, b, c = op.operands
    res = op.results[0]
    stats = interp.stats

    def run(env):
        va = env[a]
        env[res] = va * env[b] + env[c]
        if isinstance(va, np.ndarray) and va.size > 1:
            interp._ctx_counts["vector_float"] += 1.0
        else:
            interp._ctx_counts["float_fma"] += 1.0
        stats.total_ops += 1
    return run


def _mk_atan2(interp, op):
    a, b = op.operands[0], op.operands[1]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        va = env[a]
        env[res] = np.arctan2(va, env[b])
        if isinstance(va, np.ndarray) and va.size > 1:
            interp._ctx_counts["vector_float"] += 1.0
        else:
            interp._ctx_counts["float_math"] += 1.0
        stats.total_ops += 1
    return run


def _mk_cmpi(interp, op):
    predicate = op.get_attr("predicate").value
    a, b = op.operands[0], op.operands[1]
    res = op.results[0]
    stats = interp.stats
    signed_fn = CMPI_SIGNED.get(predicate)
    if signed_fn is not None:
        def run(env):
            env[res] = signed_fn(env[a], env[b])
            interp._ctx_counts["cmp"] += 1.0
            stats.total_ops += 1
        return run
    unsigned_fn = CMPI_UNSIGNED[predicate]
    width = int_width(a.type)

    def run(env):
        env[res] = unsigned_fn(as_unsigned(env[a], width),
                               as_unsigned(env[b], width))
        interp._ctx_counts["cmp"] += 1.0
        stats.total_ops += 1
    return run


def _mk_cmpf(interp, op):
    fn = CMPF[op.get_attr("predicate").value]
    a, b = op.operands[0], op.operands[1]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        env[res] = fn(env[a], env[b])
        interp._ctx_counts["cmp"] += 1.0
        stats.total_ops += 1
    return run


def _mk_select(interp, op):
    cond, a, b = op.operands
    res = op.results[0]
    stats = interp.stats

    def run(env):
        env[res] = env[a] if env[cond] else env[b]
        interp._ctx_counts["int_arith"] += 1.0
        stats.total_ops += 1
    return run


def _mk_negf(interp, op):
    a = op.operands[0]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        value = env[a]
        env[res] = -value
        if isinstance(value, np.ndarray) and value.size > 1:
            interp._ctx_counts["vector_float"] += 1.0
        else:
            interp._ctx_counts["float_arith"] += 1.0
        stats.total_ops += 1
    return run


def _mk_cast(interp, op):
    a = op.operands[0]
    res = op.results[0]
    target = res.type
    stats = interp.stats
    if isinstance(target, ir_types.FloatType):
        convert = float
    elif isinstance(target, ir_types.IntegerType) and target.width == 1:
        convert = bool
    elif isinstance(target, (ir_types.IntegerType, ir_types.IndexType)):
        convert = int
    else:
        convert = None

    def run(env):
        value = env[a]
        env[res] = convert(value) if convert is not None else value
        interp._ctx_counts["cast"] += 1.0
        stats.total_ops += 1
    return run


def _mk_fir_convert(interp, op):
    a = op.operands[0]
    res = op.results[0]
    target = res.type
    stats = interp.stats
    if isinstance(target, ir_types.FloatType):
        convert = float
    elif isinstance(target, (ir_types.IntegerType, ir_types.IndexType)):
        convert = int
    else:
        convert = None

    def run(env):
        value = env[a]
        if isinstance(value, (Cell, FortranArray, ElementPtr, np.ndarray)):
            env[res] = value
        elif convert is not None:
            env[res] = convert(value)
        else:
            env[res] = value
        interp._ctx_counts["cast"] += 1.0
        stats.total_ops += 1
    return run


def _mk_fir_load(interp, op):
    src = op.operands[0]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        source = env[src]
        interp._ctx_counts["load"] += 1.0
        stats.total_ops += 1
        t = type(source)
        if t is Cell:
            env[res] = source.value
        elif t is ElementPtr:
            env[res] = source.load()
        else:
            env[res] = source
    return run


def _mk_fir_store(interp, op):
    val, dst = op.operands[0], op.operands[1]
    stats = interp.stats

    def run(env):
        dest = env[dst]
        interp._ctx_counts["store"] += 1.0
        stats.total_ops += 1
        t = type(dest)
        if t is Cell:
            dest.value = env[val]
        elif t is ElementPtr:
            dest.store(env[val])
        else:
            raise InterpreterError(
                "fir.store destination is not a storage location")
    return run


def _mk_memref_load(interp, op):
    mem = op.operands[0]
    index_vals = op.operands[1:]
    res = op.results[0]
    stats = interp.stats
    if len(index_vals) == 1:
        i0 = index_vals[0]

        def run(env):
            memref_value = env[mem]
            interp._ctx_counts["load"] += 1.0
            stats.total_ops += 1
            if type(memref_value) is Cell:
                env[res] = memref_value.value
            else:
                env[res] = memref_value[int(env[i0])]
        return run
    if len(index_vals) == 2:
        i0, i1 = index_vals

        def run(env):
            memref_value = env[mem]
            interp._ctx_counts["load"] += 1.0
            stats.total_ops += 1
            if type(memref_value) is Cell:
                env[res] = memref_value.value
            else:
                env[res] = memref_value[int(env[i0]), int(env[i1])]
        return run

    def run(env):
        memref_value = env[mem]
        interp._ctx_counts["load"] += 1.0
        stats.total_ops += 1
        if type(memref_value) is Cell:
            env[res] = memref_value.value
        elif index_vals:
            env[res] = memref_value[tuple(int(env[v]) for v in index_vals)]
        else:
            env[res] = memref_value[()]
    return run


def _mk_memref_store(interp, op):
    val, mem = op.operands[0], op.operands[1]
    index_vals = op.operands[2:]
    stats = interp.stats
    if len(index_vals) == 1:
        i0 = index_vals[0]

        def run(env):
            memref_value = env[mem]
            interp._ctx_counts["store"] += 1.0
            stats.total_ops += 1
            if type(memref_value) is Cell:
                memref_value.value = env[val]
            else:
                memref_value[int(env[i0])] = env[val]
        return run
    if len(index_vals) == 2:
        i0, i1 = index_vals

        def run(env):
            memref_value = env[mem]
            interp._ctx_counts["store"] += 1.0
            stats.total_ops += 1
            if type(memref_value) is Cell:
                memref_value.value = env[val]
            else:
                memref_value[int(env[i0]), int(env[i1])] = env[val]
        return run

    def run(env):
        memref_value = env[mem]
        interp._ctx_counts["store"] += 1.0
        stats.total_ops += 1
        if type(memref_value) is Cell:
            memref_value.value = env[val]
        else:
            memref_value[tuple(int(env[v]) for v in index_vals)
                         if index_vals else ()] = env[val]
    return run


def _mk_llvm_load(interp, op):
    src = op.operands[0]
    res = op.results[0]
    stats = interp.stats

    def run(env):
        source = env[src]
        env[res] = source.value if type(source) is Cell else source
        interp._ctx_counts["load"] += 1.0
        stats.total_ops += 1
    return run


def _mk_llvm_store(interp, op):
    val, dst = op.operands[0], op.operands[1]
    stats = interp.stats

    def run(env):
        dest = env[dst]
        if type(dest) is Cell:
            dest.value = env[val]
        interp._ctx_counts["store"] += 1.0
        stats.total_ops += 1
    return run


def _mk_affine_load(interp, op):
    mem = op.operands[0]
    index_vals = op.operands[1:]
    amap = op.get_attr("map")
    res = op.results[0]
    stats = interp.stats

    def run(env):
        memref_value = env[mem]
        indices = amap.evaluate([int(env[v]) for v in index_vals])
        interp._ctx_counts["load"] += 1.0
        stats.total_ops += 1
        if type(memref_value) is Cell:
            env[res] = memref_value.value
        elif indices:
            env[res] = memref_value[tuple(indices)]
        else:
            env[res] = memref_value[()]
    return run


def _mk_affine_store(interp, op):
    val, mem = op.operands[0], op.operands[1]
    index_vals = op.operands[2:]
    amap = op.get_attr("map")
    stats = interp.stats

    def run(env):
        memref_value = env[mem]
        indices = amap.evaluate([int(env[v]) for v in index_vals])
        interp._ctx_counts["store"] += 1.0
        stats.total_ops += 1
        if type(memref_value) is Cell:
            memref_value.value = env[val]
        else:
            memref_value[tuple(indices) if indices else ()] = env[val]
    return run


def _mk_affine_apply(interp, op):
    operand_vals = op.operands
    amap = op.get_attr("map")
    res = op.results[0]
    stats = interp.stats

    def run(env):
        env[res] = amap.evaluate([int(env[v]) for v in operand_vals])[0]
        interp._ctx_counts["index_arith"] += 1.0
        stats.total_ops += 1
    return run


def _mk_fir_array_coor(interp, op):
    mem = op.memref
    index_vals = tuple(op.indices)
    res = op.results[0]
    stats = interp.stats

    def run(env):
        interp._ctx_counts["index_arith"] += 1.0
        stats.total_ops += 1
        env[res] = ElementPtr(env[mem],
                              indices=tuple(int(env[v]) for v in index_vals))
    return run


def _mk_hlfir_designate(interp, op):
    # only the plain element-designator form is thunked; components and
    # sections (triplets) keep the generic handler
    if op.component is not None or op.triplets:
        handler = Interpreter._resolve_handler(op.name)
        return partial(handler.__get__(interp, type(interp)), op)
    mem = op.memref
    index_vals = tuple(op.indices)
    res = op.results[0]
    stats = interp.stats

    def run(env):
        base = env[mem]
        interp._ctx_counts["index_arith"] += 1.0
        stats.total_ops += 1
        if type(base) is Cell:
            base = base.value
        env[res] = ElementPtr(base,
                              indices=tuple(int(env[v]) for v in index_vals))
    return run


_THUNK_MAKERS: Dict[str, Callable] = {"arith.constant": _mk_constant,
                                      "arith.cmpi": _mk_cmpi,
                                      "arith.cmpf": _mk_cmpf,
                                      "arith.select": _mk_select,
                                      "arith.negf": _mk_negf,
                                      "fir.convert": _mk_fir_convert,
                                      "fir.load": _mk_fir_load,
                                      "fir.store": _mk_fir_store,
                                      "memref.load": _mk_memref_load,
                                      "memref.store": _mk_memref_store,
                                      "llvm.load": _mk_llvm_load,
                                      "llvm.store": _mk_llvm_store,
                                      "affine.load": _mk_affine_load,
                                      "affine.store": _mk_affine_store,
                                      "affine.apply": _mk_affine_apply,
                                      "fir.array_coor": _mk_fir_array_coor,
                                      "hlfir.designate": _mk_hlfir_designate,
                                      "math.atan2": _mk_atan2}
for _name in _FLOAT_BINOPS:
    _THUNK_MAKERS[_name] = _mk_float_binop
for _name in _INT_BINOPS:
    _THUNK_MAKERS[_name] = _mk_int_binop
for _name in _MATH_UNARY:
    _THUNK_MAKERS[_name] = _mk_math_unary
for _name in ("math.powf", "math.fpowi", "math.ipowi"):
    _THUNK_MAKERS[_name] = _mk_pow
for _name in ("math.fma", "vector.fma", "llvm.intr.fmuladd"):
    _THUNK_MAKERS[_name] = _mk_fma
for _name in ("arith.index_cast", "arith.sitofp", "arith.fptosi", "arith.extf",
              "arith.truncf", "arith.extsi", "arith.extui", "arith.trunci",
              "arith.bitcast"):
    _THUNK_MAKERS[_name] = _mk_cast
del _name

#: sentinel returned by _compile_op when the op fuses with its follower
_FUSED_WITH_NEXT = object()
#: makers whose ops are address computations eligible for load/store fusion
_FUSABLE_MAKERS = {_mk_fir_array_coor, _mk_hlfir_designate}


def _fusable(op: Operation, follower: Optional[Operation]) -> bool:
    """True when ``op`` is an element-address computation whose single use is
    the immediately following load/store, so the pair can run as one thunk."""
    if follower is None or not op.results:
        return False
    if op.name == "hlfir.designate" and (op.component is not None or op.triplets):
        return False
    address = op.results[0]
    if len(address.uses) != 1 or address.uses[0].operation is not follower:
        return False
    if follower.name == "fir.load":
        return follower.operands[0] is address
    if follower.name == "fir.store":
        return follower.operands[1] is address and follower.operands[0] is not address
    if follower.name == "hlfir.assign":
        return follower.operands[1] is address and follower.operands[0] is not address
    return False


def run_module(module: Operation, *, entry: Optional[str] = None,
               args: Sequence = (), max_ops: int = 80_000_000,
               engine: Optional[str] = None) -> Tuple[List, ExecutionStats]:
    """Execute a module (its main program by default); returns (results, stats)."""
    interp = Interpreter(module, max_ops=max_ops, engine=engine)
    if entry is None:
        results = interp.run_main()
    else:
        results = interp.call(entry, list(args))
    return results, interp.stats


__all__ = ["ENGINE_NAMES", "Interpreter", "ExecutionStats", "InterpreterError",
           "ExecutionLimitExceeded", "run_module"]
