"""Execution and performance substrate.

Replaces the paper's ARCHER2/Cirrus hardware: an IR interpreter produces
numerical results plus dynamic operation counts, and the machine models
convert those counts into modeled runtimes (see DESIGN.md for the
substitution rationale).
"""

from .interpreter import (ENGINE_NAMES, ExecutionLimitExceeded,
                          ExecutionStats, Interpreter, InterpreterError,
                          run_module)
from .models import (ARCHER2, CIRRUS_V100, CRAY_PROFILE, FLANG_V17_PROFILE,
                     FLANG_V20_PROFILE, GNU_PROFILE, NVFORTRAN_PROFILE,
                     OURS_PROFILE, CompilerProfile, CPUModel, GPUModel)
from .perf import (PerformanceModel, RuntimeBreakdown, WorkloadScaling,
                   modeled_runtime)
from .profiler import InstructionMix, profile_module, profile_stats
from .semantics import int_ceildiv, int_div, int_floordiv, int_rem
from .values import (Cell, ElementPtr, FortranArray, as_ndarray, load_element,
                     store_element)

__all__ = [
    "ENGINE_NAMES", "ExecutionLimitExceeded", "ExecutionStats", "Interpreter",
    "InterpreterError", "run_module", "ARCHER2", "CIRRUS_V100", "CRAY_PROFILE",
    "FLANG_V17_PROFILE", "FLANG_V20_PROFILE", "GNU_PROFILE",
    "NVFORTRAN_PROFILE", "OURS_PROFILE", "CompilerProfile", "CPUModel",
    "GPUModel", "PerformanceModel", "RuntimeBreakdown", "WorkloadScaling",
    "InstructionMix", "modeled_runtime", "profile_module", "profile_stats",
    "Cell", "ElementPtr", "FortranArray",
    "as_ndarray", "load_element", "store_element", "int_div", "int_rem",
    "int_floordiv", "int_ceildiv",
]
