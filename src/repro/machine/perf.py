"""Runtime estimation from dynamic operation counts.

The interpreter executes each compiled benchmark at a *reduced* problem size
and records dynamic operation counts per category and context; this module
converts those counts into a modeled wall-clock time at the *paper's* problem
size by

1. scaling the counts by the workload's work ratio (full size / interpreted
   size — linear for stencils per sweep, cubic for matmul, ...),
2. applying a compiler capability profile (vectorisation fraction, address
   arithmetic overhead, runtime-library usage) for the reference compilers
   that we cannot rebuild, and the identity profile for the two flows we do
   build (their differences are already structural, visible in the counts),
3. feeding the scaled counts through a simple issue/bandwidth machine model
   (compute-bound vs memory-bound roofline, OpenMP fork/join and bandwidth
   saturation for threading, kernel launch plus HBM roofline for GPU).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .interpreter import ExecutionStats
from .models import (ARCHER2, CIRRUS_V100, CompilerProfile, CPUModel,
                     GPUModel, OURS_PROFILE)


@dataclass
class WorkloadScaling:
    """How interpreted work relates to full-size work."""

    work_ratio: float = 1.0          # full work units / interpreted work units
    bytes_per_element: float = 8.0
    #: working set at full size (bytes) — drives the memory-bound model
    working_set_bytes: float = 0.0
    #: fraction of dynamic work that is inside parallel regions when threaded
    parallel_fraction: float = 0.95


@dataclass
class RuntimeBreakdown:
    compute_s: float = 0.0
    memory_s: float = 0.0
    runtime_library_s: float = 0.0
    overhead_s: float = 0.0
    total_s: float = 0.0
    bound: str = "compute"

    def as_dict(self) -> Dict[str, float]:
        return {"compute_s": self.compute_s, "memory_s": self.memory_s,
                "runtime_library_s": self.runtime_library_s,
                "overhead_s": self.overhead_s, "total_s": self.total_s}


class PerformanceModel:
    """Converts execution statistics into modeled runtimes."""

    def __init__(self, cpu: CPUModel = ARCHER2, gpu: GPUModel = CIRRUS_V100):
        self.cpu = cpu
        self.gpu = gpu

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _scaled(stats: ExecutionStats, category: str, ratio: float,
                contexts=None) -> float:
        return stats.total(category, contexts) * ratio

    # ------------------------------------------------------------------ CPU serial
    def cpu_runtime(self, stats: ExecutionStats, scaling: WorkloadScaling,
                    profile: CompilerProfile = OURS_PROFILE,
                    threads: int = 1) -> RuntimeBreakdown:
        cpu = self.cpu
        r = scaling.work_ratio
        contexts = None  # all contexts

        scalar_fp = (self._scaled(stats, "float_arith", r, contexts)
                     + self._scaled(stats, "float_fma", r, contexts)
                     + self._scaled(stats, "cmp", r, contexts) * 0.5)
        vector_fp = (self._scaled(stats, "vector_float", r, contexts)
                     + self._scaled(stats, "vector_int", r, contexts) * 0.5)
        math_fp = self._scaled(stats, "float_math", r, contexts)
        int_ops = (self._scaled(stats, "int_arith", r, contexts)
                   + self._scaled(stats, "index_arith", r, contexts)
                   + self._scaled(stats, "cast", r, contexts) * 0.5)
        loads = self._scaled(stats, "load", r, contexts)
        stores = self._scaled(stats, "store", r, contexts)
        vloads = self._scaled(stats, "vector_load", r, contexts)
        vstores = self._scaled(stats, "vector_store", r, contexts)
        array_elems = self._scaled(stats, "array_assign_elements", r, contexts) + \
            self._scaled(stats, "linalg_elements", r, contexts)
        branches = (self._scaled(stats, "branch", r, contexts)
                    + self._scaled(stats, "loop_iter", r, contexts))
        runtime_elems = self._scaled(stats, "runtime_elem", r, contexts)
        runtime_calls = sum(stats.runtime_calls.values())
        allocs = stats.total("alloc") + stats.total("free")

        # apply the compiler capability profile (structural rescaling for the
        # reference compilers; identity for the flows whose IR we actually ran)
        if profile.vector_fraction > 0 and profile.vector_width > 1 and vector_fp == 0:
            moved = scalar_fp * profile.vector_fraction
            scalar_fp -= moved
            vector_fp += moved / profile.vector_width
            moved_mem = (loads + stores) * profile.vector_fraction
            loads -= moved_mem * (loads / max(loads + stores, 1.0))
            stores -= moved_mem * (stores / max(loads + stores, 1.0))
            vloads += moved_mem / profile.vector_width
        int_ops *= profile.index_overhead
        loads *= profile.memory_overhead
        stores *= profile.memory_overhead
        branches *= profile.loop_overhead

        # compute time (cycles)
        cycles = (scalar_fp / cpu.scalar_flops_per_cycle
                  + vector_fp / cpu.vector_ops_per_cycle
                  + math_fp * cpu.math_func_cycles
                  + int_ops / cpu.int_ops_per_cycle
                  + (loads + stores) / cpu.mem_ops_per_cycle
                  + (vloads + vstores) / cpu.mem_ops_per_cycle
                  + array_elems * (1.0 / profile.runtime_efficiency)
                  + branches * cpu.branch_cycles)
        runtime_cycles = (runtime_elems * 2.0 / profile.runtime_efficiency
                          + runtime_calls * cpu.runtime_call_cycles)
        compute_s = cycles * cpu.cycle_time_s
        runtime_library_s = runtime_cycles * cpu.cycle_time_s

        # memory time (roofline); a single core cannot saturate the socket,
        # so serial runs see the per-core sustainable bandwidth
        bytes_moved = (loads + stores + array_elems + runtime_elems
                       + (vloads + vstores) * profile.vector_width
                       ) * scaling.bytes_per_element
        serial_bw = cpu.per_core_bandwidth_gbs * 1e9 * profile.bandwidth_efficiency
        bandwidth = serial_bw if threads <= 1 else \
            cpu.dram_bandwidth_gbs * 1e9 * profile.bandwidth_efficiency
        memory_s = bytes_moved / bandwidth
        overhead_s = allocs * 400 * cpu.cycle_time_s

        serial_total = max(compute_s, memory_s) + runtime_library_s + overhead_s
        if threads <= 1:
            return RuntimeBreakdown(compute_s, memory_s, runtime_library_s,
                                    overhead_s, serial_total,
                                    "memory" if memory_s > compute_s else "compute")
        return self._threaded(stats, scaling, profile, threads, compute_s,
                              memory_s, runtime_library_s, overhead_s)

    # ------------------------------------------------------------------ threading
    def _threaded(self, stats, scaling, profile, threads, compute_s, memory_s,
                  runtime_library_s, overhead_s) -> RuntimeBreakdown:
        cpu = self.cpu
        par = scaling.parallel_fraction
        serial_part = (compute_s + runtime_library_s) * (1 - par)
        parallel_compute = compute_s * par * profile.omp_body_overhead / threads

        # memory: bandwidth is shared; but when the per-thread working set
        # drops below the aggregate cache, bandwidth pressure falls away
        # (this is what lets jacobi scale super-linearly at 64 cores).
        working_set = scaling.working_set_bytes
        cache_bytes = cpu.llc_per_core_mib * 1024 * 1024 * threads
        if working_set > 0 and working_set < cache_bytes:
            cache_factor = max(0.08, working_set / cache_bytes)
        else:
            cache_factor = 1.0
        shared_bw_s = memory_s * par * cache_factor
        # bandwidth saturates: only ~8-10 cores worth of streams saturate a socket
        bw_scaling = min(threads, 10.0) * (self.cpu.dram_bandwidth_gbs /
                                           (self.cpu.per_core_bandwidth_gbs * 10.0))
        parallel_memory = shared_bw_s / bw_scaling + memory_s * (1 - par)

        fork_join_s = cpu.omp_fork_cycles * cpu.cycle_time_s * max(
            1, stats.parallel_regions)
        total = serial_part + max(parallel_compute, parallel_memory) + \
            fork_join_s + overhead_s
        return RuntimeBreakdown(parallel_compute, parallel_memory,
                                runtime_library_s * (1 - par), fork_join_s + overhead_s,
                                total, "memory" if parallel_memory > parallel_compute
                                else "compute")

    # ------------------------------------------------------------------ GPU
    def gpu_runtime(self, stats: ExecutionStats, scaling: WorkloadScaling,
                    profile: CompilerProfile = OURS_PROFILE) -> RuntimeBreakdown:
        gpu = self.gpu
        r = scaling.work_ratio
        gpu_ctx = ["gpu"]
        flops = (self._scaled(stats, "float_arith", r, gpu_ctx)
                 + self._scaled(stats, "float_fma", r, gpu_ctx) * 2
                 + self._scaled(stats, "float_math", r, gpu_ctx) * 4
                 + self._scaled(stats, "vector_float", r, gpu_ctx) * 4)
        mem_ops = (self._scaled(stats, "load", r, gpu_ctx)
                   + self._scaled(stats, "store", r, gpu_ctx)
                   + (self._scaled(stats, "vector_load", r, gpu_ctx)
                      + self._scaled(stats, "vector_store", r, gpu_ctx)) * 4)
        bytes_moved = mem_ops * scaling.bytes_per_element
        compute_s = flops / (gpu.fp64_tflops * 1e12 * gpu.efficiency)
        memory_s = bytes_moved / (gpu.hbm_bandwidth_gbs * 1e9 * profile.bandwidth_efficiency)
        launches = max(1, stats.gpu_kernel_launches)
        overhead_s = launches * gpu.kernel_launch_us * 1e-6
        overhead_s += (scaling.working_set_bytes / 2 ** 30) * \
            gpu.host_register_ms_per_gib * 1e-3
        # host-side (serial) part of the program
        host = self.cpu_runtime(stats, WorkloadScaling(work_ratio=r,
                                                       working_set_bytes=scaling.working_set_bytes),
                                profile, threads=1)
        host_serial_s = 0.05 * host.total_s
        total = max(compute_s, memory_s) + overhead_s + host_serial_s
        return RuntimeBreakdown(compute_s, memory_s, 0.0, overhead_s, total,
                                "memory" if memory_s > compute_s else "compute")


def modeled_runtime(module, scaling: WorkloadScaling, *,
                    model: Optional[PerformanceModel] = None,
                    profile: CompilerProfile = OURS_PROFILE,
                    threads: int = 1, gpu: bool = False,
                    engine: str = "compiled",
                    max_ops: int = 80_000_000) -> RuntimeBreakdown:
    """Execute ``module`` on the requested engine and model its runtime.

    One-stop convenience for callers outside the service path: the engine
    (compiled / reference / jit) is an argument rather than being hardcoded
    to the cached-dispatch engine.
    """
    from .interpreter import Interpreter

    interpreter = Interpreter(module, max_ops=max_ops, engine=engine)
    interpreter.run_main()
    model = model or PerformanceModel()
    if gpu:
        return model.gpu_runtime(interpreter.stats, scaling, profile)
    return model.cpu_runtime(interpreter.stats, scaling, profile,
                             threads=threads)


__all__ = ["PerformanceModel", "RuntimeBreakdown", "WorkloadScaling",
           "modeled_runtime"]
