"""The ``vector`` execution engine: whole-array numpy evaluation of loop nests.

Blocks compile exactly like the ``compiled`` engine — a cached list of
thunks — except that a structured loop (``scf.for`` / ``affine.for`` /
``fir.do_loop``) whose nest :func:`~repro.machine.loop_patterns.match_nest`
admits becomes a single :class:`_NestThunk`.  Invoking the thunk evaluates
the *entire* nest as one batch of numpy array operations:

* each loop's induction variable becomes an ``np.arange`` grid reshaped to
  its own broadcast axis (axis == loop depth), so an N-deep nest evaluates
  its body once over N-dimensional arrays instead of once per iteration;
* loads gather, stores scatter, ``iter_args`` accumulators reduce with the
  matching ufunc (restricted to combiners whose whole-array fold is
  bit-identical to the sequential one);
* ``cmpi``/``cmpf``/``divsi``/``remsi`` run through the same
  :mod:`~repro.machine.semantics` kernels the iterative engines use, so
  div-by-zero → 0, NaN-aware comparisons and two's-complement wrap are
  preserved element-wise;
* ``ExecutionStats`` are synthesized analytically from the trip counts and
  the plan's per-loop category footprint — bit-identical to what the
  iterative engines would have counted, without executing any Python
  per-iteration work.

Evaluation is all-or-nothing: gathers/compute/validation are side-effect
free, and only a fully validated nest commits its scatters, cell updates,
stats and loop results.  Any guard failure — zero or runtime-varying trip
counts, aliased or non-injective stores, a value shape the evaluator cannot
prove — raises the private :class:`_Abort` and the nest falls back to the
iterative handler *for that invocation only* (after a few consecutive
aborts the site pins itself to the iterative path).  Fallback re-enters
this engine for inner blocks, so unmatched outer loops still vectorize
their inner nests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir import types as ir_types
from .interpreter import (
    _FLOAT_BINOPS, _FUSED_WITH_NEXT, _INT_BINOPS, _MATH_UNARY,
    Interpreter)
from .loop_patterns import (_CAST_OPS, LOOP_OPS, VECTOR_WORK_FLOOR,
                            estimated_nest_work, match_nest)
from .semantics import (
    CMPF, CMPI_SIGNED, CMPI_UNSIGNED, as_unsigned, int_width)
from .values import Cell, ElementPtr, FortranArray

#: Consecutive aborts after which a nest site stops re-trying whole-array
#: evaluation and pins itself to the iterative handler.
_MAX_ABORTS = 3
#: Upper bound on the element count of any broadcast grid; nests larger
#: than this fall back (guards memory blow-up on huge trip products).
_MAX_ELEMENTS = 1 << 22

_POW_OPS = frozenset({"math.powf", "math.fpowi", "math.ipowi"})
_FMA_OPS = frozenset({"math.fma", "llvm.intr.fmuladd"})


class _Abort(Exception):
    """Internal: whole-array evaluation declined; fall back iteratively."""


def _scalarizer_for(value):
    """How the per-iteration engines would have *typed* this stored value.

    A value produced by an ``arith`` cast is a Python ``float``/``int``/
    ``bool`` per iteration (``fir.convert`` has no bool case); everything
    else keeps whatever numpy scalar the grid element already is.  Used
    when finalizing a Cell from the last grid element.
    """
    op = getattr(value, "op", None)
    if op is None:
        return None
    name = op.name
    if name in _CAST_OPS:
        t = op.results[0].type
        if isinstance(t, ir_types.FloatType):
            return float
        if isinstance(t, ir_types.IntegerType) and t.width == 1:
            return bool
        if isinstance(t, (ir_types.IntegerType, ir_types.IndexType)):
            return int
    elif name == "fir.convert":
        t = op.results[0].type
        if isinstance(t, ir_types.FloatType):
            return float
        if isinstance(t, (ir_types.IntegerType, ir_types.IndexType)):
            return int
    return None


class _Ref:
    """A deferred element reference (the whole-array ElementPtr analogue).

    ``kind`` is ``"fa"`` (FortranArray + flat offset grid), ``"nd"``
    (ndarray + per-axis index grids), ``"ndflat"`` (ndarray + flat offset)
    or ``"cell"`` (a Cell; idx unused).
    """

    __slots__ = ("kind", "base", "idx")

    def __init__(self, kind: str, base, idx=None):
        self.kind = kind
        self.base = base
        self.idx = idx


class _Store:
    """One deferred scatter: normalized flat positions + cast values."""

    __slots__ = ("seq", "key", "target", "comps", "nidx", "value", "lost",
                 "full")

    def __init__(self, seq, key, target, comps, nidx, value, lost, full):
        self.seq = seq
        self.key = key
        self.target = target    # ndarray to assign into at commit
        self.comps = comps      # per-axis normalized indices, or None (flat)
        self.nidx = nidx        # normalized flat positions (hazard space)
        self.value = value
        self.lost = lost        # write into a non-view copy: silently dropped
        #: the index pattern spans the whole enclosing iteration subspace —
        #: together with the uniqueness check, every nest iteration writes a
        #: *distinct* location, so no location is ever revisited
        self.full = full


class _NestEval:
    """One side-effect-free whole-array evaluation of a matched nest."""

    def __init__(self, interp: Interpreter, plan, env: Dict):
        self.interp = interp
        self.plan = plan
        self.env = env
        self.vals: Dict = {}
        #: ids of ndarrays this evaluation created as broadcast grids; any
        #: *other* ndarray reaching arithmetic is a foreign value we cannot
        #: prove scalar-per-iteration, so alignment aborts on it
        self.grid_ids = set()
        self.iv_ids = set()
        self.path: List[int] = []       # loop indices from root to here
        self.shape: List[int] = []      # trip counts along self.path
        self.numel = 1
        self.rt_trips: List[int] = [0] * len(plan.loops)
        self.rt_inits: List[List] = [None] * len(plan.loops)
        self.rt_final_iv: List[int] = [0] * len(plan.loops)
        self.seq = 0
        self.stores: List[_Store] = []
        self.pending: Dict[int, List[_Store]] = {}
        self.loads: List[Tuple[int, int, np.ndarray]] = []
        self.bufs: Dict[int, np.ndarray] = {}
        self.cell_binds: Dict[int, Tuple] = {}
        self.cell_events: List[Tuple[int, bool, int]] = []
        self.root_results: List[Tuple] = []

    # ------------------------------------------------------------------ driving
    def run(self) -> None:
        for step in self.plan.steps:
            tag = step[0]
            if tag == "op":
                self._op(step[1], step[2])
            elif tag == "loop":
                self._enter(step[1])
            else:
                self._exit(step[1])
        self._validate()

    # ------------------------------------------------------------------ values
    def value(self, v):
        vals = self.vals
        if v in vals:
            return vals[v]
        return self.env[v]

    def _set(self, v, x) -> None:
        if isinstance(x, np.ndarray):
            self.grid_ids.add(id(x))
        self.vals[v] = x

    def _align(self, x, d: int):
        """Pad a grid with trailing unit axes up to broadcast depth ``d``."""
        if isinstance(x, np.ndarray):
            if id(x) not in self.grid_ids:
                raise _Abort
            nd = x.ndim
            if nd > d:
                raise _Abort
            if nd < d:
                return x.reshape(x.shape + (1,) * (d - nd))
        return x

    def _scalar_int(self, v) -> int:
        x = self.value(v)
        if isinstance(x, np.ndarray):
            raise _Abort        # runtime-varying (grid) loop bound
        return int(x)

    def _int_like(self, x):
        """Index component as the iterative ``int(...)`` would produce."""
        if isinstance(x, np.ndarray):
            if x.dtype.kind not in "iub":
                raise _Abort
            return x if x.dtype == np.int64 else x.astype(np.int64)
        return int(x)

    def _int_grid(self, x: np.ndarray) -> np.ndarray:
        """Grid equivalent of per-element ``int(...)`` (trunc, guarded)."""
        if x.dtype.kind == "f":
            if not np.all(np.isfinite(x)) or np.any(np.abs(x) >= 2 ** 63):
                raise _Abort    # per-iteration int() would raise
            return x.astype(np.int64)
        return x.astype(np.int64)

    # ------------------------------------------------------------------ loops
    def _enter(self, index: int) -> None:
        info = self.plan.loops[index]
        op = info.op
        if info.kind == "affine":
            lops = [self._scalar_int(v) for v in op.lower_operands]
            uops = [self._scalar_int(v) for v in op.upper_operands]
            lo = op.lower_bound_map.evaluate(lops)[0]
            hi = op.upper_bound_map.evaluate(uops)[0]
            st = op.step_value
            if st <= 0:
                raise _Abort    # iterative engine would not terminate
            trips = -((lo - hi) // st) if hi > lo else 0
            adv = st
        else:
            lo = self._scalar_int(op.operands[0])
            hi = self._scalar_int(op.operands[1])
            st = self._scalar_int(op.operands[2])
            if info.kind == "scf":
                # exclusive bound; non-positive step runs exactly once
                if lo >= hi:
                    trips = 0
                elif st <= 0:
                    trips = 1
                else:
                    trips = -((lo - hi) // st)
                adv = st if st > 0 else 0
            else:
                # fir.do_loop: inclusive bound, step 0 behaves as 1
                adv = st if st != 0 else 1
                if adv > 0:
                    trips = (hi - lo) // adv + 1 if lo <= hi else 0
                else:
                    trips = (lo - hi) // (-adv) + 1 if lo >= hi else 0
                self.rt_final_iv[index] = lo + trips * adv
        if trips <= 0:
            raise _Abort        # zero-trip: iterate (nothing to batch)
        if self.numel * trips > _MAX_ELEMENTS:
            raise _Abort
        self.rt_trips[index] = trips
        depth = len(self.path)
        iv = np.arange(trips, dtype=np.int64)
        if adv != 1:
            iv = iv * adv
        if lo != 0:
            iv = iv + lo
        iv = iv.reshape((1,) * depth + (trips,))
        self.path.append(index)
        self.shape.append(trips)
        self.numel *= trips
        body = info.body
        self._set(body.args[0], iv)
        self.iv_ids.add(id(iv))
        self.rt_inits[index] = [self.value(red.init)
                                for red in info.reductions]

    def _exit(self, index: int) -> None:
        info = self.plan.loops[index]
        trips = self.shape.pop()
        self.path.pop()
        self.numel //= trips
        results = []
        if info.kind == "fir":
            results.append(self.rt_final_iv[index])
        for red, init in zip(info.reductions, self.rt_inits[index]):
            results.append(self._reduce(red, init, trips))
        if info.parent < 0:
            self.root_results = list(zip(info.op.results, results))
        else:
            for res, val in zip(info.op.results, results):
                self._set(res, val)

    def _reduce(self, red, init, trips: int):
        kind = red.kind
        e = self.value(red.expr)
        outer = len(self.shape)
        if isinstance(e, np.ndarray):
            full = tuple(self.shape) + (trips,)
            eb = np.broadcast_to(self._align(e, outer + 1), full)
            if eb.dtype.kind == "b":
                raise _Abort
            if kind == "arith.addi":
                r = np.add.reduce(eb, axis=-1, dtype=eb.dtype)
            elif kind == "arith.muli":
                r = np.multiply.reduce(eb, axis=-1, dtype=eb.dtype)
            elif kind in ("arith.maxsi", "arith.maximumf"):
                r = np.maximum.reduce(eb, axis=-1)
            else:
                r = np.minimum.reduce(eb, axis=-1)
            ia = self._align(init, outer)
            if kind == "arith.addi":
                out = ia + r
            elif kind == "arith.muli":
                out = ia * r
            elif kind in ("arith.maxsi", "arith.maximumf"):
                out = np.maximum(ia, r)
            else:
                out = np.minimum(ia, r)
            if isinstance(out, np.ndarray):
                self.grid_ids.add(id(out))
            return out
        # invariant per-iteration contribution
        if isinstance(init, np.ndarray):
            raise _Abort
        if kind in ("arith.maxsi", "arith.minsi"):
            # idempotent: folding an invariant t times == folding it once
            return max(init, e) if kind == "arith.maxsi" else min(init, e)
        if kind in ("arith.maximumf", "arith.minimumf"):
            return np.maximum(init, e) if kind == "arith.maximumf" \
                else np.minimum(init, e)
        # exact only in unbounded Python ints; numpy scalars would wrap
        if not isinstance(init, int) or isinstance(init, bool) \
                or not isinstance(e, int) or isinstance(e, bool):
            raise _Abort
        if kind == "arith.addi":
            return init + e * trips
        if e not in (-1, 0, 1) and trips > 64:
            raise _Abort        # muli blow-up: fall back
        return init * e ** trips

    # ------------------------------------------------------------------ cells
    def _cell_load(self, cell: Cell, d: int):
        self.seq += 1
        bind = self.cell_binds.get(id(cell))
        # a load whose binding is not pointwise-exact for the current path
        # *broadcasts* one value across loop axes; that is only sound when
        # no later store rebinds the cell (validated against cell_events)
        full = bind is not None and bind[2] == tuple(self.path)
        self.cell_events.append((self.seq, False, id(cell), full))
        if bind is None:
            return cell.value
        value, path = bind[1], bind[2]
        if not isinstance(value, np.ndarray):
            return value
        prefix = 0
        for a, b in zip(path, self.path):
            if a != b:
                break
            prefix += 1
        bound_depth = len(path)
        v = self._align(value, bound_depth)
        if bound_depth > prefix:
            # axes beyond the common prefix re-ran to completion before
            # this read: the last write along them is the visible one
            v = v[(Ellipsis,) + (-1,) * (bound_depth - prefix)]
        return v

    def _cell_store(self, cell: Cell, value, op) -> None:
        if isinstance(value, _Ref):
            raise _Abort
        self.seq += 1
        self.cell_events.append((self.seq, True, id(cell), True))
        self.cell_binds[id(cell)] = (
            cell, value, tuple(self.path), _scalarizer_for(op.operands[0]))

    # ------------------------------------------------------------------ memory
    def _register_base(self, key: int, buf: np.ndarray) -> None:
        if key not in self.bufs:
            self.bufs[key] = buf

    def _flat_parts(self, ref: _Ref, d: int):
        """(key, buffer, normalized flat idx, raw idx array) for fa/ndflat."""
        if ref.kind == "fa":
            buf = ref.base.data
        else:
            buf = ref.base.reshape(-1)
        idx = self._align(ref.idx, d)
        ia = np.asarray(idx)
        if ia.dtype.kind not in "iu":
            raise _Abort
        return id(ref.base), buf, ia.astype(np.int64), ia

    def _gather(self, ref: _Ref, d: int):
        kind = ref.kind
        if kind == "cell":
            return self._cell_load(ref.base, d)
        if kind in ("fa", "ndflat"):
            key, buf, nflat, ia = self._flat_parts(ref, d)
            value = buf[ia if ia.ndim else int(ia)]
            nflat = nflat % buf.size
        else:
            base = ref.base
            if len(ref.idx) != base.ndim:
                raise _Abort
            key = id(base)
            buf = base
            aligned = [np.asarray(self._align(c, d)) for c in ref.idx]
            for c in aligned:
                if c.dtype.kind not in "iu":
                    raise _Abort
            value = base[tuple(a if a.ndim else int(a) for a in aligned)]
            if aligned:
                normed = [a.astype(np.int64) % s
                          for a, s in zip(aligned, base.shape)]
                normed = np.broadcast_arrays(*normed)
                nflat = np.ravel_multi_index(tuple(normed), base.shape)
            else:
                nflat = np.zeros((), dtype=np.int64)
        nflat = np.asarray(nflat)
        recs = self.pending.get(key)
        if recs:
            nshape = nflat.shape
            for rec in reversed(recs):
                if rec.lost:
                    continue
                if rec.nidx.shape == nshape \
                        and np.array_equal(rec.nidx, nflat):
                    value = rec.value    # forward the pending write
                    break
                if np.intersect1d(rec.nidx.ravel(), nflat.ravel()).size:
                    raise _Abort         # partial overlap: order-dependent
        self.seq += 1
        self.loads.append((self.seq, key, nflat))
        self._register_base(key, buf)
        if isinstance(value, np.ndarray):
            self.grid_ids.add(id(value))
        return value

    def _cast_store_value(self, value, buf: np.ndarray) -> np.ndarray:
        v = np.asarray(value)
        if v.dtype == buf.dtype:
            return v
        if v.dtype.kind not in "iufb":
            raise _Abort
        if buf.dtype.kind in "iu" and v.dtype.kind == "f":
            # per-iteration assignment would raise on non-finite / huge
            if not np.all(np.isfinite(v)) or np.any(np.abs(v) >= 2 ** 63):
                raise _Abort
        return v.astype(buf.dtype)

    def _scatter(self, ref: _Ref, value, d: int, op) -> None:
        kind = ref.kind
        if kind == "cell":
            self._cell_store(ref.base, value, op)
            return
        if isinstance(value, _Ref):
            raise _Abort
        value = self._align(value, d)
        if kind in ("fa", "ndflat"):
            key, buf, nflat, _ = self._flat_parts(ref, d)
            size = buf.size
            if np.any(nflat >= size) or np.any(nflat < -size):
                raise _Abort     # iterative store would raise IndexError
            nflat = nflat % size
            lost = ref.kind == "ndflat" \
                and not np.shares_memory(buf, ref.base)
            cast = self._cast_store_value(value, buf)
            nb, vb = np.broadcast_arrays(nflat, cast)
            rec = _Store(self._next_seq(), key, buf, None,
                         np.asarray(nb), np.asarray(vb), lost,
                         np.asarray(nb).size == self.numel)
        else:
            base = ref.base
            if len(ref.idx) != base.ndim:
                raise _Abort
            key = id(base)
            buf = base
            aligned = [np.asarray(self._align(c, d)) for c in ref.idx]
            normed = []
            for a, s in zip(aligned, base.shape):
                if a.dtype.kind not in "iu":
                    raise _Abort
                if np.any(a >= s) or np.any(a < -s):
                    raise _Abort
                normed.append(a.astype(np.int64) % s)
            cast = self._cast_store_value(value, base)
            parts = np.broadcast_arrays(*normed, cast)
            comps, vb = tuple(parts[:-1]), parts[-1]
            if comps:
                nflat = np.ravel_multi_index(comps, base.shape)
            else:
                nflat = np.zeros((), dtype=np.int64)
            rec = _Store(self._next_seq(), key, base, comps,
                         np.asarray(nflat), np.asarray(vb), False,
                         np.asarray(nflat).size == self.numel)
        self._register_base(key, buf if kind != "nd" else base)
        self.stores.append(rec)
        self.pending.setdefault(key, []).append(rec)

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def _ref_of_ptr(self, ptr: ElementPtr) -> _Ref:
        arr = ptr.array
        if isinstance(arr, Cell):
            return _Ref("cell", arr)
        if isinstance(arr, FortranArray):
            flat = ptr.flat if ptr.flat is not None \
                else arr.flat_index(ptr.indices)
            return _Ref("fa", arr, flat)
        if isinstance(arr, np.ndarray):
            if ptr.flat is not None:
                return _Ref("ndflat", arr, ptr.flat)
            return _Ref("nd", arr, tuple(int(i) for i in ptr.indices))
        raise _Abort

    # ------------------------------------------------------------------ body ops
    def _op(self, op, d: int) -> None:
        name = op.name
        if name in _INT_BINOPS:
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                if name == "arith.maxsi":
                    r = np.maximum(a, b)
                elif name == "arith.minsi":
                    r = np.minimum(a, b)
                elif name == "arith.andi":
                    r = a & b
                elif name == "arith.ori":
                    r = a | b
                elif name == "arith.xori":
                    r = a ^ b
                else:
                    r = _INT_BINOPS[name](a, b)
            else:
                r = _INT_BINOPS[name](a, b)
            self._set(op.results[0], r)
        elif name in _FLOAT_BINOPS:
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            self._set(op.results[0], _FLOAT_BINOPS[name](a, b))
        elif name == "fir.load":
            src = self.value(op.operands[0])
            t = type(src)
            if t is Cell:
                r = self._cell_load(src, d)
            elif t is _Ref:
                r = self._gather(src, d)
            elif t is ElementPtr:
                r = self._gather(self._ref_of_ptr(src), d)
            else:
                r = src
            self._set(op.results[0], r)
        elif name == "fir.store":
            value = self.value(op.operands[0])
            dest = self.value(op.operands[1])
            t = type(dest)
            if t is Cell:
                self._cell_store(dest, value, op)
            elif t is _Ref:
                self._scatter(dest, value, d, op)
            elif t is ElementPtr:
                self._scatter(self._ref_of_ptr(dest), value, d, op)
            else:
                raise _Abort     # iterative handler raises InterpreterError
        elif name in ("fir.array_coor", "hlfir.designate"):
            base = self.value(op.memref)
            if name == "hlfir.designate" and type(base) is Cell:
                base = base.value
            comps = [self._int_like(self._align(self.value(v), d))
                     for v in op.indices]
            self._set(op.results[0], self._mk_ref(base, comps))
        elif name == "fir.coordinate_of":
            base = self.value(op.operands[0])
            if len(op.operands) > 1:
                flat = self._int_like(
                    self._align(self.value(op.operands[1]), d))
            else:
                flat = 0
            if isinstance(base, FortranArray):
                ref = _Ref("fa", base, flat)
            elif isinstance(base, np.ndarray):
                if id(base) in self.grid_ids:
                    raise _Abort
                ref = _Ref("ndflat", base, flat)
            elif isinstance(base, Cell):
                ref = _Ref("cell", base)
            else:
                raise _Abort
            self._set(op.results[0], ref)
        elif name == "memref.load":
            mem = self.value(op.operands[0])
            if type(mem) is Cell:
                r = self._cell_load(mem, d)
            else:
                if not isinstance(mem, np.ndarray) \
                        or id(mem) in self.grid_ids:
                    raise _Abort
                comps = tuple(self._int_like(self._align(self.value(v), d))
                              for v in op.operands[1:])
                if not comps and mem.ndim == 0:
                    r = self._gather(_Ref("ndflat", mem, 0), d)
                else:
                    r = self._gather(_Ref("nd", mem, comps), d)
            self._set(op.results[0], r)
        elif name == "memref.store":
            value = self.value(op.operands[0])
            mem = self.value(op.operands[1])
            if type(mem) is Cell:
                self._cell_store(mem, value, op)
            else:
                if not isinstance(mem, np.ndarray) \
                        or id(mem) in self.grid_ids:
                    raise _Abort
                comps = tuple(self._int_like(self._align(self.value(v), d))
                              for v in op.operands[2:])
                if not comps and mem.ndim == 0:
                    self._scatter(_Ref("ndflat", mem, 0), value, d, op)
                else:
                    self._scatter(_Ref("nd", mem, comps), value, d, op)
        elif name == "affine.load":
            mem = self.value(op.operands[0])
            comps = [self._int_like(self._align(self.value(v), d))
                     for v in op.operands[1:]]
            indices = op.get_attr("map").evaluate(comps)
            if type(mem) is Cell:
                r = self._cell_load(mem, d)
            else:
                if not isinstance(mem, np.ndarray) \
                        or id(mem) in self.grid_ids:
                    raise _Abort
                if not indices and mem.ndim == 0:
                    r = self._gather(_Ref("ndflat", mem, 0), d)
                else:
                    r = self._gather(_Ref("nd", mem, tuple(indices)), d)
            self._set(op.results[0], r)
        elif name == "affine.store":
            value = self.value(op.operands[0])
            mem = self.value(op.operands[1])
            comps = [self._int_like(self._align(self.value(v), d))
                     for v in op.operands[2:]]
            indices = op.get_attr("map").evaluate(comps)
            if type(mem) is Cell:
                self._cell_store(mem, value, op)
            else:
                if not isinstance(mem, np.ndarray) \
                        or id(mem) in self.grid_ids:
                    raise _Abort
                if not indices and mem.ndim == 0:
                    self._scatter(_Ref("ndflat", mem, 0), value, d, op)
                else:
                    self._scatter(_Ref("nd", mem, tuple(indices)),
                                  value, d, op)
        elif name == "affine.apply":
            comps = [self._int_like(self._align(self.value(v), d))
                     for v in op.operands]
            r = op.get_attr("map").evaluate(comps)[0]
            self._set(op.results[0], r)
        elif name == "arith.constant":
            self.vals[op.results[0]] = op.get_attr("value").value
        elif name == "arith.cmpi":
            predicate = op.get_attr("predicate").value
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            fn = CMPI_SIGNED.get(predicate)
            if fn is not None:
                r = fn(a, b)
            else:
                width = int_width(op.operands[0].type)
                r = CMPI_UNSIGNED[predicate](as_unsigned(a, width),
                                             as_unsigned(b, width))
            self._set(op.results[0], r)
        elif name == "arith.cmpf":
            fn = CMPF[op.get_attr("predicate").value]
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            self._set(op.results[0], fn(a, b))
        elif name == "arith.select":
            c = self._align(self.value(op.operands[0]), d)
            a = self._align(self.value(op.operands[1]), d)
            b = self._align(self.value(op.operands[2]), d)
            if isinstance(c, np.ndarray):
                self._set(op.results[0], self._where(c, a, b))
            else:
                self._set(op.results[0], a if c else b)
        elif name in _CAST_OPS:
            x = self._align(self.value(op.operands[0]), d)
            target = op.results[0].type
            if isinstance(x, np.ndarray):
                if isinstance(target, ir_types.FloatType):
                    r = x.astype(np.float64)
                elif isinstance(target, ir_types.IntegerType) \
                        and target.width == 1:
                    r = x.astype(bool)
                elif isinstance(target, (ir_types.IntegerType,
                                         ir_types.IndexType)):
                    r = self._int_grid(x)
                else:
                    r = x
            else:
                if isinstance(target, ir_types.FloatType):
                    r = float(x)
                elif isinstance(target, ir_types.IntegerType) \
                        and target.width == 1:
                    r = bool(x)
                elif isinstance(target, (ir_types.IntegerType,
                                         ir_types.IndexType)):
                    r = int(x)
                else:
                    r = x
            self._set(op.results[0], r)
        elif name == "fir.convert":
            x = self.value(op.operands[0])
            target = op.results[0].type
            if isinstance(x, np.ndarray) and id(x) in self.grid_ids:
                x = self._align(x, d)
                if isinstance(target, ir_types.FloatType):
                    r = x.astype(np.float64)
                elif isinstance(target, (ir_types.IntegerType,
                                         ir_types.IndexType)):
                    r = self._int_grid(x)
                else:
                    r = x
            elif isinstance(x, (Cell, FortranArray, ElementPtr,
                                np.ndarray, _Ref)):
                r = x
            elif isinstance(target, ir_types.FloatType):
                r = float(x)
            elif isinstance(target, (ir_types.IntegerType,
                                     ir_types.IndexType)):
                r = int(x)
            else:
                r = x
            self._set(op.results[0], r)
        elif name in _MATH_UNARY:
            x = self._align(self.value(op.operands[0]), d)
            self._set(op.results[0], _MATH_UNARY[name](x))
        elif name in _POW_OPS:
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            self._set(op.results[0], a ** b)
        elif name in _FMA_OPS:
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            c = self._align(self.value(op.operands[2]), d)
            self._set(op.results[0], a * b + c)
        elif name == "math.atan2":
            a = self._align(self.value(op.operands[0]), d)
            b = self._align(self.value(op.operands[1]), d)
            self._set(op.results[0], np.arctan2(a, b))
        elif name == "arith.negf":
            x = self._align(self.value(op.operands[0]), d)
            self._set(op.results[0], -x)
        elif name == "fir.box_addr":
            self._set(op.results[0], self.value(op.operands[0]))
        elif name == "fir.box_dims":
            box = self.value(op.operands[0])
            dim = self.value(op.operands[1])
            if isinstance(dim, np.ndarray) \
                    or (isinstance(box, np.ndarray)
                        and id(box) in self.grid_ids):
                raise _Abort
            dim = int(dim)
            shape = box.shape \
                if isinstance(box, (FortranArray, np.ndarray)) else (1,)
            self._set(op.results[0], 1)
            self._set(op.results[1],
                      int(shape[dim]) if dim < len(shape) else 1)
            self._set(op.results[2], 1)
        elif name in ("fir.undefined", "fir.absent", "fir.zero_bits"):
            self.vals[op.results[0]] = 0
        else:
            raise _Abort

    def _where(self, c: np.ndarray, a, b):
        """``np.where`` guarded so dtype promotion cannot change values."""
        a_arr = isinstance(a, np.ndarray)
        b_arr = isinstance(b, np.ndarray)
        if a_arr and b_arr:
            if a.dtype != b.dtype:
                raise _Abort
            return np.where(c, a, b)
        # a mixed (array, Python scalar) pair is only promotion-safe when
        # everything is already IEEE double
        f64a = a.dtype == np.float64 if a_arr else type(a) is float
        f64b = b.dtype == np.float64 if b_arr else type(b) is float
        if f64a and f64b:
            return np.where(c, a, b)
        raise _Abort

    def _mk_ref(self, base, comps: List) -> _Ref:
        if isinstance(base, FortranArray):
            flat = 0
            for c, s in zip(comps, base.strides):
                flat = flat + (c - 1) * s
            if isinstance(flat, np.ndarray):
                self.grid_ids.add(id(flat))
            return _Ref("fa", base, flat)
        if isinstance(base, np.ndarray):
            if id(base) in self.grid_ids:
                raise _Abort
            return _Ref("nd", base, tuple(comps))
        if isinstance(base, Cell):
            # ElementPtr(cell, ...) ignores indices: cell semantics
            return _Ref("cell", base)
        raise _Abort

    # ------------------------------------------------------------------ validate
    def _validate(self) -> None:
        intersect = np.intersect1d
        for recs in self.pending.values():
            flats = []
            for rec in recs:
                if rec.lost:
                    flats.append(None)
                    continue
                flat = rec.nidx.ravel()
                if np.unique(flat).size != flat.size:
                    raise _Abort    # duplicate targets: order-dependent
                flats.append(flat)
            for i in range(len(recs)):
                if flats[i] is None:
                    continue
                for j in range(i + 1, len(recs)):
                    if flats[j] is None:
                        continue
                    if recs[i].nidx.shape == recs[j].nidx.shape \
                            and np.array_equal(recs[i].nidx, recs[j].nidx):
                        continue
                    if intersect(flats[i], flats[j]).size:
                        raise _Abort
        for lseq, lkey, lnidx in self.loads:
            recs = self.pending.get(lkey)
            if not recs:
                continue
            lshape = lnidx.shape
            lflat = lnidx.ravel()
            for rec in recs:
                if rec.lost or rec.seq < lseq:
                    continue    # earlier writes were resolved at load time
                if rec.full and rec.nidx.shape == lshape \
                        and np.array_equal(rec.nidx, lnidx):
                    # each iteration loads exactly the location it later
                    # stores, and no other iteration touches it
                    continue
                if intersect(rec.nidx.ravel(), lflat).size:
                    raise _Abort    # a later store may feed an earlier
                    # iteration's load (loop-carried read-modify-write)
        if self.cell_binds:
            last_store: Dict[int, int] = {}
            for seq, is_store, cid, _full in self.cell_events:
                if is_store:
                    last_store[cid] = seq
            for seq, is_store, cid, full in self.cell_events:
                if not is_store and not full \
                        and last_store.get(cid, 0) > seq:
                    # a broadcast read followed by a rebinding store is a
                    # loop-carried dependence (e.g. s = s + a(i)): decline
                    raise _Abort
        store_keys = set(self.pending)
        if store_keys:
            shares = np.shares_memory
            for sk in store_keys:
                sbuf = self.bufs[sk]
                for ok, obuf in self.bufs.items():
                    if ok != sk and shares(sbuf, obuf):
                        raise _Abort    # distinct bases over shared memory

    # ------------------------------------------------------------------ commit
    def commit(self) -> None:
        interp = self.interp
        counts = interp._ctx_counts
        plan = self.plan
        mults: List[int] = []
        total = 0
        for i, info in enumerate(plan.loops):
            m = self.rt_trips[i] * (mults[info.parent]
                                    if info.parent >= 0 else 1)
            mults.append(m)
            for cat, n in plan.cat_counts[i].items():
                counts[cat] += float(n * m)
            total += plan.tops[i] * m
        interp.stats.total_ops += total
        budget = interp._budget - total
        if budget <= 0:
            interp._check_limit()
            budget = interp._check_stride
        interp._budget = budget
        for rec in self.stores:
            if rec.lost:
                continue
            if rec.comps is None:
                if rec.nidx.ndim:
                    rec.target[rec.nidx] = rec.value
                else:
                    rec.target[int(rec.nidx)] = rec.value
            else:
                rec.target[rec.comps] = rec.value
        for cell, value, path, scal in self.cell_binds.values():
            if isinstance(value, np.ndarray):
                elem = value[(-1,) * value.ndim]
                if scal is not None:
                    elem = scal(elem)
                elif id(value) in self.iv_ids:
                    elem = int(elem)
                cell.value = elem
            else:
                cell.value = value
        env = self.env
        for res, val in self.root_results:
            env[res] = val


class _NestThunk:
    """Compiled-block step for one statically matched loop nest."""

    __slots__ = ("engine", "op", "plan", "handler", "aborts", "iterative")

    def __init__(self, engine: "VectorEngine", op, plan):
        self.engine = engine
        self.op = op
        self.plan = plan
        self.handler = Interpreter._resolve_handler(op.name)
        self.aborts = 0
        self.iterative = False

    def __call__(self, env):
        engine = self.engine
        if not self.iterative:
            ev = _NestEval(engine.interp, self.plan, env)
            try:
                ev.run()
            except _Abort:
                pass
            except Exception:
                # let the iterative handler raise the real error in context
                pass
            else:
                self.aborts = 0
                engine.vector_runs += 1
                ev.commit()
                return None
            self.aborts += 1
            if self.aborts >= _MAX_ABORTS:
                self.iterative = True
        engine.fallback_runs += 1
        return self.handler(engine.interp, self.op, env)


class VectorEngine:
    """Engine object bound to one Interpreter (mirrors ``JitEngine``)."""

    def __init__(self, interp: Interpreter):
        self.interp = interp
        self.cache: Dict = {}
        #: static match accounting (for tooling / the examples demo)
        self.matched_sites = 0
        self.declined_sites = 0
        #: matchable nests left iterative because their static work is too
        #: small for whole-array evaluation to pay off
        self.floor_declined_sites = 0
        #: dynamic accounting: whole-array evaluations vs iterative runs
        self.vector_runs = 0
        self.fallback_runs = 0

    def run_block(self, block, env) -> Tuple[str, object]:
        code = self.cache.get(block)
        if code is None:
            code = self.cache[block] = self._compile_block(block)
        interp = self.interp
        budget = interp._budget - len(code)
        if budget <= 0:
            interp._check_limit()
            budget = interp._check_stride
        interp._budget = budget
        for step in code:
            result = step(env)
            if result is not None:
                return result
        return "yield", (None, [])

    def _compile_block(self, block) -> List:
        interp = self.interp
        code: List = []
        ops = block.ops
        skip_next = False
        for position, op in enumerate(ops):
            if skip_next:
                skip_next = False
                continue
            follower = ops[position + 1] if position + 1 < len(ops) else None
            if op.name in LOOP_OPS:
                work = estimated_nest_work(op)
                if work is not None and work < VECTOR_WORK_FLOOR:
                    # tiny static nest: ndarray materialisation overhead
                    # dwarfs the loop itself — stay iterative
                    self.floor_declined_sites += 1
                elif (plan := match_nest(op)) is not None:
                    self.matched_sites += 1
                    code.append(_NestThunk(self, op, plan))
                    continue
                else:
                    self.declined_sites += 1
            thunk = interp._compile_op(op, follower)
            if thunk is _FUSED_WITH_NEXT:
                thunk = interp._fused_thunk(op, follower)
                skip_next = True
            code.append(thunk)
        return code


__all__ = ["VectorEngine"]
