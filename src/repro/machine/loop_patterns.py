"""Static analysis of structured loop nests for the ``vector`` engine.

:func:`match_nest` inspects an ``scf.for`` / ``affine.for`` /
``fir.do_loop`` operation and, when every operation in the (possibly
nested) loop bodies is pure element-wise / reduction / addressing
dataflow the whole-array evaluator understands, produces a
:class:`NestPlan`:

* a flattened, program-order list of steps (``enter loop`` / ``body op``
  / ``exit loop``), each tagged with the loop that directly contains it,
* per-loop statistics footprints — how many bumps of which
  :class:`~repro.machine.interpreter.ExecutionStats` category one
  iteration of that loop contributes — so the engine can synthesize the
  exact counters the iterative engines would have produced from the trip
  counts alone, and
* reduction specs for ``iter_args`` loops restricted to the shapes whose
  whole-array evaluation is bit-identical to sequential evaluation
  (integer ``addi``/``muli``, ``maxsi``/``minsi``,
  ``maximumf``/``minimumf``; float ``addf``/``mulf`` accumulators are
  *declined* because numpy's pairwise summation is not the sequential
  sum).

Everything here is static — no environment access, no numpy.  A matched
plan can still abort at run time (zero trips, runtime-varying bounds,
aliasing stores); the engine then falls back to the iterative handler
for that one nest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import types as ir_types
from ..ir.core import Operation, Value
from .interpreter import _FLOAT_BINOPS, _INT_BINOPS, _MATH_UNARY, _YIELD_OPS

#: Loop operations the matcher roots and nests on.
LOOP_OPS = frozenset({"scf.for", "affine.for", "fir.do_loop"})

_POW_OPS = frozenset({"math.powf", "math.fpowi", "math.ipowi"})
_FMA_OPS = frozenset({"math.fma", "llvm.intr.fmuladd"})
_CAST_OPS = frozenset({
    "arith.index_cast", "arith.sitofp", "arith.fptosi", "arith.extf",
    "arith.truncf", "arith.extsi", "arith.extui", "arith.trunci",
    "arith.bitcast"})
_LOAD_OPS = frozenset({"fir.load", "memref.load", "affine.load"})
_STORE_OPS = frozenset({"fir.store", "memref.store", "affine.store"})
_ADDRESS_OPS = frozenset({"fir.array_coor", "hlfir.designate",
                          "fir.coordinate_of", "affine.apply"})
_BOX_OPS = frozenset({"fir.box_addr", "fir.box_dims"})
#: Operations that bind a value but bump no statistics category.
_FREE_OPS = frozenset({"arith.constant", "fir.undefined", "fir.absent",
                       "fir.zero_bits"})

#: ``iter_args`` combiners whose whole-array reduction is bit-identical
#: to the sequential fold (associative over their value domain).
REDUCE_COMBINERS = frozenset({
    "arith.addi", "arith.muli", "arith.maxsi", "arith.minsi",
    "arith.maximumf", "arith.minimumf"})

_SCALAR_TYPES = (ir_types.FloatType, ir_types.IntegerType,
                 ir_types.IndexType)

#: Static per-entry work (trip-counted op executions) below which
#: whole-array evaluation loses to the iterative thunks: one nest
#: evaluation pays a fixed planning + array-materialization overhead that
#: only amortizes over enough element operations.  Nests with runtime
#: bounds estimate to ``None`` and are assumed hot.
VECTOR_WORK_FLOOR = 2048


def _is_scalar_type(t) -> bool:
    return isinstance(t, _SCALAR_TYPES)


def static_constant(value: Value):
    """The Python value of ``value`` when defined by ``arith.constant``."""
    op = getattr(value, "op", None)
    if op is not None and op.name == "arith.constant":
        return op.get_attr("value").value
    return None


def static_trip_count(op: Operation) -> Optional[int]:
    """Trip count of a loop whose bounds fold at compile time, else None."""
    if op.name == "affine.for":
        if op.lower_operands or op.upper_operands:
            return None
        lo = op.lower_bound_map.evaluate([])[0]
        hi = op.upper_bound_map.evaluate([])[0]
        st = op.step_value
        if st <= 0:
            return None
        return max(0, -((lo - hi) // st))
    lo = static_constant(op.operands[0])
    hi = static_constant(op.operands[1])
    st = static_constant(op.operands[2])
    if lo is None or hi is None or st is None:
        return None
    if op.name == "scf.for":
        if st <= 0:
            return None
        return max(0, -((lo - hi) // st))
    st = st if st != 0 else 1        # fir.do_loop: inclusive, step 0 -> 1
    if st > 0:
        return (hi - lo) // st + 1 if lo <= hi else 0
    return (lo - hi) // (-st) + 1 if lo >= hi else 0


def estimated_nest_work(op: Operation) -> Optional[int]:
    """Rough op executions one run of nest ``op`` performs; ``None`` =
    unknown (some bound only resolves at run time — assume hot)."""
    trips = static_trip_count(op)
    if trips is None:
        return None
    if not op.regions or len(op.regions[0].blocks) != 1:
        return None
    per_iteration = 1
    for body_op in op.regions[0].blocks[0].ops:
        if body_op.name in LOOP_OPS:
            inner = estimated_nest_work(body_op)
            if inner is None:
                return None
            per_iteration += inner
        else:
            per_iteration += 1
    return trips * per_iteration


def stats_category(op: Operation) -> Optional[str]:
    """The ExecutionStats category one execution of ``op`` bumps.

    Mirrors the compiled engine's thunk makers for *scalar* operands
    (matched nest bodies are scalar-typed by construction, so the
    runtime ndarray branches of those thunks never apply).  ``None``
    means the op binds a value without bumping anything.
    """
    name = op.name
    if name in _FREE_OPS or name == "fir.string_lit":
        return None
    if name in _FLOAT_BINOPS or name == "arith.negf":
        return "float_arith"
    if name in _INT_BINOPS:
        return "index_arith" \
            if isinstance(op.operands[0].type, ir_types.IndexType) \
            else "int_arith"
    if name in _MATH_UNARY or name in _POW_OPS or name == "math.atan2":
        return "float_math"
    if name in _FMA_OPS:
        return "float_fma"
    if name in ("arith.cmpi", "arith.cmpf"):
        return "cmp"
    if name == "arith.select":
        return "int_arith"
    if name in _CAST_OPS or name == "fir.convert":
        return "cast"
    if name in _LOAD_OPS or name in _BOX_OPS:
        return "load"
    if name in _STORE_OPS:
        return "store"
    if name in _ADDRESS_OPS:
        return "index_arith"
    raise AssertionError(f"unclassified nest op {name}")


class Reduction:
    """One ``iter_args`` accumulator in the restricted reduction shape:
    ``yield combiner(acc, expr)`` with ``acc`` single-use."""

    __slots__ = ("kind", "expr", "init", "combiner")

    def __init__(self, kind: str, expr: Value, init: Value,
                 combiner: Operation):
        self.kind = kind          # combiner op name
        self.expr = expr          # per-iteration contribution value
        self.init = init          # initial accumulator operand
        self.combiner = combiner  # the op itself (skipped during eval)


class LoopInfo:
    """One loop of a matched nest."""

    __slots__ = ("op", "kind", "depth", "parent", "reductions", "body")

    def __init__(self, op: Operation, kind: str, depth: int, parent: int):
        self.op = op
        self.kind = kind          # "scf" | "affine" | "fir"
        self.depth = depth        # number of enclosing nest loops
        self.parent = parent      # index of enclosing loop, -1 for root
        self.reductions: List[Reduction] = []
        self.body = op.regions[0].blocks[0]


class NestPlan:
    """Static evaluation plan for one matched loop nest.

    ``steps`` entries are ``("loop", index)``, ``("end", index)`` or
    ``("op", operation, depth, owner_loop_index)`` in program order.
    ``cat_counts[i]`` / ``tops[i]`` are the per-iteration stats footprint
    of loop ``i`` (categories bumped, total_ops increments) covering the
    loop's own ``loop_iter`` tick and every body op directly inside it.
    """

    __slots__ = ("root", "loops", "steps", "cat_counts", "tops")

    def __init__(self, root: Operation):
        self.root = root
        self.loops: List[LoopInfo] = []
        self.steps: List[Tuple] = []
        self.cat_counts: List[Dict[str, int]] = []
        self.tops: List[int] = []


def _loop_kind(name: str) -> str:
    return {"scf.for": "scf", "affine.for": "affine",
            "fir.do_loop": "fir"}[name]


def _iter_operands(op: Operation) -> List[Value]:
    """The initial accumulator operands of a loop op."""
    if op.name == "affine.for":
        return list(op.iter_args)
    return list(op.operands[3:])


def _defining_op(value: Value) -> Optional[Operation]:
    return getattr(value, "op", None)


def _match_reductions(info: LoopInfo, inits: List[Value],
                      terminator: Operation) -> bool:
    """Recognize every iter_arg as a restricted reduction; False declines."""
    body = info.body
    carried = list(body.args[1:])
    if len(terminator.operands) != len(carried):
        return False
    for arg, init, yielded in zip(carried, inits, terminator.operands):
        combiner = _defining_op(yielded)
        if combiner is None or combiner.parent is not body \
                or combiner.name not in REDUCE_COMBINERS:
            return False
        if len(arg.uses) != 1 or len(yielded.uses) != 1:
            return False
        a, b = combiner.operands[0], combiner.operands[1]
        if a is arg and b is not arg:
            expr = b
        elif b is arg and a is not arg:
            expr = a
        else:
            return False
        if expr in carried:
            return False
        info.reductions.append(
            Reduction(combiner.name, expr, init, combiner))
    return True


def _supported_body_op(op: Operation) -> bool:
    """Per-op admission check (loop ops handled by the caller)."""
    name = op.name
    if op.regions or op.successors:
        return False
    if name in _FREE_OPS or name == "fir.convert":
        return True
    if name in _LOAD_OPS or name in _STORE_OPS or name in _BOX_OPS:
        return True
    if name == "fir.coordinate_of":
        return op.get_attr("field") is None and len(op.operands) <= 2
    if name == "hlfir.designate":
        return op.component is None and not op.triplets
    if name in ("fir.array_coor", "affine.apply"):
        return True
    if name in _FLOAT_BINOPS or name in _INT_BINOPS or name in _MATH_UNARY \
            or name in _POW_OPS or name in _FMA_OPS \
            or name in ("arith.cmpi", "arith.cmpf", "arith.select",
                        "arith.negf", "math.atan2") or name in _CAST_OPS:
        # pure scalar dataflow only: vector-typed (e.g. vector<4xf64>)
        # operands/results would make the per-op runtime stats category
        # diverge from the static synthesis, so they decline the nest
        return all(_is_scalar_type(v.type) for v in op.operands) \
            and all(_is_scalar_type(r.type) for r in op.results)
    return False


def _walk(plan: NestPlan, loop_op: Operation, depth: int,
          parent: int) -> bool:
    """Admit ``loop_op`` and its body into the plan; False declines all."""
    region = loop_op.regions[0] if loop_op.regions else None
    if region is None or len(region.blocks) != 1:
        return False
    if loop_op.name != "affine.for" and len(loop_op.operands) < 3:
        return False
    info = LoopInfo(loop_op, _loop_kind(loop_op.name), depth, parent)
    index = len(plan.loops)
    plan.loops.append(info)
    plan.cat_counts.append({"loop_iter": 1})
    plan.tops.append(1)
    plan.steps.append(("loop", index))

    body = info.body
    inits = _iter_operands(loop_op)
    if len(body.args) != 1 + len(inits):
        return False
    ops = body.ops
    if not ops:
        return False
    terminator = ops[-1]
    if terminator.name not in _YIELD_OPS:
        return False
    if inits and not _match_reductions(info, inits, terminator):
        return False
    if not inits and terminator.operands:
        return False

    skip = {red.combiner for red in info.reductions}
    for op in ops[:-1]:
        if op.name in LOOP_OPS:
            if not _walk(plan, op, depth + 1, index):
                return False
            continue
        if not _supported_body_op(op):
            return False
        category = stats_category(op)
        if category is not None:
            plan.cat_counts[index][category] = \
                plan.cat_counts[index].get(category, 0) + 1
            plan.tops[index] += 1
        if op not in skip:
            plan.steps.append(("op", op, depth + 1, index))
    plan.steps.append(("end", index))
    return True


def match_nest(loop_op: Operation) -> Optional[NestPlan]:
    """A :class:`NestPlan` when the nest is statically admissible, else
    ``None`` (the caller keeps the iterative handler for the op)."""
    if loop_op.name not in LOOP_OPS:
        return None
    plan = NestPlan(loop_op)
    if not _walk(plan, loop_op, 0, -1):
        return None
    return plan


__all__ = ["LOOP_OPS", "REDUCE_COMBINERS", "VECTOR_WORK_FLOOR", "LoopInfo",
           "NestPlan", "Reduction", "match_nest", "stats_category",
           "static_constant", "static_trip_count", "estimated_nest_work"]
