"""Runtime value representations used by the IR interpreter.

* scalars are Python ints/floats/bools,
* FIR-level Fortran arrays are :class:`FortranArray` (flat column-major data
  plus the Fortran shape),
* memrefs are NumPy arrays (row-major, matching the reversed-dimension
  mapping of the standard flow) and rank-0 memrefs are :class:`Cell`,
* vector values are small NumPy arrays of the vector width,
* element references produced by HLFIR designators are :class:`ElementPtr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


class Cell:
    """A single mutable storage location (rank-0 memref / scalar fir.ref)."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value

    def __repr__(self):  # pragma: no cover
        return f"Cell({self.value!r})"


class FortranArray:
    """Column-major Fortran array storage used at the FIR level."""

    __slots__ = ("data", "shape", "strides")

    def __init__(self, shape: Sequence[int], dtype=np.float64,
                 data: Optional[np.ndarray] = None):
        self.shape = tuple(int(s) for s in shape)
        size = 1
        strides = []
        for s in self.shape:
            strides.append(size)
            size *= s
        #: column-major element strides, precomputed once (hot-path indexing)
        self.strides = tuple(strides)
        self.data = data if data is not None else np.zeros(size, dtype=dtype)

    # -- indexing (1-based Fortran indices) ---------------------------------------
    def flat_index(self, indices: Sequence[int]) -> int:
        """Column-major flattening of 1-based indices."""
        flat = 0
        for idx, stride in zip(indices, self.strides):
            flat += (int(idx) - 1) * stride
        return flat

    def get(self, indices: Sequence[int]):
        return self.data[self.flat_index(indices)]

    def set(self, indices: Sequence[int], value) -> None:
        self.data[self.flat_index(indices)] = value

    def as_numpy(self) -> np.ndarray:
        """The array as a NumPy ndarray with its Fortran shape."""
        return self.data.reshape(self.shape, order="F") if self.shape else self.data

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self):  # pragma: no cover
        return f"FortranArray(shape={self.shape})"


@dataclass(slots=True)
class ElementPtr:
    """A reference to one element of an array (FIR-level designator)."""

    array: object                       # FortranArray | np.ndarray | Cell
    indices: Tuple = ()                 # 1-based (FortranArray) or flat index
    flat: Optional[int] = None

    def load(self):
        if isinstance(self.array, Cell):
            return self.array.value
        if isinstance(self.array, FortranArray):
            if self.flat is not None:
                return self.array.data[self.flat]
            return self.array.get(self.indices)
        if self.flat is not None:
            return self.array.reshape(-1)[self.flat]
        return self.array[tuple(int(i) for i in self.indices)]

    def store(self, value) -> None:
        if isinstance(self.array, Cell):
            self.array.value = value
            return
        if isinstance(self.array, FortranArray):
            if self.flat is not None:
                self.array.data[self.flat] = value
            else:
                self.array.set(self.indices, value)
            return
        if self.flat is not None:
            self.array.reshape(-1)[self.flat] = value
        else:
            self.array[tuple(int(i) for i in self.indices)] = value


def load_element(array, indices: Tuple):
    """Read one element, as :meth:`ElementPtr.load` would for these indices,
    without allocating the intermediate pointer (interpreter fast path)."""
    t = type(array)
    if t is FortranArray:
        return array.get(indices)
    if t is Cell:
        return array.value
    return array[tuple(int(i) for i in indices)]


def store_element(array, indices: Tuple, value) -> None:
    """Write one element, as :meth:`ElementPtr.store` would for these indices,
    without allocating the intermediate pointer (interpreter fast path)."""
    t = type(array)
    if t is FortranArray:
        array.set(indices, value)
    elif t is Cell:
        array.value = value
    else:
        array[tuple(int(i) for i in indices)] = value


def as_ndarray(value) -> np.ndarray:
    """Any array-ish interpreter value as a NumPy ndarray."""
    if isinstance(value, FortranArray):
        return value.as_numpy()
    if isinstance(value, Cell):
        inner = value.value
        return as_ndarray(inner) if not np.isscalar(inner) and inner is not None \
            else np.asarray(inner)
    if isinstance(value, ElementPtr):
        return np.asarray(value.load())
    return np.asarray(value)


def numpy_dtype_for(type_obj) -> np.dtype:
    from ..ir import types as ir_types
    if isinstance(type_obj, ir_types.FloatType):
        return np.dtype(np.float32) if type_obj.width == 32 else np.dtype(np.float64)
    if isinstance(type_obj, ir_types.IntegerType):
        if type_obj.width == 1:
            return np.dtype(bool)
        return np.dtype(np.int32) if type_obj.width <= 32 else np.dtype(np.int64)
    return np.dtype(np.float64)


__all__ = ["Cell", "FortranArray", "ElementPtr", "as_ndarray",
           "load_element", "store_element", "numpy_dtype_for"]
