"""Executable profiling in the style of Section IV of the paper.

The paper profiles the tfft and induct benchmarks and reports, per compiler:
the fraction of floating-point instructions that were vectorised, the share
of instructions that are floating point, an estimate of memory-bound stalls
and the total number of instructions issued.  This module derives the same
quantities from the interpreter's dynamic operation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .interpreter import ExecutionStats


@dataclass
class InstructionMix:
    total_instructions: float
    floating_point_fraction: float
    vectorised_fp_fraction: float
    memory_op_fraction: float
    index_arith_fraction: float
    estimated_memory_stall_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_instructions": self.total_instructions,
            "floating_point_fraction": self.floating_point_fraction,
            "vectorised_fp_fraction": self.vectorised_fp_fraction,
            "memory_op_fraction": self.memory_op_fraction,
            "index_arith_fraction": self.index_arith_fraction,
            "estimated_memory_stall_fraction": self.estimated_memory_stall_fraction,
        }


def profile_module(module, *, work_ratio: float = 1.0,
                   engine: str = "compiled",
                   max_ops: int = 80_000_000) -> InstructionMix:
    """Execute ``module`` on the requested interpreter engine and profile it.

    The engine is a parameter (compiled / reference / jit) instead of being
    hardcoded to the cached-dispatch engine; all engines produce
    bit-identical statistics, so the mix is engine-independent — this hook
    exists so harness callers can route profiling through whichever engine
    they are already measuring with.
    """
    from .interpreter import Interpreter

    interpreter = Interpreter(module, max_ops=max_ops, engine=engine)
    interpreter.run_main()
    return profile_stats(interpreter.stats, work_ratio)


def profile_stats(stats: ExecutionStats, work_ratio: float = 1.0) -> InstructionMix:
    """Summarise an execution into a Section-IV style instruction mix."""
    # one pass over the per-context counters instead of one per category
    merged = stats.merged()
    scalar_fp = merged["float_arith"] + merged["float_fma"] + \
        merged["float_math"]
    vector_fp = merged["vector_float"]
    loads = merged["load"] + merged["vector_load"]
    stores = merged["store"] + merged["vector_store"]
    index_ops = merged["index_arith"] + merged["cast"]
    int_ops = merged["int_arith"]
    branches = merged["branch"] + merged["loop_iter"]
    runtime_elems = merged["runtime_elem"]

    total = (scalar_fp + vector_fp + loads + stores + index_ops + int_ops +
             branches + runtime_elems * 3) * work_ratio
    fp_total = scalar_fp + vector_fp + runtime_elems
    mem_total = loads + stores + runtime_elems
    fp_fraction = fp_total / total * work_ratio if total else 0.0
    vectorised = vector_fp / fp_total if fp_total else 0.0
    mem_fraction = mem_total * work_ratio / total if total else 0.0
    index_fraction = index_ops * work_ratio / total if total else 0.0
    # crude stall estimate: memory ops that cannot be hidden behind compute
    stall = min(0.95, mem_total / max(fp_total + mem_total, 1.0))
    return InstructionMix(
        total_instructions=total,
        floating_point_fraction=min(1.0, fp_fraction),
        vectorised_fp_fraction=vectorised,
        memory_op_fraction=min(1.0, mem_fraction),
        index_arith_fraction=min(1.0, index_fraction),
        estimated_memory_stall_fraction=stall,
    )


__all__ = ["InstructionMix", "profile_module", "profile_stats"]
