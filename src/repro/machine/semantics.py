"""Shared numeric semantics for ``arith`` operations.

Single source of truth for the value-level behaviour of integer division /
remainder and integer / float comparisons, following the LLVM/MLIR
reference semantics:

* ``divsi``/``remsi`` truncate toward zero (remainder takes the dividend's
  sign); ``floordivsi``/``ceildivsi`` round toward -inf/+inf.  Division by
  zero — undefined behaviour in LLVM — consistently yields 0 on every path
  (scalar and ndarray).
* unsigned ``cmpi`` predicates compare the two's-complement reinterpretation
  of the operands at the operand type's width.
* ``cmpf`` predicates are NaN-aware: ``o*`` forms are false when either
  operand is NaN, ``u*`` forms are true, ``ord``/``uno`` test for NaN.
  All forms are vectorized (ndarray operands produce boolean ndarrays).

Both the interpreter (:mod:`repro.machine.interpreter`) and the
canonicalizer's constant folder (:mod:`repro.transforms.cleanup`) evaluate
through these kernels, so folded constants can never diverge from
interpreted results.
"""

from __future__ import annotations

import math as pymath

import numpy as np

from ..ir import types as ir_types

#: Version of the numeric semantics every engine evaluates through.  Bump
#: whenever any kernel in this module (or the generated-code emission that
#: calls into it) changes observable behaviour: persisted jit translations
#: are salted with this constant, so a bump retires every stored translation
#: as a clean cache miss — exactly like the service's ``KEY_SCHEMA_VERSION``
#: retires artifacts.
SEMANTICS_VERSION = 1


# ---------------------------------------------------------------------------
# Integer division family (LLVM sdiv/srem + MLIR floordivsi/ceildivsi)
# ---------------------------------------------------------------------------

def int_div(a, b):
    """``arith.divsi``: truncate toward zero; division by zero yields 0."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        safe = np.where(b_arr == 0, 1, b_arr)
        q = np.abs(a_arr) // np.abs(safe)
        q = np.where((a_arr < 0) != (safe < 0), -q, q)
        return np.where(b_arr == 0, 0, q)
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def int_rem(a, b):
    """``arith.remsi``: truncated remainder (sign of the dividend);
    remainder by zero yields 0, matching :func:`int_div`."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        b_arr = np.asarray(b)
        r = np.fmod(a, np.where(b_arr == 0, 1, b_arr))
        return np.where(b_arr == 0, 0, r)
    if b == 0:
        return 0
    return a - int_div(a, b) * b


def int_floordiv(a, b):
    """``arith.floordivsi``: round toward negative infinity; b == 0 -> 0."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        b_arr = np.asarray(b)
        q = np.asarray(a) // np.where(b_arr == 0, 1, b_arr)
        return np.where(b_arr == 0, 0, q)
    return a // b if b else 0


def int_ceildiv(a, b):
    """``arith.ceildivsi``: round toward positive infinity; b == 0 -> 0."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return -int_floordiv(-np.asarray(a), b)
    return -((-a) // b) if b else 0


# ---------------------------------------------------------------------------
# Integer comparisons
# ---------------------------------------------------------------------------
#
# Signed predicates map directly onto Python/NumPy comparisons.  Unsigned
# predicates compare the two's-complement reinterpretation at the operand
# type's width, so e.g. ``-1 ugt 1`` is true for every width.

CMPI_SIGNED = {"eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
               "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
               "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b}
CMPI_UNSIGNED = {"ult": lambda a, b: a < b, "ule": lambda a, b: a <= b,
                 "ugt": lambda a, b: a > b, "uge": lambda a, b: a >= b}

_UNSIGNED_NP_DTYPE = ((8, np.uint8), (16, np.uint16), (32, np.uint32),
                      (64, np.uint64))


def int_width(type_obj) -> int:
    """Bit width of an integer-like IR type (index counts as word-sized)."""
    if isinstance(type_obj, ir_types.IntegerType):
        return type_obj.width
    if isinstance(type_obj, ir_types.VectorType):
        return int_width(type_obj.element_type)
    return 64  # index and anything else: target word size


def as_unsigned(value, width: int):
    """Two's-complement reinterpretation of ``value`` at ``width`` bits."""
    if isinstance(value, np.ndarray):
        for w, dtype in _UNSIGNED_NP_DTYPE:
            if width <= w:
                converted = value.astype(dtype)
                # sub-dtype widths (e.g. i1 vectors) still mask at `width`
                return converted if width == w \
                    else converted & dtype((1 << width) - 1)
        return value.astype(np.uint64)
    return int(value) & ((1 << width) - 1)


def cmpi_eval(predicate: str, width: int, a, b):
    """Evaluate an ``arith.cmpi`` predicate on scalars or ndarrays."""
    fn = CMPI_SIGNED.get(predicate)
    if fn is not None:
        return fn(a, b)
    return CMPI_UNSIGNED[predicate](as_unsigned(a, width),
                                    as_unsigned(b, width))


# ---------------------------------------------------------------------------
# Float comparisons (IEEE-754 / LLVM fcmp)
# ---------------------------------------------------------------------------
#
# Python and NumPy comparisons are already NaN-correct for every ordered
# predicate except ``one`` (``!=`` is an *unordered* inequality), so only
# ``one`` and the ``u*`` family need an explicit NaN term.

def _scalar_isnan(value) -> bool:
    try:
        return pymath.isnan(value)
    except TypeError:
        return False


def either_nan(a, b):
    """NaN test on either operand: bool for scalars, mask for ndarrays."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.isnan(a) | np.isnan(b)
    return _scalar_isnan(a) or _scalar_isnan(b)


def _ordered_and(base):
    def pred(a, b):
        nan = either_nan(a, b)
        if isinstance(nan, np.ndarray):
            return ~nan & base(a, b)
        return False if nan else base(a, b)
    return pred


def _unordered_or(base):
    def pred(a, b):
        nan = either_nan(a, b)
        if isinstance(nan, np.ndarray):
            return nan | base(a, b)
        return True if nan else base(a, b)
    return pred


def _ord(a, b):
    nan = either_nan(a, b)
    return ~nan if isinstance(nan, np.ndarray) else not nan


CMPF = {
    # NaN-correct as plain comparisons (both Python and NumPy)
    "oeq": lambda a, b: a == b, "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b, "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "one": _ordered_and(lambda a, b: a != b),
    "ord": _ord,
    "uno": either_nan,
    # ``!=`` is already the unordered inequality
    "une": lambda a, b: a != b,
    "ueq": _unordered_or(lambda a, b: a == b),
    "ult": _unordered_or(lambda a, b: a < b),
    "ule": _unordered_or(lambda a, b: a <= b),
    "ugt": _unordered_or(lambda a, b: a > b),
    "uge": _unordered_or(lambda a, b: a >= b),
}


__all__ = ["int_div", "int_rem", "int_floordiv", "int_ceildiv",
           "CMPI_SIGNED", "CMPI_UNSIGNED", "CMPF",
           "int_width", "as_unsigned", "cmpi_eval", "either_nan",
           "SEMANTICS_VERSION"]
