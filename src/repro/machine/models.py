"""Hardware models: the ARCHER2 CPU node and the Cirrus V100 GPU node.

The parameters describe the machines used in the paper's experimental setup
(Section III): ARCHER2 nodes have two AMD EPYC 7742 64-core processors at
2.25 GHz with AVX2 (256-bit vectors, i.e. 4 doubles), Cirrus GPU nodes have
NVIDIA V100-SXM2-16GB GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CPUModel:
    """A simple issue/bandwidth model of one CPU socket."""

    name: str = "AMD EPYC 7742 (ARCHER2)"
    frequency_ghz: float = 2.25
    cores: int = 64
    vector_width_f64: int = 4            # AVX2: 256-bit
    #: sustained scalar FP operations per cycle per core
    scalar_flops_per_cycle: float = 2.0
    #: sustained vector FP instructions per cycle per core
    vector_ops_per_cycle: float = 2.0
    #: integer/address operations per cycle per core
    int_ops_per_cycle: float = 3.0
    #: loads+stores per cycle per core (L1-resident)
    mem_ops_per_cycle: float = 2.0
    #: sustained DRAM bandwidth per socket (GB/s)
    dram_bandwidth_gbs: float = 190.0
    #: sustained DRAM bandwidth achievable from a single core (GB/s)
    per_core_bandwidth_gbs: float = 24.0
    #: last-level cache per core (MiB) — drives the cache model for threading
    llc_per_core_mib: float = 4.0
    #: branch/loop overhead cost in cycles
    branch_cycles: float = 1.0
    #: cost (cycles) of a call into the Fortran runtime library
    runtime_call_cycles: float = 220.0
    #: cost (cycles) of an OpenMP parallel region fork/join
    omp_fork_cycles: float = 12000.0
    #: libm-style scalar transcendental cost (cycles)
    math_func_cycles: float = 20.0

    @property
    def cycle_time_s(self) -> float:
        return 1.0e-9 / self.frequency_ghz


@dataclass(frozen=True)
class GPUModel:
    """A simple roofline-style model of one GPU."""

    name: str = "NVIDIA V100-SXM2-16GB (Cirrus)"
    fp64_tflops: float = 7.0
    hbm_bandwidth_gbs: float = 830.0
    kernel_launch_us: float = 8.0
    managed_memory_page_fault_us: float = 25.0
    #: achievable fraction of peak for naive generated kernels
    efficiency: float = 0.55
    #: host registration cost per GiB (managed memory)
    host_register_ms_per_gib: float = 90.0


ARCHER2 = CPUModel()
CIRRUS_V100 = GPUModel()


@dataclass(frozen=True)
class CompilerProfile:
    """Capability profile of a compiler's generated code.

    These scale the dynamic operation counts observed for the *same* program
    structure.  They are the documented substitution for the closed-source
    reference compilers (Cray, nvfortran) and for GNU Gfortran: profiles are
    calibrated from the paper's own profiling observations in Section IV
    (e.g. Flang produced entirely scalar FP; Gfortran vectorised ~47-67% of
    FP with 128-bit vectors; Cray vectorises aggressively with 256-bit).
    """

    name: str
    #: fraction of eligible floating point work that ends up vectorised
    vector_fraction: float = 0.0
    #: vector width (f64 lanes) used when vectorising
    vector_width: int = 1
    #: multiplier on index/address arithmetic per memory access
    index_overhead: float = 1.0
    #: multiplier on the number of loads/stores (descriptor dereferences, ...)
    memory_overhead: float = 1.0
    #: multiplier on loop/branch overhead
    loop_overhead: float = 1.0
    #: whether transformational intrinsics call a runtime library
    intrinsics_via_runtime: bool = True
    #: efficiency of that runtime (fraction of scalar peak)
    runtime_efficiency: float = 0.8
    #: how effectively memory-bound loops approach the bandwidth roofline
    bandwidth_efficiency: float = 0.75
    #: OpenMP scheduling/loop-body overhead factor (Section VI-B: Flang's
    #: worksharing loop body had ~80 instructions vs 29 for the MLIR flow)
    omp_body_overhead: float = 1.0


#: Baseline Flang v20: scalar-only FP, per-access descriptor loads and offset
#: arithmetic, runtime-library intrinsics (Section IV profiling).
FLANG_V20_PROFILE = CompilerProfile(
    name="flang-v20", vector_fraction=0.0, vector_width=1, index_overhead=0.15,
    memory_overhead=0.55, loop_overhead=0.5, intrinsics_via_runtime=True,
    runtime_efficiency=0.8, bandwidth_efficiency=0.80, omp_body_overhead=2.75)

#: Flang 17 (no HLFIR): similar code quality, slightly worse on code that
#: benefits from HLFIR's array-level reasoning, slightly better on a few
#: scalar codes (Table I shows a mixed picture).
FLANG_V17_PROFILE = CompilerProfile(
    name="flang-v17", vector_fraction=0.0, vector_width=1, index_overhead=0.18,
    memory_overhead=0.60, loop_overhead=0.55, intrinsics_via_runtime=True,
    runtime_efficiency=0.8, bandwidth_efficiency=0.72, omp_body_overhead=2.75)

#: GNU Gfortran 11.2: partial 128-bit vectorisation, reasonable scalar code,
#: but (per the tfft profile in the paper) less effective memory scheduling.
GNU_PROFILE = CompilerProfile(
    name="gfortran", vector_fraction=0.55, vector_width=2, index_overhead=0.10,
    memory_overhead=0.48, loop_overhead=0.4, intrinsics_via_runtime=True,
    runtime_efficiency=1.0, bandwidth_efficiency=0.88, omp_body_overhead=1.2)

#: Cray CE 15: aggressive 256-bit vectorisation, software prefetch, strong
#: loop restructuring — the reference point the paper closes the gap towards.
CRAY_PROFILE = CompilerProfile(
    name="cray", vector_fraction=0.92, vector_width=4, index_overhead=0.05,
    memory_overhead=0.40, loop_overhead=0.3, intrinsics_via_runtime=True,
    runtime_efficiency=1.6, bandwidth_efficiency=1.35, omp_body_overhead=1.0)

#: Our approach (standard MLIR flow): the counts come from the actual
#: optimised IR, so no structural scaling is applied; only the roofline
#: efficiency of MLIR-generated loops is modelled.
OURS_PROFILE = CompilerProfile(
    name="our-approach", vector_fraction=0.0, vector_width=4, index_overhead=0.9,
    memory_overhead=1.0, loop_overhead=0.9, intrinsics_via_runtime=False,
    runtime_efficiency=1.0, bandwidth_efficiency=0.90, omp_body_overhead=1.0)

#: nvfortran 22.11 for the GPU comparison (Table V).
NVFORTRAN_PROFILE = CompilerProfile(
    name="nvfortran", vector_fraction=0.0, vector_width=4, index_overhead=0.8,
    memory_overhead=0.85, loop_overhead=0.8, intrinsics_via_runtime=True,
    runtime_efficiency=1.2, bandwidth_efficiency=1.05, omp_body_overhead=1.0)


__all__ = ["CPUModel", "GPUModel", "CompilerProfile", "ARCHER2", "CIRRUS_V100",
           "FLANG_V20_PROFILE", "FLANG_V17_PROFILE", "GNU_PROFILE",
           "CRAY_PROFILE", "OURS_PROFILE", "NVFORTRAN_PROFILE"]
