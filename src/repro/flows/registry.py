"""The flow registry: name -> :class:`~repro.flows.base.Flow` dispatch.

Mirrors MLIR's pass registration: flows register themselves once, and every
consumer (the compile service, the adapters, ``python -m repro.opt``) looks
them up by name.  The built-in flows live in :mod:`repro.flows.builtin` and
are loaded lazily on first lookup so that the drivers can import
:mod:`repro.flows.base` without a circular import.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Union

from .base import Flow, FlowError

FLOW_REGISTRY: Dict[str, Flow] = {}

_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if not _builtin_loaded:
        # flag first: builtin.py itself calls register_flow while importing
        _builtin_loaded = True
        try:
            from . import builtin  # noqa: F401  (registers the built-in flows)
        except Exception:
            _builtin_loaded = False
            raise


def register_flow(flow: Union[Flow, type], *, replace: bool = False) -> Flow:
    """Register a flow (instance or class) under its ``name``.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True``.  Built-in flows are loaded first, so a user
    registration colliding with ``flang``/``ours`` fails here, cleanly,
    rather than poisoning the registry at first lookup.
    """
    _ensure_builtin()
    if isinstance(flow, type):
        instance = flow()
    else:
        instance = flow
    name = instance.name
    if not name or name == "<unnamed>":
        raise FlowError(f"flow {type(instance).__name__} has no name")
    if name in FLOW_REGISTRY and not replace:
        raise FlowError(f"a flow named '{name}' is already registered")
    FLOW_REGISTRY[name] = instance
    return flow if isinstance(flow, type) else instance


def unregister_flow(name: str) -> None:
    FLOW_REGISTRY.pop(name, None)


def get_flow(name: str) -> Flow:
    """Look a flow up by name; the error names the registered alternatives."""
    _ensure_builtin()
    try:
        return FLOW_REGISTRY[name]
    except KeyError:
        raise FlowError(f"unknown compiler flow {name!r} "
                        f"(registered: {', '.join(available_flows())})") from None


def available_flows() -> List[str]:
    _ensure_builtin()
    return sorted(FLOW_REGISTRY)


@contextmanager
def registered(flow: Union[Flow, type]) -> Iterator[Flow]:
    """Temporarily register ``flow`` (tests: try a new flow, then clean up)."""
    register_flow(flow)
    name = flow.name  # the class attribute and the instance attribute agree
    try:
        yield FLOW_REGISTRY[name]
    finally:
        unregister_flow(name)


__all__ = ["FLOW_REGISTRY", "available_flows", "get_flow", "register_flow",
           "registered", "unregister_flow"]
