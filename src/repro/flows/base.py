"""Flow abstraction: first-class, registered compilation flows.

A :class:`Flow` is everything the service, the CLI and the harness need to
know about one way of compiling a workload: its *name*, its *capability
checks* (e.g. the baseline Flang flow rejects OpenACC), a typed *options
schema* (defaults replacing ad-hoc per-flow fields), a *pipeline builder*
returning an op-anchored nested
:class:`~repro.ir.pass_manager.PassManager`, and a uniform
:class:`FlowResult` with named stage snapshots.

Flows are registered in :mod:`repro.flows.registry`; everything above the
drivers (the compile service, the adapters, ``python -m repro.opt``)
dispatches by flow *name*, so adding a flow is one registration — no service
or adapter edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..ir.core import Operation
from ..ir.pass_manager import (_INHERIT as _INHERIT_SETTINGS,
                               PassInstrumentation, PassManager,
                               PassTimingReport, pipeline_settings)


class FlowError(RuntimeError):
    """Base error for flow registration, options and capability problems."""


class CapabilityError(FlowError):
    """A flow cannot compile this workload / execution combination."""


class OptionError(FlowError):
    """An option value does not fit the flow's options schema."""


# ---------------------------------------------------------------------------
# Options schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlowOption:
    """One typed flow option with its default value."""

    name: str
    type: type
    default: Any
    help: str = ""

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this option's type; raise :class:`OptionError`."""
        if self.type is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str) and value.lower() in ("true", "false"):
                return value.lower() == "true"
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
        elif self.type is int:
            if isinstance(value, bool):
                pass  # bools are ints in Python; reject them for int options
            elif isinstance(value, int):
                return value
            elif isinstance(value, (str, float)):
                try:
                    as_float = float(value)
                    if as_float == int(as_float):
                        return int(as_float)
                except (TypeError, ValueError):
                    pass
        elif self.type is float:
            if isinstance(value, bool):
                pass
            elif isinstance(value, (int, float)):
                return float(value)
            else:
                try:
                    return float(value)
                except (TypeError, ValueError):
                    pass
        elif isinstance(value, self.type):
            return value
        raise OptionError(
            f"option '{self.name}' expects {self.type.__name__}, "
            f"got {value!r}")


class OptionsSchema:
    """The typed options a flow accepts, with defaults.

    ``coerce`` turns a user-supplied mapping into a complete, canonical
    options dict: defaults filled in, values type-checked.  Unknown keys
    raise in ``strict`` mode (the CLI) and are dropped otherwise (cache-key
    normalisation — so e.g. the flang flow deduplicates jobs that differ
    only in options it does not take).
    """

    def __init__(self, *options: FlowOption):
        self._options: Dict[str, FlowOption] = {o.name: o for o in options}

    def __iter__(self) -> Iterator[FlowOption]:
        return iter(self._options.values())

    def __contains__(self, name: str) -> bool:
        return name in self._options

    def names(self) -> List[str]:
        return list(self._options)

    def defaults(self) -> Dict[str, Any]:
        return {o.name: o.default for o in self._options.values()}

    def coerce(self, values: Optional[Dict[str, Any]] = None, *,
               strict: bool = True) -> Dict[str, Any]:
        result = self.defaults()
        for key, value in (values or {}).items():
            key = key.replace("-", "_")
            option = self._options.get(key)
            if option is None:
                if strict:
                    known = ", ".join(sorted(self._options)) or "<none>"
                    raise OptionError(
                        f"unknown option '{key}' (this flow takes: {known})")
                continue
            result[key] = option.coerce(value)
        return result

    def describe(self) -> str:
        if not self._options:
            return "(no options)"
        return ", ".join(f"{o.name}: {o.type.__name__} = {o.default!r}"
                         for o in self._options.values())


# ---------------------------------------------------------------------------
# Execution context
# ---------------------------------------------------------------------------


#: Interpreter engines an artifact can be executed on.  ``compiled`` is the
#: cached-dispatch engine (per-block thunks); ``reference`` is the one-op
#: reference engine; ``jit`` translates blocks into generated Python source
#: (:mod:`repro.machine.jit`); ``vector`` evaluates matched loop nests as
#: whole-array numpy expressions with analytically synthesized statistics
#: (:mod:`repro.machine.vector`).  All of them must be observationally
#: identical — the conformance oracle runs every kernel on every engine and
#: diffs the observables bit for bit.  The order matters: the first entry is
#: the oracle's parity baseline.  Must stay in sync with
#: ``repro.machine.interpreter.ENGINE_NAMES`` (a module-level import either
#: way is a cycle through the flang driver; ``tests/flows`` asserts the
#: sync instead).
ENGINES = ("compiled", "reference", "jit", "vector")


@dataclass(frozen=True)
class ExecutionContext:
    """How a compiled artifact will be executed (not *what* is compiled).

    Stats depend on whether execution is parallel or offloaded, not on the
    exact core count, so the cache-key material buckets ``threads`` down to
    a boolean.  ``engine`` names the interpreter engine; artifacts from the
    two engines are cached separately so differential runs can compare them.
    """

    threads: int = 1
    gpu: bool = False
    engine: str = "compiled"

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise FlowError(f"unknown interpreter engine {self.engine!r} "
                            f"(known: {', '.join(ENGINES)})")

    @property
    def parallel(self) -> bool:
        return self.threads > 1

    @property
    def compile_blocks(self) -> bool:
        """Interpreter ``compile_blocks`` flag for this engine (legacy —
        prefer passing ``engine`` to the Interpreter directly)."""
        return self.engine != "reference"

    def key_material(self) -> Dict[str, Any]:
        return {"parallel": self.parallel, "gpu": bool(self.gpu),
                "engine": self.engine}


# ---------------------------------------------------------------------------
# Flow result
# ---------------------------------------------------------------------------


@dataclass
class FlowResult:
    """Uniform result of one flow compilation: named stage snapshots.

    ``stages`` maps stage name to module snapshot in pipeline order; the
    last non-``None`` stage is the module the machine model executes
    (:attr:`module`).  Both drivers return subclasses that add their
    historical attribute names (``fir_module``, ``optimised_module``, ...)
    as properties over the same stages dict.
    """

    flow: str
    source: str
    stages: Dict[str, Optional[Operation]]
    pipeline: str = ""
    timing: Optional[PassTimingReport] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def stage_names(self) -> List[str]:
        return list(self.stages)

    def stage(self, name: str) -> Optional[Operation]:
        return self.stages[name]

    @property
    def module(self) -> Operation:
        """The final materialised stage — what gets executed/printed."""
        final: Optional[Operation] = None
        for module in self.stages.values():
            if module is not None:
                final = module
        if final is None:
            raise FlowError(f"flow '{self.flow}' produced no IR stages")
        return final


# ---------------------------------------------------------------------------
# Flow
# ---------------------------------------------------------------------------


class Flow:
    """One registered compilation flow.

    Subclasses set :attr:`name`, :attr:`schema` and implement
    :meth:`compile`; they may override :meth:`check_capabilities` (reject
    workloads the flow cannot build), :meth:`normalise_options` (derive
    extra canonical options from the workload/execution context) and
    :meth:`pipeline` (expose the textual pass pipeline the flow runs).
    """

    name: str = "<unnamed>"
    description: str = ""
    schema: OptionsSchema = OptionsSchema()

    # -- hooks -----------------------------------------------------------------
    def check_capabilities(self, workload, execution: ExecutionContext) -> None:
        """Raise (e.g. :class:`CapabilityError`) if this flow cannot compile
        ``workload`` under ``execution``."""

    def normalise_options(self, options: Optional[Dict[str, Any]], workload,
                          execution: ExecutionContext) -> Dict[str, Any]:
        """Canonical, fully-defaulted options dict — the cache-key material.

        Unknown options are dropped (not errors) so flows deduplicate jobs
        that differ only in options they do not consume.
        """
        return self.schema.coerce(options, strict=False)

    def pipeline(self, options: Dict[str, Any]) -> Optional[PassManager]:
        """The (possibly nested) pass pipeline this flow runs, if it has one."""
        return None

    def compile(self, workload, options: Dict[str, Any],
                execution: ExecutionContext, *,
                verify_each: bool = False,
                collect_statistics: bool = True,
                instrumentation: Sequence[PassInstrumentation] = ()) -> FlowResult:
        raise NotImplementedError

    # -- entry point -----------------------------------------------------------
    def run(self, workload, options: Optional[Dict[str, Any]] = None,
            execution: Optional[ExecutionContext] = None, *,
            verify_each: bool = False,
            collect_statistics: bool = True,
            instrumentation: Sequence[PassInstrumentation] = (),
            jobs: Optional[int] = None,
            function_cache: Any = _INHERIT_SETTINGS) -> FlowResult:
        """Check capabilities, normalise options, compile. The one entry point.

        ``collect_statistics=False`` skips the per-pass timing/IR-size
        bookkeeping — the compile service uses it since it discards
        :attr:`FlowResult.timing`.

        ``jobs`` and ``function_cache`` set the ambient
        :func:`~repro.ir.pass_manager.pipeline_settings` for the compile:
        ``jobs > 1`` runs ``func.func``-anchored pass nests in parallel, and
        a :class:`~repro.service.incremental.FunctionArtifactStore` makes
        the compile incremental at function granularity.  Both default to
        whatever the calling context already established (so nesting flows
        inside ``pipeline_settings(...)`` blocks keeps working), and every
        registered flow gets them without overriding :meth:`compile`.
        """
        execution = execution or ExecutionContext()
        self.check_capabilities(workload, execution)
        normalised = self.normalise_options(options, workload, execution)
        with pipeline_settings(jobs=jobs, function_cache=function_cache):
            return self.compile(workload, normalised, execution,
                                verify_each=verify_each,
                                collect_statistics=collect_statistics,
                                instrumentation=instrumentation)

    def describe(self) -> str:
        return f"{self.name}: {self.description or '<no description>'}"


__all__ = [
    "CapabilityError", "ENGINES", "ExecutionContext", "Flow", "FlowError",
    "FlowOption", "FlowResult", "OptionError", "OptionsSchema",
]
