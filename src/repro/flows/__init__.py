"""First-class, registered compilation flows.

The mlir-opt analogy carried one level up: where passes register by name so
pipelines are *data* (``builtin.module(canonicalize, cse)``), flows register
by name so entire compilation strategies are data too.  The compile service,
the compiler adapters and ``python -m repro.opt`` all dispatch through
:func:`get_flow`; registering a new :class:`Flow` is the only step needed to
make it cacheable, schedulable and measurable.

* :mod:`repro.flows.base` — :class:`Flow`, :class:`OptionsSchema`,
  :class:`ExecutionContext`, :class:`FlowResult`;
* :mod:`repro.flows.registry` — registration and lookup;
* :mod:`repro.flows.builtin` — the ``flang`` and ``ours`` flows.
"""

from .base import (ENGINES, CapabilityError, ExecutionContext, Flow, FlowError,
                   FlowOption, FlowResult, OptionError, OptionsSchema)
from .registry import (FLOW_REGISTRY, available_flows, get_flow,
                       register_flow, registered, unregister_flow)

__all__ = [
    "CapabilityError", "ENGINES", "ExecutionContext", "Flow", "FlowError", "FlowOption",
    "FlowResult", "OptionError", "OptionsSchema", "FLOW_REGISTRY",
    "available_flows", "get_flow", "register_flow", "registered",
    "unregister_flow",
]
