"""The built-in compilation flows: baseline ``flang`` and the paper's ``ours``.

Each is a one-object registration over the corresponding driver; everything
flow-specific (capability checks, options, pipelines, stage names) lives
here, so the service and the adapters contain no per-flow branches.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..ir.pass_manager import PassInstrumentation, PassManager
from .base import (ExecutionContext, Flow, FlowOption, FlowResult,
                   OptionsSchema)
from .registry import register_flow


@register_flow
class FlangFlow(Flow):
    """Baseline Flang: HLFIR -> FIR, bespoke code generation (Figure 1).

    Executed at the FIR level.  Takes no pipeline options, so jobs that
    differ only in standard-flow options deduplicate to one artifact.
    """

    name = "flang"
    description = ("baseline Flang v20: HLFIR -> FIR, bespoke code "
                   "generation, runtime-library intrinsics (Figure 1)")
    schema = OptionsSchema()

    def check_capabilities(self, workload, execution: ExecutionContext) -> None:
        if execution.gpu or workload.uses_openacc:
            # Section VI-C: Flang v18 ICEs on OpenACC lowering
            from ..flang import FlangCodegenError
            raise FlangCodegenError(
                "missing LLVMTranslationDialectInterface for the acc dialect")

    def pipeline(self, options: Dict[str, Any]) -> Optional[PassManager]:
        from ..flang.hlfir_to_fir import ConvertHlfirToFirPass
        return PassManager([ConvertHlfirToFirPass()])

    def compile(self, workload, options: Dict[str, Any],
                execution: ExecutionContext, *,
                verify_each: bool = False,
                collect_statistics: bool = True,
                instrumentation: Sequence[PassInstrumentation] = ()) -> FlowResult:
        from ..flang import FlangCompiler
        compiler = FlangCompiler(verify_each=verify_each,
                                 collect_statistics=collect_statistics,
                                 instrumentations=instrumentation)
        return compiler.compile(workload.source(scaled=True), stop_at="fir")


@register_flow
class OursFlow(Flow):
    """The paper's flow: HLFIR/FIR -> standard MLIR -> optimised IR (Fig. 2).

    Executed at the optimised standard-dialect level.  ``parallelise`` and
    ``gpu`` are derived from the execution context and the workload (OpenMP
    sources parallelise themselves; OpenACC forces the GPU lowering), so
    they are canonical key material but not user-settable options.
    """

    name = "ours"
    description = ("the paper's flow: Flang frontend -> standard MLIR "
                   "dialects -> optimisation passes (Figure 2, Listing 1)")
    schema = OptionsSchema(
        FlowOption("vector_width", int, 4,
                   "affine super-vectorisation width (0 disables)"),
        FlowOption("tile", bool, False, "affine loop tiling"),
        FlowOption("tile_size", int, 32, "tile size when tiling"),
        FlowOption("unroll", int, 0, "affine loop unroll factor (0 disables)"),
    )

    def normalise_options(self, options: Optional[Dict[str, Any]], workload,
                          execution: ExecutionContext) -> Dict[str, Any]:
        normalised = self.schema.coerce(options, strict=False)
        normalised["parallelise"] = (execution.parallel
                                     and not workload.uses_openmp)
        normalised["gpu"] = execution.gpu or workload.uses_openacc
        return normalised

    def pipeline(self, options: Dict[str, Any]) -> PassManager:
        from ..core import pipelines
        return pipelines.standard_flow_pipeline(**options)

    def compile(self, workload, options: Dict[str, Any],
                execution: ExecutionContext, *,
                verify_each: bool = False,
                collect_statistics: bool = True,
                instrumentation: Sequence[PassInstrumentation] = ()) -> FlowResult:
        from ..core import StandardMLIRCompiler
        compiler = StandardMLIRCompiler(
            vector_width=options["vector_width"],
            parallelise=options["parallelise"], gpu=options["gpu"],
            tile=options["tile"], tile_size=options["tile_size"],
            unroll=options["unroll"], verify_each=verify_each,
            collect_statistics=collect_statistics,
            instrumentations=instrumentation)
        return compiler.compile(workload.source(scaled=True))


__all__ = ["FlangFlow", "OursFlow"]
