"""AST-level shrinking reducer for divergent conformance kernels.

Given a kernel source and a predicate ("does this still show the
divergence?"), :func:`reduce_source` greedily applies semantic-preserving-ish
shrink edits — statement deletion, hoisting construct bodies, dropping print
items, replacing expressions by their subexpressions, garbage-collecting
unused declarations — keeping each edit only if the predicate still holds.
The result is a small, self-contained repro: reduction never needs the
original seed, only the parser and the unparser.

The predicate is authoritative: edits that produce invalid programs simply
fail it (every flow rejects them, which no longer matches the original
divergence signature) and are rolled back.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from ..frontend import ast_nodes as ast
from ..frontend.parser import parse_source
from .oracle import FlowConfig, KernelReport, check_kernel
from .unparse import UnparseError, unparse

Predicate = Callable[[str], bool]


# ---------------------------------------------------------------------------
# predicate construction
# ---------------------------------------------------------------------------


def divergence_signature(report: KernelReport) -> frozenset:
    return frozenset((d.kind, d.left, d.right) for d in report.divergences)


def matching_predicate(report: KernelReport,
                       configs: Optional[Sequence[FlowConfig]] = None,
                       ) -> Predicate:
    """True iff a candidate still shows one of ``report``'s divergences."""
    signature = divergence_signature(report)

    def predicate(source: str) -> bool:
        try:
            candidate = check_kernel(source, configs)
        except Exception:
            return False
        return bool(signature & divergence_signature(candidate))

    return predicate


# ---------------------------------------------------------------------------
# edit enumeration
# ---------------------------------------------------------------------------


def _stmt_lists(sp: ast.Subprogram) -> Iterator[List[ast.Stmt]]:
    """All statement lists in a subprogram, outermost first."""
    pending: List[List[ast.Stmt]] = [sp.body]
    while pending:
        stmts = pending.pop(0)
        yield stmts
        for stmt in stmts:
            if isinstance(stmt, ast.DoLoop) or isinstance(stmt, ast.DoWhile):
                pending.append(stmt.body)
            elif isinstance(stmt, ast.IfBlock):
                pending.extend(stmt.bodies)
                pending.append(stmt.else_body)
            elif isinstance(stmt, ast.SelectCase):
                pending.extend(case.body for case in stmt.cases)
                pending.append(stmt.default_body)
            elif isinstance(stmt, ast.DirectiveRegion):
                pending.append(stmt.body)


def _expr_slots(sp: ast.Subprogram):
    """(getter, setter) pairs for every shrinkable expression position."""
    for stmts in _stmt_lists(sp):
        for stmt in stmts:
            if isinstance(stmt, ast.Assignment):
                yield (lambda s=stmt: s.value,
                       lambda e, s=stmt: setattr(s, "value", e))
            elif isinstance(stmt, ast.IfBlock):
                for index in range(len(stmt.conditions)):
                    yield (lambda s=stmt, i=index: s.conditions[i],
                           lambda e, s=stmt, i=index:
                           s.conditions.__setitem__(i, e))
            elif isinstance(stmt, ast.DoWhile):
                yield (lambda s=stmt: s.condition,
                       lambda e, s=stmt: setattr(s, "condition", e))
            elif isinstance(stmt, ast.DoLoop):
                yield (lambda s=stmt: s.start,
                       lambda e, s=stmt: setattr(s, "start", e))
                yield (lambda s=stmt: s.end,
                       lambda e, s=stmt: setattr(s, "end", e))
            elif isinstance(stmt, ast.SelectCase):
                yield (lambda s=stmt: s.selector,
                       lambda e, s=stmt: setattr(s, "selector", e))


def _subexpressions(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, (ast.CallOrIndex, ast.FunctionCall, ast.IntrinsicCall)):
        return [a for a in expr.args
                if not isinstance(a, ast.SliceTriplet)]
    return []


def _iter_edits(sp: ast.Subprogram) -> List[Callable[[], None]]:
    """Every applicable shrink edit, in a deterministic order."""
    edits: List[Callable[[], None]] = []

    # 1. statement deletion
    for stmts in _stmt_lists(sp):
        for index in range(len(stmts)):
            edits.append(lambda l=stmts, i=index: l.pop(i))

    # 2. hoist a construct's body into its place
    for stmts in _stmt_lists(sp):
        for index, stmt in enumerate(stmts):
            bodies: List[List[ast.Stmt]] = []
            if isinstance(stmt, (ast.DoLoop, ast.DoWhile, ast.DirectiveRegion)):
                bodies = [stmt.body]
            elif isinstance(stmt, ast.IfBlock):
                bodies = list(stmt.bodies) + [stmt.else_body]
            elif isinstance(stmt, ast.SelectCase):
                bodies = [case.body for case in stmt.cases] + [stmt.default_body]
            for body in bodies:
                edits.append(lambda l=stmts, i=index, b=body:
                             l.__setitem__(slice(i, i + 1), list(b)))

    # 3. drop one item of a multi-item print
    for stmts in _stmt_lists(sp):
        for stmt in stmts:
            if isinstance(stmt, ast.PrintStmt) and len(stmt.items) > 1:
                for index in range(len(stmt.items)):
                    edits.append(lambda s=stmt, i=index: s.items.pop(i))

    # 4. replace an expression by one of its direct subexpressions
    for getter, setter in _expr_slots(sp):
        expr = getter()
        for child in _subexpressions(expr):
            edits.append(lambda c=child, set_=setter: set_(c))

    return edits


# ---------------------------------------------------------------------------
# declaration garbage collection
# ---------------------------------------------------------------------------


def _used_names(sp: ast.Subprogram) -> set:
    names: set = set()

    def visit_expr(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Identifier):
            names.add(expr.name)
        elif isinstance(expr, (ast.CallOrIndex, ast.FunctionCall,
                               ast.IntrinsicCall, ast.ArrayRef)):
            names.add(expr.name)
            args = expr.indices if isinstance(expr, ast.ArrayRef) else expr.args
            for arg in args:
                visit_expr(arg)
        elif isinstance(expr, ast.BinaryOp):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, ast.UnaryOp):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.SliceTriplet):
            visit_expr(expr.lower)
            visit_expr(expr.upper)
            visit_expr(expr.stride)

    for stmts in _stmt_lists(sp):
        for stmt in stmts:
            if isinstance(stmt, ast.Assignment):
                visit_expr(stmt.target)
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.IfBlock):
                for condition in stmt.conditions:
                    visit_expr(condition)
            elif isinstance(stmt, ast.DoLoop):
                names.add(stmt.var)
                visit_expr(stmt.start)
                visit_expr(stmt.end)
                visit_expr(stmt.step)
            elif isinstance(stmt, ast.DoWhile):
                visit_expr(stmt.condition)
            elif isinstance(stmt, ast.SelectCase):
                visit_expr(stmt.selector)
                for case in stmt.cases:
                    for item in case.items:
                        visit_expr(item.lower)
                        visit_expr(item.upper)
            elif isinstance(stmt, ast.PrintStmt):
                for item in stmt.items:
                    visit_expr(item)
            elif isinstance(stmt, ast.CallStmt):
                for arg in stmt.args:
                    visit_expr(arg)
            elif isinstance(stmt, ast.AllocateStmt):
                for name, dims in stmt.allocations:
                    names.add(name)
                    for dim in dims:
                        visit_expr(dim)
            elif isinstance(stmt, ast.DeallocateStmt):
                names.update(stmt.names)
            elif isinstance(stmt, ast.StopStmt):
                visit_expr(stmt.code)
    return names


def _collect_declarations(sp: ast.Subprogram) -> bool:
    """Drop declarations of names the body never mentions."""
    used = _used_names(sp) | set(sp.args)
    changed = False
    kept: List[ast.Declaration] = []
    for decl in sp.declarations:
        entities = [e for e in decl.entities if e.name in used]
        if len(entities) != len(decl.entities):
            changed = True
        if entities:
            decl.entities = entities
            kept.append(decl)
    sp.declarations = kept
    return changed


# ---------------------------------------------------------------------------
# the reduction driver
# ---------------------------------------------------------------------------


def _render(unit: ast.CompilationUnit) -> Optional[str]:
    try:
        return unparse(unit)
    except UnparseError:
        return None


def reduce_source(source: str, predicate: Predicate, *,
                  max_rounds: int = 12) -> str:
    """Greedily shrink ``source`` while ``predicate`` keeps holding.

    Each round enumerates every applicable edit against the current best
    program and keeps the ones that preserve the divergence; rounds repeat
    until a fixpoint (or ``max_rounds``).  Unused declarations are collected
    after every successful round.
    """
    best = source
    for _ in range(max_rounds):
        changed = False
        index = 0
        while True:
            unit = parse_source(best)
            sp = unit.subprograms[0] if unit.subprograms else None
            if sp is None:
                break
            edits = _iter_edits(sp)
            if index >= len(edits):
                break
            edits[index]()
            candidate = _render(unit)
            if candidate is not None and candidate != best \
                    and predicate(candidate):
                best = candidate
                changed = True
                # the edit list shifted: stay at the same index
            else:
                index += 1
        # declaration GC (kept only when it preserves the divergence)
        unit = parse_source(best)
        if unit.subprograms and _collect_declarations(unit.subprograms[0]):
            candidate = _render(unit)
            if candidate is not None and predicate(candidate):
                best = candidate
                changed = True
        if not changed:
            break
    return best


def reduce_report(report: KernelReport,
                  configs: Optional[Sequence[FlowConfig]] = None, *,
                  max_rounds: int = 12) -> str:
    """Shrink the kernel of a divergent :class:`KernelReport`."""
    if report.ok:
        raise ValueError("cannot reduce a kernel with no divergence")
    predicate = matching_predicate(report, configs)
    return reduce_source(report.source, predicate, max_rounds=max_rounds)


__all__ = ["Predicate", "divergence_signature", "matching_predicate",
           "reduce_report", "reduce_source"]
