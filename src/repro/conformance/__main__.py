"""``python -m repro.conformance`` — differential conformance CLI.

Subcommands:

* ``run``   — sweep a seed range through every registered flow x both
  interpreter engines via the compile service (``--jobs`` fans out over a
  process pool); any divergence writes a self-contained repro file and the
  exit status is non-zero.
* ``repro`` — regenerate one seed, re-check it in-process, and (by default)
  shrink the kernel to a minimal repro.
* ``show``  — print the generated kernel for a seed.

Examples::

    python -m repro.conformance run --seeds 200 --jobs 8
    python -m repro.conformance run --seeds 64 --out conformance-repros
    python -m repro.conformance run --seeds 16 --jobs 4 --chaos 0
    python -m repro.conformance repro --seed 1337
    python -m repro.conformance show --seed 7
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import (FlowConfig, KernelReport, check_seed, default_configs,
               generate, run_sweep)
from ..flows import ENGINES
from .reduce import reduce_report


def _parse_engines(spec: Optional[str]) -> Optional[List[str]]:
    """``--engines compiled,jit`` selects interpreter engines (default all)."""
    if not spec:
        return None
    wanted = [name.strip() for name in spec.split(",") if name.strip()]
    if not wanted:
        raise SystemExit(f"--engines selected no engines "
                         f"(known: {', '.join(ENGINES)})")
    unknown = [name for name in wanted if name not in ENGINES]
    if unknown:
        raise SystemExit(f"unknown engine(s) {', '.join(unknown)} "
                         f"(known: {', '.join(ENGINES)})")
    return wanted


def _parse_flows(spec: Optional[str]) -> Optional[List[FlowConfig]]:
    """``--flows flang,ours`` filters the default config set by label."""
    if not spec:
        return None
    wanted = [label.strip() for label in spec.split(",") if label.strip()]
    configs = {config.label: config for config in default_configs()}
    missing = [label for label in wanted if label not in configs]
    if missing:
        known = ", ".join(sorted(configs))
        raise SystemExit(f"unknown flow config(s) {', '.join(missing)} "
                         f"(known: {known})")
    return [configs[label] for label in wanted]


def _write_repro(report: KernelReport, out_dir: str, *,
                 reduced: Optional[str]) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"seed_{report.seed}.txt")
    lines = [f"conformance divergence repro — seed {report.seed}", ""]
    lines.append("divergences:")
    lines.extend(f"  - {d.describe()}" for d in report.divergences)
    lines.append("")
    if reduced is not None:
        lines.append(f"reduced kernel (reproduce with: python -m "
                     f"repro.conformance repro --seed {report.seed}):")
        lines.append(reduced.rstrip())
        lines.append("")
    lines.append("original kernel:")
    lines.append(report.source.rstrip())
    lines.append("")
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
    return path


def _print_report(report: KernelReport) -> None:
    for divergence in report.divergences:
        print(f"  {divergence.describe()}")


def _sweep_service(args: argparse.Namespace):
    """A daemon-backed service when one is reachable, else a persistent
    in-process service.

    The in-process fallback binds the service to ``$REPRO_CACHE_DIR`` (when
    set), so sweep compiles persist function artifacts and jit translations
    through the same sharded store a daemon would use — ``run_sweep``'s own
    fallback service is memory-only and was silently dropping them.
    Either path is bit-identical; only where compiles happen and whether
    artifacts outlive the process differ.
    """
    from ..service import CACHE_DIR_ENV, maybe_daemon_service
    from ..service.cache import ArtifactCache
    from ..service.client import DaemonUnavailable, discover_client
    from ..service.scheduler import CompileService

    service = None
    if not getattr(args, "no_daemon", False):
        socket_spec = getattr(args, "socket", None)
        service = maybe_daemon_service(socket_spec, max_workers=args.jobs)
        if service is None and socket_spec:
            # an explicitly named socket that does not answer is an error
            discover_client(socket_spec, require=True)  # raises
    if service is not None:
        print(f"using compilation daemon at {service.socket_spec}",
              file=sys.stderr)
        return service
    cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return CompileService(ArtifactCache(cache_dir=cache_dir),
                          max_workers=args.jobs)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.no_jit_cache:
        from ..service.jit_store import NO_JIT_CACHE_ENV
        # env, not a parameter: pool workers and nested services inherit it
        os.environ[NO_JIT_CACHE_ENV] = "1"
    configs = _parse_flows(args.flows)
    engines = _parse_engines(args.engines)
    seeds = range(args.start, args.start + args.seeds)

    if args.chaos is not None:
        from .chaos import quarantine_demo, run_chaos
        report = run_chaos(
            seeds, range(args.chaos, args.chaos + args.chaos_plans),
            configs=configs, engines=engines, jobs=max(2, args.jobs))
        print(report.summary())
        demo = quarantine_demo(jobs=max(2, args.jobs))
        print(f"quarantine demo: counters {demo['counters']}, "
              f"poison artifact cached: {demo['poisoned']}, "
              f"innocent batch-mate ok: {demo['innocent_ok']}")
        return 0 if report.ok and demo["ok"] else 1

    def progress(seed: int, report: KernelReport) -> None:
        if not report.ok:
            print(f"seed {seed}: DIVERGENT "
                  f"({', '.join(d.kind for d in report.divergences)})")
        elif args.verbose:
            print(f"seed {seed}: ok")

    from ..service.client import DaemonUnavailable
    try:
        service = _sweep_service(args)
    except DaemonUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_sweep(seeds, configs, engines=engines, max_workers=args.jobs,
                       service=service, progress=progress)
    print(report.summary())
    print(f"service counters: {report.service_counters}")
    if report.ok:
        return 0
    for kernel_report in report.divergent:
        _print_report(kernel_report)
        reduced = None
        if not args.no_reduce:
            print(f"reducing seed {kernel_report.seed} ...")
            try:
                reduced = reduce_report(kernel_report, configs)
                print(f"  reduced to {len(reduced.splitlines())} lines")
            except Exception as exc:   # reduction must never mask the find
                print(f"  reduction failed: {type(exc).__name__}: {exc}")
        path = _write_repro(kernel_report, args.out, reduced=reduced)
        print(f"  repro written to {path}")
    return 1


def _cmd_repro(args: argparse.Namespace) -> int:
    from ..ir.pass_manager import pipeline_settings
    from ..service.incremental import get_function_store

    configs = _parse_flows(args.flows)
    # The shrink loop recompiles near-identical kernels hundreds of times;
    # the function store turns untouched functions into splices, and --jobs
    # parallelises the pass nests of what remains.  Either way the checks
    # are bit-identical to cold serial compiles.
    store = None if args.no_incremental else get_function_store()
    with pipeline_settings(jobs=args.jobs, function_cache=store):
        report = check_seed(args.seed, configs,
                            engines=_parse_engines(args.engines))
        kernel = generate(args.seed)
        print(f"seed {args.seed}: features: {', '.join(kernel.features)}")
        if report.ok:
            print("no divergence — kernel is conformant on every registered "
                  "flow and every engine")
            return 0
        _print_report(report)
        reduced = None
        if not args.no_reduce:
            reduced = reduce_report(report, configs)
            print(f"\nreduced repro ({len(reduced.splitlines())} lines):\n")
            print(reduced)
    if args.out:
        path = _write_repro(report, args.out, reduced=reduced)
        print(f"repro written to {path}")
    return 1


def _cmd_show(args: argparse.Namespace) -> int:
    kernel = generate(args.seed)
    print(kernel.source)
    print(f"! features: {', '.join(kernel.features)}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="differential conformance testing: seeded kernel "
                    "generator + cross-flow/cross-engine oracle")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="sweep a seed range")
    run_p.add_argument("--seeds", type=int, default=100,
                       help="number of seeds to sweep (default 100)")
    run_p.add_argument("--start", type=int, default=0,
                       help="first seed (default 0)")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for the compile service")
    run_p.add_argument("--flows", help="comma-separated flow config labels "
                                       "(default: every registered flow + "
                                       "the no-opt baseline)")
    run_p.add_argument("--engines",
                       help="comma-separated interpreter engines to "
                            f"cross-check (default: {','.join(ENGINES)})")
    run_p.add_argument("--out", default="conformance-repros",
                       help="directory for divergence repro files")
    run_p.add_argument("--no-reduce", action="store_true",
                       help="skip shrinking divergent kernels")
    run_p.add_argument("--verbose", action="store_true",
                       help="print every seed, not just divergent ones")
    run_p.add_argument("--socket", default=None, metavar="PATH",
                       help="compilation daemon socket (unix path or "
                            "tcp:HOST:PORT; default: $REPRO_DAEMON_SOCKET "
                            "or the per-user default, when one is running)")
    run_p.add_argument("--no-daemon", action="store_true",
                       help="never use a compilation daemon, even if one "
                            "is running")
    run_p.add_argument("--no-jit-cache", action="store_true",
                       help="keep jit translations process-local (disable "
                            "the persistent translation cache)")
    run_p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="chaos mode: rerun the sweep under seeded "
                            "fault-injection plans and require results "
                            "bit-identical to the fault-free baseline")
    run_p.add_argument("--chaos-plans", type=int, default=3, metavar="N",
                       help="number of fault plans to sweep in chaos mode "
                            "(plan seeds SEED..SEED+N-1; default 3)")
    run_p.set_defaults(func=_cmd_run)

    repro_p = sub.add_parser("repro", help="re-check and shrink one seed")
    repro_p.add_argument("--seed", type=int, required=True)
    repro_p.add_argument("--flows")
    repro_p.add_argument("--engines")
    repro_p.add_argument("--out", help="also write the repro file here")
    repro_p.add_argument("--no-reduce", action="store_true")
    repro_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="parallelise func.func pass nests across N "
                              "workers during the check + shrink loop")
    repro_p.add_argument("--no-incremental", action="store_true",
                         help="disable the per-function stage store during "
                              "the shrink loop")
    repro_p.set_defaults(func=_cmd_repro)

    show_p = sub.add_parser("show", help="print the kernel for a seed")
    show_p.add_argument("--seed", type=int, required=True)
    show_p.set_defaults(func=_cmd_show)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:    # e.g. `... show --seed 7 | head`
        sys.exit(0)
