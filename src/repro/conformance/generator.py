"""Seeded, reproducible Fortran kernel generator (Csmith-style).

``generate(seed)`` derives a valid Fortran program from a PRNG seed, built
directly out of :mod:`repro.frontend.ast_nodes` and typed with the
:mod:`repro.frontend.ftypes` kind model, then rendered through
:mod:`repro.conformance.unparse`.  The same seed always produces the same
program, in any process — the compile service's pool workers regenerate
kernels by name (``conformance/<seed>``) when jobs cross process boundaries.

The emitted subset covers scalar and array arithmetic over i32/i64/f32/f64
and logicals, do-loop nests (including negative-step and zero-trip loops),
do-while loops with ``exit``, if/else-if chains, ``select case`` constructs,
the supported intrinsics, and deliberately tricky corners: mixed-sign
division and ``mod``, division by zero (defined as 0 by the shared
semantics), and NaN creation + comparison.

Two disciplines make differential comparison sound:

* **Integer safety** — every integer expression carries a magnitude bound;
  when a bound would approach i32 range the expression is wrapped in
  ``mod(expr, 9973)``, so no engine/flow pair can diverge through
  wrap-around behaviour.
* **Float reproducibility** — elementwise float math is bit-identical
  across flows, but *accumulation order* is not (the vectoriser and the
  Flang runtime reduce in different orders).  Reductions and loop-carried
  accumulators are therefore restricted to f64 (where reordering error is
  ~1e-15 relative, far below the oracle's tolerance) or integers (exact in
  any order), and values that passed through a reordering reduction are
  marked *inexact* and never feed comparisons, control flow or int
  conversions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend import ast_nodes as ast
from ..frontend.ftypes import FType
from ..workloads import Workload
from .unparse import unparse

#: Wrap modulus for integer-overflow discipline (prime, < 2**14).
_WRAP = 9973
#: Integer expressions whose magnitude bound exceeds this get mod-wrapped.
_INT_LIMIT = 10 ** 7
#: Float expressions whose magnitude bound exceeds this stop growing
#: (the builder falls back to bounded operators).
_REAL_LIMIT = 1e8


# ---------------------------------------------------------------------------
# AST construction helpers
# ---------------------------------------------------------------------------


def _int(value: int) -> ast.Expr:
    # negative literals render as unary minus, matching what the parser
    # produces, so generated source is a parse/unparse fixpoint
    if value < 0:
        return ast.UnaryOp(op="-", operand=ast.IntLiteral(value=-int(value)))
    return ast.IntLiteral(value=int(value))


def _real(value: float, kind: int = 8) -> ast.Expr:
    if value < 0:
        return ast.UnaryOp(op="-",
                           operand=ast.RealLiteral(value=-float(value),
                                                   kind=kind))
    return ast.RealLiteral(value=float(value), kind=kind)


def _ref(name: str) -> ast.Identifier:
    return ast.Identifier(name=name)


def _call(name: str, *args: ast.Expr) -> ast.CallOrIndex:
    return ast.CallOrIndex(name=name, args=list(args))


def _bin(op: str, lhs: ast.Expr, rhs: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp(op=op, lhs=lhs, rhs=rhs)


def _assign(target: ast.Expr, value: ast.Expr) -> ast.Assignment:
    return ast.Assignment(target=target, value=value)


# ---------------------------------------------------------------------------
# generator configuration and result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of generated kernels (defaults give ~30-70 line programs)."""

    min_body_segments: int = 5
    max_body_segments: int = 11
    max_expr_depth: int = 3
    min_array_extent: int = 3
    max_array_extent: int = 8
    max_loop_nest: int = 2
    #: probability that a given tricky corner fires (one always does)
    corner_probability: float = 0.35


@dataclass
class GeneratedKernel:
    """One generated kernel: seed, AST, rendered source and feature tags."""

    seed: int
    unit: ast.CompilationUnit
    source: str
    features: Tuple[str, ...]

    @property
    def name(self) -> str:
        return f"conformance/{self.seed}"

    def workload(self) -> Workload:
        """Wrap the kernel as a registry-resolvable :class:`Workload`."""
        return Workload(
            name=self.name,
            category="conformance",
            description=f"generated conformance kernel, seed {self.seed}",
            source_template=self.source,
            paper_params={},
            interp_params={},
            work_model=lambda p: 1.0,
        )


# ---------------------------------------------------------------------------
# variable model
# ---------------------------------------------------------------------------


@dataclass
class _Var:
    name: str
    base: str                      # integer | real | logical
    kind: int = 4
    dims: Tuple[int, ...] = ()
    allocatable: bool = False
    #: float bit-reproducibility across flows (always True for ints/logicals)
    exact: bool = True
    #: magnitude bound of the value (elements, for arrays)
    bound: float = 0.0
    #: loop counters and similar are never picked as assignment targets
    reserved: bool = False
    written: bool = False
    #: holds a deliberate NaN; excluded from ordinary expression leaves
    is_nan: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class _LoopContext:
    """Loop variables in scope with their guaranteed value ranges."""

    ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    depth: int = 0

    def child(self, var: str, lo: int, hi: int) -> "_LoopContext":
        ranges = dict(self.ranges)
        ranges[var] = (lo, hi)
        return _LoopContext(ranges=ranges, depth=self.depth + 1)


# ---------------------------------------------------------------------------
# the kernel builder
# ---------------------------------------------------------------------------


class _KernelBuilder:
    def __init__(self, seed: int, config: GeneratorConfig):
        self.seed = seed
        self.config = config
        self.rng = random.Random((seed + 1) * 0x9E3779B1)
        self.vars: List[_Var] = []
        self.body: List[ast.Stmt] = []
        self.features: List[str] = []
        self._loop_names = ["i", "j", "k"]
        self._while_counter = 0

    # ------------------------------------------------------------------ utils
    def _feature(self, tag: str) -> None:
        if tag not in self.features:
            self.features.append(tag)

    def _pick(self, items: Sequence, weights: Sequence[float]):
        return self.rng.choices(list(items), weights=list(weights), k=1)[0]

    def _scalars(self, base: str, *, written: Optional[bool] = None,
                 exact: Optional[bool] = None) -> List[_Var]:
        out = []
        for v in self.vars:
            if v.base != base or v.is_array or v.reserved or v.is_nan:
                continue
            if written is not None and v.written != written:
                continue
            if exact is not None and v.exact != exact:
                continue
            out.append(v)
        return out

    def _arrays(self, base: str) -> List[_Var]:
        return [v for v in self.vars
                if v.base == base and v.is_array and v.written]

    # ------------------------------------------------------------ declarations
    def declare_variables(self) -> None:
        rng = self.rng
        cfg = self.config
        for name in self._loop_names:
            self.vars.append(_Var(name=name, base="integer", kind=4,
                                  reserved=True, bound=64))
        for idx in range(rng.randint(2, 4)):
            self.vars.append(_Var(name=f"n{idx}", base="integer", kind=4))
        for idx in range(rng.randint(1, 2)):
            self.vars.append(_Var(name=f"m{idx}", base="integer", kind=8))
        for idx in range(rng.randint(2, 3)):
            self.vars.append(_Var(name=f"d{idx}", base="real", kind=8))
        for idx in range(rng.randint(0, 2)):
            self.vars.append(_Var(name=f"x{idx}", base="real", kind=4))
        for idx in range(rng.randint(0, 2)):
            self.vars.append(_Var(name=f"lg{idx}", base="logical"))
        n_arrays = rng.randint(1, 3)
        for idx in range(n_arrays):
            base, kind = self._pick([("integer", 4), ("real", 8), ("real", 4)],
                                    [3, 3, 1])
            rank = self._pick([1, 2], [3, 1])
            dims = tuple(rng.randint(cfg.min_array_extent, cfg.max_array_extent)
                         for _ in range(rank))
            allocatable = rank == 1 and rng.random() < 0.3
            prefix = "a" if base == "integer" else "v"
            self.vars.append(_Var(name=f"{prefix}{idx}", base=base, kind=kind,
                                  dims=dims, allocatable=allocatable))
            if allocatable:
                self._feature("allocatable")

    def declarations(self) -> List[ast.Declaration]:
        decls: List[ast.Declaration] = []
        for v in self.vars:
            spec = ast.TypeSpec(name=v.base,
                                kind=v.kind if v.base != "logical" else 0)
            entity = ast.EntityDecl(name=v.name)
            attributes: List[str] = []
            if v.is_array:
                if v.allocatable:
                    attributes.append("allocatable")
                    entity.dims = [ast.DimSpec(deferred=True)
                                   for _ in v.dims]
                else:
                    entity.dims = [ast.DimSpec(upper=_int(extent))
                                   for extent in v.dims]
            decls.append(ast.Declaration(type_spec=spec, entities=[entity],
                                         attributes=attributes))
        return decls

    # ---------------------------------------------------------------- integers
    def int_expr(self, ctx: _LoopContext, depth: int) -> Tuple[ast.Expr, float]:
        rng = self.rng
        if depth <= 0:
            return self._int_leaf(ctx)
        choice = self._pick(
            ["leaf", "add", "sub", "mul", "div", "mod", "minmax", "abs",
             "merge", "reduction"],
            [4, 3, 3, 2, 2, 2, 1.5, 1, 1, 1])
        if choice == "leaf":
            return self._int_leaf(ctx)
        if choice in ("add", "sub"):
            lhs, bl = self.int_expr(ctx, depth - 1)
            rhs, br = self.int_expr(ctx, depth - 1)
            return self._wrap_int(_bin("+" if choice == "add" else "-",
                                       lhs, rhs), bl + br)
        if choice == "mul":
            lhs, bl = self.int_expr(ctx, depth - 1)
            rhs, br = self.int_expr(ctx, depth - 1)
            if bl * br > _INT_LIMIT:
                lhs, bl = _call("mod", lhs, _int(_WRAP)), _WRAP
            if bl * br > _INT_LIMIT:
                rhs, br = _call("mod", rhs, _int(_WRAP)), _WRAP
            return self._wrap_int(_bin("*", lhs, rhs), bl * br)
        if choice == "div":
            # divisor may be negative or zero: the shared semantics define
            # x/0 == 0 and truncate toward zero — a deliberate tricky corner
            lhs, bl = self.int_expr(ctx, depth - 1)
            rhs, _ = self.int_expr(ctx, depth - 1)
            self._feature("int-division")
            return _bin("/", lhs, rhs), bl
        if choice == "mod":
            lhs, bl = self.int_expr(ctx, depth - 1)
            rhs, br = self.int_expr(ctx, depth - 1)
            self._feature("int-mod")
            return _call("mod", lhs, rhs), max(bl, br)
        if choice == "minmax":
            name = rng.choice(["min", "max"])
            lhs, bl = self.int_expr(ctx, depth - 1)
            rhs, br = self.int_expr(ctx, depth - 1)
            return _call(name, lhs, rhs), max(bl, br)
        if choice == "abs":
            operand, bound = self.int_expr(ctx, depth - 1)
            return _call("abs", operand), bound
        if choice == "merge":
            lhs, bl = self.int_expr(ctx, depth - 1)
            rhs, br = self.int_expr(ctx, depth - 1)
            cond = self.logical_expr(ctx, depth - 1)
            self._feature("merge")
            return _call("merge", lhs, rhs, cond), max(bl, br)
        # reduction over an integer array (order-independent: exact)
        arrays = self._arrays("integer")
        if not arrays:
            return self._int_leaf(ctx)
        array = rng.choice(arrays)
        kind = rng.choice(["sum", "maxval", "minval"])
        self._feature(f"int-{kind}")
        size = 1
        for extent in array.dims:
            size *= extent
        bound = array.bound * (size if kind == "sum" else 1)
        return self._wrap_int(_call(kind, _ref(array.name)), bound)

    def _int_leaf(self, ctx: _LoopContext) -> Tuple[ast.Expr, float]:
        rng = self.rng
        options: List[Tuple[str, float]] = [("literal", 3)]
        if self._scalars("integer", written=True):
            options.append(("var", 4))
        if ctx.ranges:
            options.append(("loop", 3))
        if self._arrays("integer"):
            options.append(("element", 2))
            options.append(("size", 0.5))
        choice = self._pick([o for o, _ in options], [w for _, w in options])
        if choice == "literal":
            value = rng.randint(-99, 99)
            return _int(value), abs(value)
        if choice == "var":
            var = rng.choice(self._scalars("integer", written=True))
            return _ref(var.name), var.bound
        if choice == "loop":
            name = rng.choice(list(ctx.ranges))
            lo, hi = ctx.ranges[name]
            return _ref(name), max(abs(lo), abs(hi))
        if choice == "size":
            array = rng.choice(self._arrays("integer"))
            return _call("size", _ref(array.name)), max(array.dims)
        array = rng.choice(self._arrays("integer"))
        return self._element_ref(array, ctx), array.bound

    def _wrap_int(self, expr: ast.Expr, bound: float) -> Tuple[ast.Expr, float]:
        if bound > _INT_LIMIT:
            self._feature("mod-wrap")
            return _call("mod", expr, _int(_WRAP)), _WRAP - 1
        return expr, bound

    def _index_expr(self, extent: int, ctx: _LoopContext) -> ast.Expr:
        """An expression guaranteed to land in ``1..extent``."""
        rng = self.rng
        in_range = [(name, (lo, hi)) for name, (lo, hi) in ctx.ranges.items()
                    if 1 <= lo and hi <= extent]
        roll = rng.random()
        if in_range and roll < 0.55:
            name, (lo, hi) = rng.choice(in_range)
            if rng.random() < 0.3 and hi + 1 <= extent + 1:
                # reversed access: extent+1-iv stays within 1..extent when
                # the loop range itself is within 1..extent
                return _bin("-", _int(extent + 1), _ref(name))
            return _ref(name)
        if roll < 0.8:
            return _int(rng.randint(1, extent))
        # clamped dynamic index: 1 + mod(abs(e), extent)
        inner, _ = self.int_expr(ctx, 1)
        self._feature("clamped-index")
        return _bin("+", _int(1),
                    _call("mod", _call("abs", inner), _int(extent)))

    def _element_ref(self, array: _Var, ctx: _LoopContext) -> ast.Expr:
        indices = [self._index_expr(extent, ctx) for extent in array.dims]
        return ast.CallOrIndex(name=array.name, args=indices)

    # ------------------------------------------------------------------- reals
    def real_expr(self, ctx: _LoopContext, depth: int, *,
                  need_exact: bool = False) -> Tuple[ast.Expr, float, bool]:
        rng = self.rng
        if depth <= 0:
            return self._real_leaf(ctx, need_exact)
        choice = self._pick(
            ["leaf", "add", "sub", "mul", "divide", "sqrt", "trig", "log",
             "minmax", "abs", "merge", "convert"],
            [4, 3, 3, 2.5, 1.5, 1, 1.5, 0.8, 1, 1, 0.8, 2])
        if choice == "leaf":
            return self._real_leaf(ctx, need_exact)
        if choice in ("add", "sub", "mul"):
            lhs, bl, el = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            rhs, br, er = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            op = {"add": "+", "sub": "-", "mul": "*"}[choice]
            bound = bl + br if op in "+-" else bl * br
            if op == "*" and bound > _REAL_LIMIT:
                op, bound = "+", bl + br
            return _bin(op, lhs, rhs), bound, el and er
        if choice == "divide":
            # guarded division: denominator >= 1.5 by construction
            lhs, bl, el = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            rhs, _, er = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            self._feature("guarded-divide")
            denominator = _bin("+", _real(1.5), _call("abs", rhs))
            return _bin("/", lhs, denominator), bl / 1.5, el and er
        if choice == "sqrt":
            operand, bound, exact = self.real_expr(ctx, depth - 1,
                                                   need_exact=need_exact)
            return _call("sqrt", _call("abs", operand)), bound ** 0.5, exact
        if choice == "trig":
            name = rng.choice(["sin", "cos", "tanh", "atan"])
            operand, _, exact = self.real_expr(ctx, depth - 1,
                                               need_exact=need_exact)
            return _call(name, operand), 1.6, exact
        if choice == "log":
            operand, bound, exact = self.real_expr(ctx, depth - 1,
                                                   need_exact=need_exact)
            guarded = _bin("+", _real(1.5), _call("abs", operand))
            import math
            return _call("log", guarded), math.log(1.5 + bound), exact
        if choice == "minmax":
            name = rng.choice(["min", "max"])
            lhs, bl, el = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            rhs, br, er = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            return _call(name, lhs, rhs), max(bl, br), el and er
        if choice == "abs":
            operand, bound, exact = self.real_expr(ctx, depth - 1,
                                                   need_exact=need_exact)
            return _call("abs", operand), bound, exact
        if choice == "merge":
            lhs, bl, el = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            rhs, br, er = self.real_expr(ctx, depth - 1, need_exact=need_exact)
            cond = self.logical_expr(ctx, depth - 1)
            return _call("merge", lhs, rhs, cond), max(bl, br), el and er
        # convert: an integer expression lifted to real (always exact)
        inner, bound = self.int_expr(ctx, depth - 1)
        name = rng.choice(["dble", "real"])
        return _call(name, inner), bound, True

    def _real_leaf(self, ctx: _LoopContext,
                   need_exact: bool) -> Tuple[ast.Expr, float, bool]:
        rng = self.rng
        candidates = self._scalars("real", written=True,
                                   exact=True if need_exact else None)
        options: List[Tuple[str, float]] = [("literal", 3)]
        if candidates:
            options.append(("var", 4))
        arrays = [a for a in self._arrays("real")
                  if a.exact or not need_exact]
        if arrays:
            options.append(("element", 2))
        options.append(("convert", 2))
        choice = self._pick([o for o, _ in options], [w for _, w in options])
        if choice == "literal":
            value = rng.randint(-2000, 2000) / 16.0
            kind = rng.choice([8, 8, 8, 4])
            return _real(value, kind), abs(value), True
        if choice == "var":
            var = rng.choice(candidates)
            return _ref(var.name), var.bound, var.exact
        if choice == "element":
            array = rng.choice(arrays)
            return self._element_ref(array, ctx), array.bound, array.exact
        inner, bound = self.int_expr(ctx, 1)
        return _call("dble", inner), bound, True

    # ---------------------------------------------------------------- logicals
    def logical_expr(self, ctx: _LoopContext, depth: int) -> ast.Expr:
        rng = self.rng
        choice = self._pick(["int-cmp", "real-cmp", "var", "literal", "combine",
                             "not"],
                            [4, 2, 1.5 if self._scalars("logical", written=True)
                             else 0, 1, 2 if depth > 0 else 0,
                             1 if depth > 0 else 0])
        cmp_ops = ["==", "/=", "<", "<=", ">", ">="]
        if choice == "int-cmp":
            lhs, _ = self.int_expr(ctx, max(depth - 1, 0))
            rhs, _ = self.int_expr(ctx, max(depth - 1, 0))
            return _bin(rng.choice(cmp_ops), lhs, rhs)
        if choice == "real-cmp":
            # only bit-reproducible float values may steer control flow
            lhs, _, _ = self.real_expr(ctx, max(depth - 1, 0), need_exact=True)
            rhs, _, _ = self.real_expr(ctx, max(depth - 1, 0), need_exact=True)
            self._feature("real-compare")
            return _bin(rng.choice(cmp_ops), lhs, rhs)
        if choice == "var":
            return _ref(rng.choice(self._scalars("logical", written=True)).name)
        if choice == "literal":
            return ast.LogicalLiteral(value=rng.random() < 0.5)
        if choice == "not":
            return ast.UnaryOp(op=".not.",
                               operand=self.logical_expr(ctx, depth - 1))
        op = rng.choice([".and.", ".or."])
        return _bin(op, self.logical_expr(ctx, depth - 1),
                    self.logical_expr(ctx, depth - 1))

    # ------------------------------------------------------------- assignments
    def _clamp_loop_int(self, ctx: _LoopContext, expr: ast.Expr,
                        bound: float) -> Tuple[ast.Expr, float]:
        """Inside loops values feed back into themselves across iterations,
        so static bounds no longer hold: every loop-carried write re-wraps.
        ``mod(x, 9973)`` is the identity for already-small values, so this
        costs nothing semantically."""
        if ctx.depth > 0:
            self._feature("mod-wrap")
            return _call("mod", expr, _int(_WRAP)), _WRAP - 1
        return self._wrap_int(expr, bound)

    def _clamp_loop_real(self, ctx: _LoopContext, expr: ast.Expr, bound: float,
                         kind: int) -> Tuple[ast.Expr, float]:
        """Clamp loop-carried reals into +-2^20 (exact, order-independent,
        identity for in-range values — no discontinuity to amplify)."""
        if ctx.depth > 0:
            clamp = 1048576.0
            return (_call("min", _call("max", expr, _real(-clamp, 8)),
                          _real(clamp, 8)), clamp)
        return expr, bound

    def _assign_scalar(self, ctx: _LoopContext, *,
                       depth: Optional[int] = None) -> ast.Stmt:
        rng = self.rng
        depth = depth if depth is not None else rng.randint(1, self.config.max_expr_depth)
        targets = [v for v in self.vars
                   if not v.is_array and not v.reserved and not v.is_nan]
        var = rng.choice(targets)
        if var.base == "integer":
            expr, bound = self.int_expr(ctx, depth)
            expr, bound = self._clamp_loop_int(ctx, expr, bound)
            var.bound = max(var.bound, bound)
            var.written = True
            return _assign(_ref(var.name), expr)
        if var.base == "real":
            expr, bound, exact = self.real_expr(ctx, depth)
            expr, bound = self._clamp_loop_real(ctx, expr, bound, var.kind)
            var.bound = max(var.bound, bound)
            var.exact = var.exact and exact if var.written else exact
            var.written = True
            return _assign(_ref(var.name), expr)
        var.written = True
        return _assign(_ref(var.name), self.logical_expr(ctx, depth))

    def _assign_element(self, array: _Var, ctx: _LoopContext) -> ast.Stmt:
        target = self._element_ref(array, ctx)
        if array.base == "integer":
            expr, bound = self.int_expr(ctx, 2)
            expr, bound = self._clamp_loop_int(ctx, expr, bound)
            array.bound = max(array.bound, bound)
        else:
            expr, bound, exact = self.real_expr(ctx, 2)
            expr, bound = self._clamp_loop_real(ctx, expr, bound, array.kind)
            array.bound = max(array.bound, bound)
            array.exact = array.exact and exact
        array.written = True
        return _assign(target, expr)

    # ------------------------------------------------------------------- loops
    def _loop_over(self, extent: int, ctx: _LoopContext,
                   make_body, *, reverse: bool = False) -> ast.DoLoop:
        name = self._loop_names[ctx.depth % len(self._loop_names)]
        inner = ctx.child(name, 1, extent)
        body = make_body(inner)
        if reverse:
            self._feature("negative-step-loop")
            return ast.DoLoop(var=name, start=_int(extent), end=_int(1),
                              step=_int(-1), body=body)
        return ast.DoLoop(var=name, start=_int(1), end=_int(extent), body=body)

    def _fill_array(self, array: _Var, ctx: _LoopContext) -> ast.Stmt:
        """Initialisation loop (nest) writing every element of ``array``."""
        def element_value(inner: _LoopContext) -> ast.Expr:
            if array.base == "integer":
                expr, bound = self.int_expr(inner, 2)
                expr, bound = self._wrap_int(expr, bound)
                array.bound = max(array.bound, bound)
                return expr
            expr, bound, exact = self.real_expr(inner, 2)
            array.bound = max(array.bound, bound)
            array.exact = array.exact and exact
            return expr

        if array.rank == 1:
            def body(inner: _LoopContext) -> List[ast.Stmt]:
                target = ast.CallOrIndex(name=array.name,
                                         args=[_ref(list(inner.ranges)[-1])])
                return [_assign(target, element_value(inner))]
            loop = self._loop_over(array.dims[0], ctx, body,
                                   reverse=self.rng.random() < 0.2)
        else:
            def inner_body(outer_name: str):
                def body(inner: _LoopContext) -> List[ast.Stmt]:
                    names = list(inner.ranges)
                    target = ast.CallOrIndex(
                        name=array.name,
                        args=[_ref(names[-1]), _ref(outer_name)])
                    return [_assign(target, element_value(inner))]
                return body

            def outer(inner: _LoopContext) -> List[ast.Stmt]:
                outer_name = list(inner.ranges)[-1]
                return [self._loop_over(array.dims[0], inner,
                                        inner_body(outer_name))]
            loop = self._loop_over(array.dims[1], ctx, outer)
        array.written = True
        return loop

    # ----------------------------------------------------------- body segments
    def _segment_menu(self, ctx: _LoopContext) -> List[Tuple[str, float]]:
        menu = [("scalar", 4), ("if", 2.5), ("select", 1.5), ("loop", 3),
                ("while", 1.2), ("reduction", 2), ("element-loop", 2)]
        return menu

    def emit_segment(self, ctx: _LoopContext) -> List[ast.Stmt]:
        menu = self._segment_menu(ctx)
        choice = self._pick([m for m, _ in menu], [w for _, w in menu])
        return getattr(self, f"_segment_{choice.replace('-', '_')}")(ctx)

    def _segment_scalar(self, ctx: _LoopContext) -> List[ast.Stmt]:
        return [self._assign_scalar(ctx)
                for _ in range(self.rng.randint(1, 2))]

    def _segment_if(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        self._feature("if-chain")
        node = ast.IfBlock()
        for _ in range(rng.randint(1, 3)):
            node.conditions.append(self.logical_expr(ctx, 2))
            node.bodies.append([self._assign_scalar(ctx, depth=2)
                                for _ in range(rng.randint(1, 2))])
        if rng.random() < 0.7:
            node.else_body = [self._assign_scalar(ctx, depth=2)]
        return [node]

    def _segment_select(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        self._feature("select-case")
        selectors = self._scalars("integer", written=True)
        if ctx.ranges and rng.random() < 0.5:
            selector: ast.Expr = _ref(rng.choice(list(ctx.ranges)))
        elif selectors:
            selector = _ref(rng.choice(selectors).name)
        else:
            selector, _ = self.int_expr(ctx, 1)
        node = ast.SelectCase(selector=selector)
        values = rng.sample(range(-8, 12), k=12)
        cursor = 0
        for _ in range(rng.randint(2, 3)):
            items: List[ast.CaseRange] = []
            if rng.random() < 0.35:
                lo, hi = sorted((values[cursor], values[cursor + 1]))
                items.append(ast.CaseRange(lower=_int(lo), upper=_int(hi),
                                           is_range=True))
                cursor += 2
            else:
                items.append(ast.CaseRange(lower=_int(values[cursor]),
                                           upper=_int(values[cursor])))
                cursor += 1
            if rng.random() < 0.3:
                items.append(ast.CaseRange(lower=_int(values[cursor]),
                                           upper=_int(values[cursor])))
                cursor += 1
            node.cases.append(ast.CaseBlock(
                items=items,
                body=[self._assign_scalar(ctx, depth=2)]))
        if rng.random() < 0.8:
            node.default_body = [self._assign_scalar(ctx, depth=2)]
        return [node]

    def _segment_loop(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        if ctx.depth >= self.config.max_loop_nest:
            return self._segment_scalar(ctx)
        extent = rng.randint(2, 8)

        def body(inner: _LoopContext) -> List[ast.Stmt]:
            stmts: List[ast.Stmt] = []
            for _ in range(rng.randint(1, 2)):
                arrays = self._arrays("integer") + self._arrays("real")
                if arrays and rng.random() < 0.6:
                    stmts.append(self._assign_element(rng.choice(arrays), inner))
                else:
                    stmts.append(self._assign_scalar(inner, depth=2))
            if inner.depth < self.config.max_loop_nest and rng.random() < 0.3:
                stmts.extend(self._segment_loop(inner))
            return stmts

        self._feature("do-loop")
        return [self._loop_over(extent, ctx, body,
                                reverse=rng.random() < 0.2)]

    def _segment_while(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        if ctx.depth >= self.config.max_loop_nest:
            return self._segment_scalar(ctx)
        self._feature("do-while")
        counter = f"w{self._while_counter}"
        self._while_counter += 1
        var = _Var(name=counter, base="integer", kind=4, reserved=True,
                   bound=16, written=True)
        self.vars.append(var)
        trips = rng.randint(2, 6)
        # the while body re-executes: give assignments loop discipline
        inner = _LoopContext(ranges=dict(ctx.ranges), depth=ctx.depth + 1)
        body: List[ast.Stmt] = [self._assign_scalar(inner, depth=2)]
        if rng.random() < 0.3:
            # early exit half-way through
            body.append(ast.IfBlock(
                conditions=[_bin("<", _ref(counter), _int(trips // 2 + 1))],
                bodies=[[ast.ExitStmt()]]))
            self._feature("exit")
        body.append(_assign(_ref(counter),
                            _bin("-", _ref(counter), _int(1))))
        return [
            _assign(_ref(counter), _int(trips)),
            ast.DoWhile(condition=_bin(">", _ref(counter), _int(0)),
                        body=body),
        ]

    def _segment_reduction(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        if ctx.depth >= self.config.max_loop_nest:
            return self._segment_scalar(ctx)
        arrays = [a for a in self._arrays("integer") + self._arrays("real")
                  if a.rank == 1 and not (a.base == "real" and a.kind == 4)]
        if not arrays:
            return self._segment_scalar(ctx)
        array = rng.choice(arrays)
        if array.base == "integer":
            accs = self._scalars("integer")
        else:
            accs = [v for v in self._scalars("real") if v.kind == 8]
        if not accs:
            return self._segment_scalar(ctx)
        acc = rng.choice(accs)
        self._feature("loop-reduction")

        def body(inner: _LoopContext) -> List[ast.Stmt]:
            element = ast.CallOrIndex(name=array.name,
                                      args=[_ref(list(inner.ranges)[-1])])
            return [_assign(_ref(acc.name),
                            _bin("+", _ref(acc.name), element))]

        size = array.dims[0]
        init = _assign(_ref(acc.name),
                       _int(0) if acc.base == "integer" else _real(0.0, 8))
        acc.written = True
        if acc.base == "integer":
            acc.bound = max(acc.bound, array.bound * size)
            stmts: List[ast.Stmt] = [init,
                                     self._loop_over(size, ctx, body)]
            wrapped, acc.bound = self._wrap_int(_ref(acc.name), acc.bound)
            if not isinstance(wrapped, ast.Identifier):
                stmts.append(_assign(_ref(acc.name), wrapped))
            return stmts
        # float accumulation order differs between flows once vectorised:
        # the accumulator is no longer bit-reproducible across flows
        acc.exact = False
        acc.bound = max(acc.bound, array.bound * size)
        return [init, self._loop_over(size, ctx, body)]

    def _segment_element_loop(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        if ctx.depth >= self.config.max_loop_nest:
            return self._segment_scalar(ctx)
        arrays = [a for a in self._arrays("integer") + self._arrays("real")
                  if a.rank == 1]
        if not arrays:
            return self._segment_scalar(ctx)
        array = rng.choice(arrays)
        extent = array.dims[0]
        self._feature("dependence-chain")

        def body(inner: _LoopContext) -> List[ast.Stmt]:
            name = list(inner.ranges)[-1]
            # a(i) = f(a(i-1+1)) style chain within bounds: use max(i-1, 1)
            prev = ast.CallOrIndex(
                name=array.name,
                args=[_call("max", _bin("-", _ref(name), _int(1)), _int(1))])
            if array.base == "integer":
                extra, bound = self.int_expr(inner, 1)
                value, bound = self._clamp_loop_int(
                    inner, _bin("+", prev, extra), array.bound + bound)
                array.bound = max(array.bound, bound)
            else:
                extra, bound, exact = self.real_expr(inner, 1)
                value, bound = self._clamp_loop_real(
                    inner, _bin("+", prev, extra),
                    array.bound + bound * extent, array.kind)
                array.bound = max(array.bound, bound)
                array.exact = array.exact and exact
            target = ast.CallOrIndex(name=array.name, args=[_ref(name)])
            return [_assign(target, value)]

        return [self._loop_over(extent, ctx, body)]

    # ----------------------------------------------------------------- corners
    def corner_mixed_sign_division(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        self._feature("corner-mixed-sign-division")
        ints = self._scalars("integer", written=True)
        if len(ints) < 2:
            return []
        a, b = rng.sample(ints, 2)
        target = rng.choice(ints)
        numerator = _bin("-", _int(0), _ref(a.name)) \
            if rng.random() < 0.5 else _ref(a.name)
        denominator_value = rng.choice([-3, -2, 0, 2, 3])
        denominator = _ref(b.name) if rng.random() < 0.5 \
            else _int(denominator_value)
        quotient = _bin("/", numerator, denominator)
        remainder = _call("mod", numerator, denominator)
        target.bound = max(target.bound, a.bound, b.bound)
        target.written = True
        return [_assign(_ref(target.name),
                        _bin("+", quotient, remainder))]

    def corner_zero_trip_loop(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        self._feature("corner-zero-trip-loop")
        name = self._loop_names[ctx.depth % len(self._loop_names)]
        inner = ctx.child(name, 5, 4)
        # the body must not execute: poison a scalar if it ever runs
        targets = self._scalars("integer")
        if not targets:
            return []
        victim = rng.choice(targets)
        victim.written = True
        body = [_assign(_ref(victim.name), _int(-77777))]
        start, end = (_int(5), _int(4)) if rng.random() < 0.5 \
            else (_int(1), _int(0))
        return [ast.DoLoop(var=name, start=start, end=end, body=body)]

    def corner_nan(self, ctx: _LoopContext) -> List[ast.Stmt]:
        rng = self.rng
        self._feature("corner-nan")
        nan_var = _Var(name="qnan", base="real", kind=8, is_nan=True,
                       written=True)
        self.vars.append(nan_var)
        reals = self._scalars("real", written=True, exact=True)
        seed_expr: ast.Expr
        if reals and rng.random() < 0.5:
            seed_expr = _call("abs", _ref(rng.choice(reals).name))
        else:
            seed_expr = _real(abs(rng.randint(1, 50)) / 4.0, 8)
        # sqrt of a strictly negative value: a quiet NaN on every engine
        stmts: List[ast.Stmt] = [
            _assign(_ref("qnan"),
                    _call("sqrt", _bin("-", _real(-2.0, 8), seed_expr))),
        ]
        ints = self._scalars("integer")
        if ints:
            flag = rng.choice(ints)
            flag.written = True
            flag.bound = max(flag.bound, 9)
            # NaN-aware comparison semantics: /= is unordered-true, the
            # ordered predicates are false, and either branch is deterministic
            stmts.append(_assign(
                _ref(flag.name),
                _bin("+",
                     _call("merge", _int(4), _int(2),
                           _bin("/=", _ref("qnan"), _ref("qnan"))),
                     _call("merge", _int(1), _int(0),
                           _bin(">", _ref("qnan"), _real(0.0, 8))))))
            stmts.append(ast.IfBlock(
                conditions=[_bin("<=", _ref("qnan"), _real(1e9, 8))],
                bodies=[[_assign(_ref(flag.name),
                                 _bin("-", _int(0), _ref(flag.name)))]]))
        return stmts

    def corner_negative_step(self, ctx: _LoopContext) -> List[ast.Stmt]:
        self._feature("corner-negative-step")
        arrays = [a for a in self._arrays("integer") if a.rank == 1]
        if not arrays:
            return []
        array = self.rng.choice(arrays)

        def body(inner: _LoopContext) -> List[ast.Stmt]:
            return [self._assign_element(array, inner)]

        return [self._loop_over(array.dims[0], ctx, body, reverse=True)]

    # ------------------------------------------------------------------ prints
    def emit_prints(self) -> List[ast.Stmt]:
        rng = self.rng
        stmts: List[ast.Stmt] = []
        int_items: List[ast.Expr] = []
        for var in self.vars:
            if var.is_array or not var.written:
                continue
            if var.base == "integer" and not var.reserved:
                int_items.append(_ref(var.name))
            elif var.base == "logical":
                int_items.append(_call("merge", _int(1), _int(0),
                                       _ref(var.name)))
        while int_items:
            take = min(len(int_items), rng.randint(2, 4))
            stmts.append(ast.PrintStmt(items=int_items[:take]))
            int_items = int_items[take:]
        for var in self.vars:
            if var.is_array or var.base != "real" or not var.written:
                continue
            # f32 values print through dble() so both flows format the same
            # widened f64 value regardless of how they box float32 scalars
            item = _ref(var.name) if var.kind == 8 else _call("dble",
                                                              _ref(var.name))
            stmts.append(ast.PrintStmt(items=[item]))
        for array in self._arrays("integer"):
            stmts.append(ast.PrintStmt(
                items=[_call("sum", _ref(array.name)),
                       _call("maxval", _ref(array.name)),
                       _call("minval", _ref(array.name))]))
        for array in self._arrays("real"):
            # maxval/minval are order-independent (exact on any engine/flow);
            # sum is only printed for f64 where reorder error ~1e-15 rel.
            items = [_call("dble", _call("maxval", _ref(array.name))),
                     _call("dble", _call("minval", _ref(array.name)))]
            if array.kind == 8:
                items.append(_call("sum", _ref(array.name)))
            stmts.append(ast.PrintStmt(items=items))
        return stmts

    # ------------------------------------------------------------------- build
    def build(self) -> ast.Subprogram:
        rng = self.rng
        cfg = self.config
        ctx = _LoopContext()
        self.declare_variables()
        body: List[ast.Stmt] = []
        # allocations first, then scalar seeds, then array fills
        for var in self.vars:
            if var.is_array and var.allocatable:
                body.append(ast.AllocateStmt(allocations=[
                    (var.name, [_int(extent) for extent in var.dims])]))
        for var in list(self.vars):
            if var.is_array or var.reserved:
                continue
            if var.base == "integer":
                value = rng.randint(-60, 99)
                body.append(_assign(_ref(var.name), _int(value)))
                var.bound = abs(value)
            elif var.base == "real":
                value = rng.randint(-800, 800) / 16.0
                body.append(_assign(_ref(var.name), _real(value, var.kind)))
                var.bound = abs(value)
            else:
                body.append(_assign(_ref(var.name),
                                    ast.LogicalLiteral(value=rng.random() < 0.5)))
            var.written = True
        for var in list(self.vars):
            if var.is_array:
                body.append(self._fill_array(var, ctx))
        # main body segments
        for _ in range(rng.randint(cfg.min_body_segments,
                                   cfg.max_body_segments)):
            body.extend(self.emit_segment(ctx))
        # tricky corners: one guaranteed, the rest probabilistic
        corners = [self.corner_mixed_sign_division, self.corner_zero_trip_loop,
                   self.corner_nan, self.corner_negative_step]
        guaranteed = rng.randrange(len(corners))
        for index, corner in enumerate(corners):
            if index == guaranteed or rng.random() < cfg.corner_probability:
                body.extend(corner(ctx))
        body.extend(self.emit_prints())
        return ast.Subprogram(kind="program", name=f"conf{self.seed}",
                              declarations=self.declarations(), body=body)


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def generate(seed: int,
             config: Optional[GeneratorConfig] = None) -> GeneratedKernel:
    """Deterministically derive a conformance kernel from ``seed``."""
    builder = _KernelBuilder(int(seed), config or GeneratorConfig())
    program = builder.build()
    unit = ast.CompilationUnit(subprograms=[program])
    return GeneratedKernel(seed=int(seed), unit=unit, source=unparse(unit),
                           features=tuple(builder.features))


def family_factory(rest: str, **kwargs) -> Workload:
    """Resolve ``conformance/<seed>`` names for the workload registry."""
    try:
        seed = int(rest)
    except ValueError:
        raise KeyError(f"conformance workload names are 'conformance/<seed>', "
                       f"got rest {rest!r}") from None
    return generate(seed, **kwargs).workload()


__all__ = ["GeneratedKernel", "GeneratorConfig", "family_factory", "generate"]
