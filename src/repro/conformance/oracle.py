"""Differential conformance oracle.

Compiles a kernel through **every registered flow** (plus a no-opt baseline
of the paper's flow), executes each compiled module on **every interpreter
engine** (cached-dispatch, the one-op reference, and the trace-compiling
jit), and flags any divergence in the declared observables:

* between the engines of one flow, printed output and
  :class:`~repro.machine.ExecutionStats` must match **bit for bit** — all
  engines execute the very same module;
* across flows, printed output must match **numerically**: integer and
  logical tokens exactly, real tokens to a tight tolerance (flows may
  legitimately reorder f64 reductions, which perturbs the last few ulps;
  anything above ``rtol=1e-9`` is a real divergence).  Statistics are *not*
  comparable across flows — different pipelines execute different IR.

Two execution paths share the comparison logic: :func:`check_kernel` runs
in-process (what the reducer's predicate uses), and :func:`run_sweep` routes
``(seed, flow, engine)`` jobs through the :class:`~repro.service.CompileService`
scheduler so big sweeps fan out across cores and cache across runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..flows import ENGINES, available_flows, get_flow
from ..machine import Interpreter
from ..service import CompileJob, CompileService
from ..service.serialization import stats_to_dict
from ..workloads import Workload
from .generator import GeneratedKernel, generate

#: Cross-flow tolerance for real-valued output tokens.
REAL_RTOL = 1e-9
REAL_ATOL = 1e-12


# ---------------------------------------------------------------------------
# configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlowConfig:
    """One compiled variant under test: a flow name plus pipeline options."""

    label: str
    flow: str
    options: Tuple[Tuple[str, Any], ...] = ()

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)


def default_configs() -> List[FlowConfig]:
    """Every registered flow under default options, plus a no-opt baseline.

    The baseline disables the paper flow's vectoriser/unroller/tiler so
    kernel results are also checked against a straight-line compilation.
    """
    names = available_flows()
    configs = [FlowConfig(label=name, flow=name) for name in names]
    if "ours" in names:
        configs.append(FlowConfig(
            label="ours@noopt", flow="ours",
            options=(("tile", False), ("unroll", 0), ("vector_width", 0))))
    return configs


# ---------------------------------------------------------------------------
# observations and divergences
# ---------------------------------------------------------------------------


@dataclass
class Observation:
    """What one (flow config, engine) pair produced for a kernel."""

    config: str
    engine: str
    ok: bool
    printed: Tuple[str, ...] = ()
    stats: Optional[Dict[str, Any]] = None
    error: str = ""

    @property
    def label(self) -> str:
        return f"{self.config}@{self.engine}"


@dataclass
class Divergence:
    """One observed disagreement between two observations of a kernel."""

    kind: str                   # engine-output | engine-stats | engine-error |
                                # flow-output | flow-error | all-failed
    left: str
    right: str
    detail: str
    seed: Optional[int] = None

    def describe(self) -> str:
        prefix = f"seed {self.seed}: " if self.seed is not None else ""
        return f"{prefix}[{self.kind}] {self.left} vs {self.right}: {self.detail}"


@dataclass
class KernelReport:
    """All observations and divergences for one kernel."""

    source: str
    seed: Optional[int] = None
    observations: Dict[Tuple[str, str], Observation] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class SweepReport:
    """Outcome of a multi-seed conformance sweep."""

    seeds: List[int] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)
    engines: List[str] = field(default_factory=lambda: list(ENGINES))
    divergent: List[KernelReport] = field(default_factory=list)
    duration: float = 0.0
    service_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergent

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergent)} divergent seed(s)"
        return (f"conformance sweep: {len(self.seeds)} seed(s) x "
                f"{len(self.configs)} flow config(s) x "
                f"{len(self.engines)} engine(s) "
                f"in {self.duration:.1f}s -> {status}")


# ---------------------------------------------------------------------------
# printed-output comparison
# ---------------------------------------------------------------------------


def _parse_number(token: str):
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return None


def _tokens_equivalent(a: str, b: str, rtol: float, atol: float) -> bool:
    if a == b:
        return True
    na, nb = _parse_number(a), _parse_number(b)
    if na is None or nb is None:
        return False
    if isinstance(na, int) and isinstance(nb, int):
        return na == nb
    fa, fb = float(na), float(nb)
    if math.isnan(fa) or math.isnan(fb):
        return math.isnan(fa) and math.isnan(fb)
    return bool(np.isclose(fa, fb, rtol=rtol, atol=atol))


def printed_difference(a: Sequence[str], b: Sequence[str], *,
                       rtol: float = REAL_RTOL,
                       atol: float = REAL_ATOL) -> Optional[str]:
    """First numeric-aware difference between two printed outputs, or None."""
    if len(a) != len(b):
        return f"line count {len(a)} != {len(b)}"
    for index, (line_a, line_b) in enumerate(zip(a, b)):
        tokens_a, tokens_b = line_a.split(), line_b.split()
        if len(tokens_a) != len(tokens_b):
            return f"line {index}: {line_a!r} != {line_b!r}"
        for token_a, token_b in zip(tokens_a, tokens_b):
            if not _tokens_equivalent(token_a, token_b, rtol, atol):
                return (f"line {index}: token {token_a!r} != {token_b!r} "
                        f"({line_a!r} vs {line_b!r})")
    return None


def _stats_difference(a: Optional[Dict], b: Optional[Dict]) -> Optional[str]:
    if a == b:
        return None
    from ..service.serialization import stats_from_dict
    if a is not None and b is not None:
        details = stats_from_dict(a).diff(stats_from_dict(b))
        if not details:
            return None
        shown = "; ".join(details[:4])
        more = f" (+{len(details) - 4} more)" if len(details) > 4 else ""
        return shown + more
    return "stats present on one engine only"


# ---------------------------------------------------------------------------
# comparison of a full observation set
# ---------------------------------------------------------------------------


def compare_observations(observations: Dict[Tuple[str, str], Observation],
                         configs: Sequence[FlowConfig], *,
                         engines: Sequence[str] = ENGINES,
                         seed: Optional[int] = None) -> List[Divergence]:
    divergences: List[Divergence] = []
    baseline_engine = engines[0]

    # 1. engine parity within each flow config: every other engine must be
    #    bit-exact against the baseline engine (output and statistics)
    for config in configs:
        compiled = observations[(config.label, baseline_engine)]
        for engine in engines[1:]:
            other = observations[(config.label, engine)]
            if compiled.ok != other.ok:
                broken = compiled if not compiled.ok else other
                divergences.append(Divergence(
                    kind="engine-error", left=compiled.label,
                    right=other.label,
                    detail=f"only {broken.label} failed: {broken.error}",
                    seed=seed))
                continue
            if not compiled.ok:
                continue  # all failed: reported by the cross-flow pass below
            if compiled.printed != other.printed:
                detail = printed_difference(compiled.printed, other.printed,
                                            rtol=0.0, atol=0.0) \
                    or "output differs"
                divergences.append(Divergence(
                    kind="engine-output", left=compiled.label,
                    right=other.label, detail=detail, seed=seed))
            stats_detail = _stats_difference(compiled.stats, other.stats)
            if stats_detail is not None:
                divergences.append(Divergence(
                    kind="engine-stats", left=compiled.label,
                    right=other.label, detail=stats_detail, seed=seed))

    # 2. cross-flow output parity on the baseline engine
    compiled_obs = [observations[(config.label, baseline_engine)]
                    for config in configs]
    ok_obs = [o for o in compiled_obs if o.ok]
    if not ok_obs:
        first = compiled_obs[0]
        divergences.append(Divergence(
            kind="all-failed", left=first.label, right=first.label,
            detail=f"every flow failed; first error: {first.error}", seed=seed))
        return divergences
    baseline = ok_obs[0]
    for observation in compiled_obs:
        if observation is baseline:
            continue
        if not observation.ok:
            divergences.append(Divergence(
                kind="flow-error", left=baseline.label, right=observation.label,
                detail=f"{observation.config} failed: {observation.error}",
                seed=seed))
            continue
        detail = printed_difference(baseline.printed, observation.printed)
        if detail is not None:
            divergences.append(Divergence(
                kind="flow-output", left=baseline.label,
                right=observation.label, detail=detail, seed=seed))
    return divergences


# ---------------------------------------------------------------------------
# in-process execution (used by the reducer and single-kernel checks)
# ---------------------------------------------------------------------------


def _adhoc_workload(source: str) -> Workload:
    return Workload(name="conformance/adhoc", category="conformance",
                    description="ad-hoc conformance kernel",
                    source_template=source.replace("{", "{{").replace("}", "}}"),
                    paper_params={}, interp_params={},
                    work_model=lambda p: 1.0)


def _observe_in_process(source: str, config: FlowConfig, max_ops: int,
                        engines: Sequence[str] = ENGINES) -> List[Observation]:
    """Compile once, interpret the same module on every engine."""
    workload = _adhoc_workload(source)
    out: List[Observation] = []
    with np.errstate(all="ignore"):
        try:
            flow = get_flow(config.flow)
            result = flow.run(workload, config.options_dict(),
                              collect_statistics=False)
            if result.error is not None:
                raise RuntimeError(result.error)
            module = result.module
        except Exception as exc:
            message = f"{type(exc).__name__}: {exc}"
            return [Observation(config=config.label, engine=engine, ok=False,
                                error=message) for engine in engines]
        for engine in engines:
            try:
                interpreter = Interpreter(module, max_ops=max_ops,
                                          engine=engine)
                interpreter.run_main()
                out.append(Observation(
                    config=config.label, engine=engine, ok=True,
                    printed=tuple(interpreter.printed),
                    stats=stats_to_dict(interpreter.stats)))
            except Exception as exc:
                out.append(Observation(config=config.label, engine=engine,
                                       ok=False,
                                       error=f"{type(exc).__name__}: {exc}"))
    return out


def check_kernel(source: str, configs: Optional[Sequence[FlowConfig]] = None,
                 *, seed: Optional[int] = None,
                 engines: Optional[Sequence[str]] = None,
                 max_ops: int = 20_000_000) -> KernelReport:
    """Differentially check one kernel, fully in-process."""
    configs = list(configs) if configs is not None else default_configs()
    engines = list(engines) if engines is not None else list(ENGINES)
    report = KernelReport(source=source, seed=seed)
    for config in configs:
        for observation in _observe_in_process(source, config, max_ops,
                                               engines):
            report.observations[(config.label, observation.engine)] = observation
    report.divergences = compare_observations(report.observations, configs,
                                              engines=engines, seed=seed)
    return report


def check_seed(seed: int, configs: Optional[Sequence[FlowConfig]] = None,
               engines: Optional[Sequence[str]] = None) -> KernelReport:
    """Generate the kernel for ``seed`` and differentially check it."""
    return check_kernel(generate(seed).source, configs, seed=seed,
                        engines=engines)


# ---------------------------------------------------------------------------
# service-scheduled sweeps
# ---------------------------------------------------------------------------


def _seed_jobs(seed: int, configs: Sequence[FlowConfig],
               engines: Sequence[str]) -> Dict[Tuple[str, str], CompileJob]:
    jobs: Dict[Tuple[str, str], CompileJob] = {}
    for config in configs:
        for engine in engines:
            jobs[(config.label, engine)] = CompileJob(
                flow=config.flow, workload_name=f"conformance/{seed}",
                options=config.options_dict(), engine=engine)
    return jobs


def run_sweep(seeds: Iterable[int],
              configs: Optional[Sequence[FlowConfig]] = None, *,
              engines: Optional[Sequence[str]] = None,
              service: Optional[CompileService] = None,
              max_workers: int = 1,
              progress=None) -> SweepReport:
    """Differentially check many seeds through the compile service.

    All ``seed x flow x engine`` jobs go into one batch: the service
    deduplicates, strips cache hits and fans the misses out over its process
    pool (generated kernels are pool-safe because ``conformance/<seed>``
    names regenerate deterministically in any process).
    """
    seeds = list(seeds)
    configs = list(configs) if configs is not None else default_configs()
    engines = list(engines) if engines is not None else list(ENGINES)
    if service is None:
        service = CompileService(max_workers=max_workers)
    report = SweepReport(seeds=seeds, configs=[c.label for c in configs],
                         engines=engines)
    started = time.perf_counter()

    # Chunked submission: each chunk's artifacts are collected right after
    # its batch, so the service's memory LRU is never evicted between the
    # pool run and the comparison, and progress is incremental.
    jobs_per_seed = max(1, len(configs) * len(engines))
    chunk_size = max(1, 384 // jobs_per_seed)
    with np.errstate(all="ignore"):
        for offset in range(0, len(seeds), chunk_size):
            chunk = seeds[offset:offset + chunk_size]
            chunk_jobs: Dict[int, Dict[Tuple[str, str], CompileJob]] = {
                seed: _seed_jobs(seed, configs, engines) for seed in chunk}
            service.submit([job for per_seed in chunk_jobs.values()
                            for job in per_seed.values()],
                           max_workers=max_workers)
            for seed in chunk:
                kernel_report = KernelReport(source="", seed=seed)
                for (label, engine), job in chunk_jobs[seed].items():
                    artifact = service.execute(job)  # cache hit after submit
                    kernel_report.observations[(label, engine)] = Observation(
                        config=label, engine=engine, ok=artifact.ok,
                        printed=tuple(artifact.printed),
                        stats=stats_to_dict(artifact.stats)
                        if artifact.stats is not None else None,
                        error=artifact.error)
                kernel_report.divergences = compare_observations(
                    kernel_report.observations, configs, engines=engines,
                    seed=seed)
                if not kernel_report.ok:
                    kernel_report.source = generate(seed).source
                    report.divergent.append(kernel_report)
                if progress is not None:
                    progress(seed, kernel_report)

    report.duration = time.perf_counter() - started
    report.service_counters = service.counters()
    return report


__all__ = [
    "Divergence", "FlowConfig", "KernelReport", "Observation", "SweepReport",
    "check_kernel", "check_seed", "compare_observations", "default_configs",
    "printed_difference", "run_sweep",
]
