"""Chaos conformance: fault-injected sweeps must match fault-free sweeps.

The chaos harness closes the loop on the service stack's fault tolerance.
A **baseline** sweep runs the differential oracle with no faults armed and
records every ``(seed, flow config, engine)`` observation.  Then, for each
chaos plan seed, :meth:`~repro.service.faults.FaultPlan.random` derives a
replayable plan of *recoverable* faults (torn shard writes, corrupt
payloads, attempt-0 worker crashes and hangs), the sweep reruns under that
plan on a fresh cache directory, and the harness asserts

* **bit-identity** — printed output, statistics, and error status of every
  observation match the baseline exactly (faults may cost retries and
  recompiles, never answers),
* **zero unrecovered failures** — no divergent seeds, no quarantined jobs
  under a recoverable plan, and
* **bounded retries** — the scheduler's requeue count stays within the
  ``max_attempts`` budget for the job population.

Because every firing decision is a pure function of the plan seed (see
:mod:`repro.service.faults`), a failing chaos run is replayable from its
one-line spec: ``REPRO_FAULTS='<spec>' python -m repro.conformance run ...``.

:func:`quarantine_demo` exercises the *unrecoverable* path on purpose: a
job whose worker crashes on every attempt must end up quarantined as a
cached poison artifact while its innocent batch-mates complete.

CLI: ``python -m repro.conformance run --chaos <seed> [--chaos-plans N]``.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Optional, Sequence, TextIO,
                    Tuple)

from ..flows import ENGINES
from ..service import CompileJob
from ..service import faults
from ..service.cache import ArtifactCache
from ..service.scheduler import CompileService
from .oracle import FlowConfig, default_configs, run_sweep

#: ``(seed, config label, engine)`` -> ``(ok, printed, stats, error)``.
ObservationMap = Dict[Tuple[int, str, str],
                      Tuple[bool, Tuple[str, ...], Optional[Dict[str, Any]],
                            str]]


@dataclass
class ChaosRun:
    """One fault-injected sweep compared against the clean baseline."""

    plan_seed: int
    spec: str                                 # replay with $REPRO_FAULTS
    mismatches: List[str] = field(default_factory=list)
    unrecovered: List[str] = field(default_factory=list)
    self_heal: Dict[str, int] = field(default_factory=dict)
    fired: Dict[str, int] = field(default_factory=dict)
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.unrecovered


@dataclass
class ChaosReport:
    """Outcome of a full chaos sweep (baseline + every fault plan)."""

    seeds: List[int] = field(default_factory=list)
    plan_seeds: List[int] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)
    engines: List[str] = field(default_factory=list)
    baseline_divergent: int = 0
    baseline_duration: float = 0.0
    runs: List[ChaosRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.baseline_divergent == 0 and all(r.ok for r in self.runs)

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        bad = [r for r in self.runs if not r.ok]
        detail = f", {len(bad)} bad plan(s)" if bad else ""
        retries = sum(r.self_heal.get("retries", 0) for r in self.runs)
        crashes = sum(r.self_heal.get("pool_crashes", 0) for r in self.runs)
        return (f"chaos sweep: {len(self.seeds)} seed(s) x "
                f"{len(self.configs)} config(s) x {len(self.engines)} "
                f"engine(s) under {len(self.runs)} fault plan(s) -> {status} "
                f"(bit-identical to the fault-free baseline; {retries} "
                f"retries, {crashes} pool rebuilds absorbed{detail})")


def _sweep_once(seeds: Sequence[int], configs: Sequence[FlowConfig],
                engines: Sequence[str], jobs: int
                ) -> Tuple[ObservationMap, Any, CompileService]:
    """One full oracle sweep on a fresh service + throwaway cache dir."""
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    observations: ObservationMap = {}

    def progress(seed, kernel_report) -> None:
        for (label, engine), obs in kernel_report.observations.items():
            observations[(seed, label, engine)] = (obs.ok, obs.printed,
                                                   obs.stats, obs.error)

    service = CompileService(ArtifactCache(cache_dir=cache_dir),
                             max_workers=jobs)
    try:
        sweep = run_sweep(seeds, configs, engines=engines, max_workers=jobs,
                          service=service, progress=progress)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return observations, sweep, service


def _diff_observations(baseline: ObservationMap,
                       chaos: ObservationMap) -> List[str]:
    """Human-readable list of every observation that is not bit-identical."""
    problems: List[str] = []
    for key in sorted(set(baseline) | set(chaos)):
        seed, label, engine = key
        if key not in baseline:
            problems.append(f"seed {seed} {label}@{engine}: "
                            f"present only under faults")
        elif key not in chaos:
            problems.append(f"seed {seed} {label}@{engine}: "
                            f"missing under faults")
        elif baseline[key] != chaos[key]:
            b_ok, b_printed, b_stats, b_error = baseline[key]
            c_ok, c_printed, c_stats, c_error = chaos[key]
            if b_ok != c_ok:
                what = f"ok {b_ok} != {c_ok} ({c_error or b_error})"
            elif b_printed != c_printed:
                what = "printed output differs"
            elif b_stats != c_stats:
                what = "execution statistics differ"
            else:
                what = "error text differs"
            problems.append(f"seed {seed} {label}@{engine}: {what}")
    return problems


def run_chaos(seeds: Iterable[int], plan_seeds: Iterable[int], *,
              configs: Optional[Sequence[FlowConfig]] = None,
              engines: Optional[Sequence[str]] = None,
              jobs: int = 2,
              out: Optional[TextIO] = None) -> ChaosReport:
    """Baseline sweep + one fault-injected sweep per plan seed.

    ``jobs`` should be at least 2: worker crash/hang sites only live in
    pool workers, and the scheduler goes through the pool only when it has
    both multiple workers and multiple misses.
    """
    out = out if out is not None else sys.stderr
    seeds = list(seeds)
    plan_seeds = list(plan_seeds)
    configs = list(configs) if configs is not None else default_configs()
    engines = list(engines) if engines is not None else list(ENGINES)
    report = ChaosReport(seeds=seeds, plan_seeds=plan_seeds,
                         configs=[c.label for c in configs],
                         engines=engines)

    started = time.perf_counter()
    baseline, baseline_sweep, _ = _sweep_once(seeds, configs, engines, jobs)
    report.baseline_duration = time.perf_counter() - started
    report.baseline_divergent = len(baseline_sweep.divergent)
    print(f"chaos baseline: {len(baseline)} observation(s) in "
          f"{report.baseline_duration:.1f}s"
          + (f" — {report.baseline_divergent} DIVERGENT seed(s) "
             f"(a conformance bug, not a fault-tolerance one)"
             if report.baseline_divergent else ""),
          file=out)

    total_jobs = len(seeds) * len(configs) * len(engines)
    for plan_seed in plan_seeds:
        plan = faults.FaultPlan.random(plan_seed)
        started = time.perf_counter()
        with faults.install(plan):
            observations, sweep, service = _sweep_once(seeds, configs,
                                                       engines, jobs)
        run = ChaosRun(plan_seed=plan_seed, spec=plan.to_spec(),
                       self_heal=service.self_heal_counters(),
                       fired=dict(plan.fired),
                       duration=time.perf_counter() - started)
        run.mismatches = _diff_observations(baseline, observations)
        extra_divergent = len(sweep.divergent) - report.baseline_divergent
        if extra_divergent > 0:
            run.unrecovered.append(
                f"{extra_divergent} seed(s) diverged only under faults")
        if run.self_heal.get("quarantined"):
            run.unrecovered.append(
                f"{run.self_heal['quarantined']} job(s) quarantined under a "
                f"recoverable plan")
        retry_budget = total_jobs * service.max_attempts
        if run.self_heal.get("retries", 0) > retry_budget:
            run.unrecovered.append(
                f"retries {run.self_heal['retries']} exceed the budget "
                f"{retry_budget} ({total_jobs} jobs x "
                f"{service.max_attempts} attempts)")
        report.runs.append(run)
        status = "ok" if run.ok else "FAILED"
        print(f"chaos plan {plan_seed}: {status} in {run.duration:.1f}s — "
              f"self-heal {run.self_heal}, fired {run.fired or '{}'}",
              file=out)
        for problem in run.mismatches[:8] + run.unrecovered:
            print(f"  {problem}", file=out)
        if not run.ok:
            print(f"  replay: REPRO_FAULTS='{run.spec}'", file=out)
    return report


def quarantine_demo(jobs: int = 2) -> Dict[str, Any]:
    """The unrecoverable path, end to end: a job whose worker crashes on
    *every* attempt must land as a cached poison artifact (``ok=False``,
    ``poisoned: True``) visible in the self-heal counters, while its
    innocent batch-mates complete normally."""
    plan = faults.FaultPlan.from_spec("seed=0;worker.crash:p=1,key=ours/sum")
    service = CompileService(ArtifactCache(), max_workers=max(2, jobs))
    with faults.install(plan):
        batch = service.submit([CompileJob("ours", "sum"),
                                CompileJob("ours", "dotproduct")])
    counters = service.self_heal_counters()
    poison = service.cache.get(CompileJob("ours", "sum").safe_key())
    innocent = service.execute(CompileJob("ours", "dotproduct"))
    poisoned = bool(poison and poison.get("poisoned") and not poison["ok"])
    return {
        "counters": counters,
        "poisoned": poisoned,
        "innocent_ok": innocent.ok,
        "failures": list(batch.failures),
        "ok": (poisoned and innocent.ok
               and counters.get("quarantined") == 1),
    }


__all__ = ["ChaosReport", "ChaosRun", "quarantine_demo", "run_chaos"]
