"""Render frontend AST nodes back to Fortran source.

The conformance generator builds :mod:`repro.frontend.ast_nodes` trees and
this module turns them into the source text that every compilation flow
consumes; the shrinking reducer re-parses, mutates and re-renders the same
trees.  Rendering is deliberately canonical (two-space indents, every
compound subexpression parenthesised, lower-case keywords) so that
``unparse(parse(unparse(tree)))`` is a fixpoint — the generator round-trip
test relies on it.

Only the node set the generator emits (plus what the parser produces for
such programs) is supported; hitting anything else raises
:class:`UnparseError` loudly rather than silently emitting wrong code.
"""

from __future__ import annotations

from typing import List, Optional

from ..frontend import ast_nodes as ast


class UnparseError(Exception):
    pass


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def _real_literal(value: float, kind: int) -> str:
    text = repr(float(value))
    if "inf" in text or "nan" in text:
        raise UnparseError(f"cannot render non-finite real literal {value!r}")
    if kind == 8:
        if "e" in text:
            return text.replace("e", "d")
        return f"{text}d0"
    return text


def unparse_expr(expr: ast.Expr) -> str:
    """Render one expression (fully parenthesised where it matters)."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.RealLiteral):
        return _real_literal(expr.value, expr.kind)
    if isinstance(expr, ast.LogicalLiteral):
        return ".true." if expr.value else ".false."
    if isinstance(expr, ast.CharLiteral):
        return "'" + expr.value.replace("'", "''") + "'"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.BinaryOp):
        return f"{_operand(expr.lhs)} {expr.op} {_operand(expr.rhs)}"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == ".not.":
            return f".not. {_operand(expr.operand)}"
        return f"{expr.op}{_operand(expr.operand)}"
    if isinstance(expr, (ast.CallOrIndex, ast.FunctionCall, ast.IntrinsicCall,
                         ast.ArrayRef)):
        name = expr.name
        args = expr.indices if isinstance(expr, ast.ArrayRef) else expr.args
        rendered = ", ".join(unparse_expr(a) for a in args)
        return f"{name}({rendered})"
    if isinstance(expr, ast.SliceTriplet):
        lower = unparse_expr(expr.lower) if expr.lower is not None else ""
        upper = unparse_expr(expr.upper) if expr.upper is not None else ""
        text = f"{lower}:{upper}"
        if expr.stride is not None:
            text += f":{unparse_expr(expr.stride)}"
        return text
    raise UnparseError(f"cannot unparse expression {expr!r}")


def _operand(expr: ast.Expr) -> str:
    """Operand position: parenthesise compound expressions."""
    text = unparse_expr(expr)
    if isinstance(expr, (ast.BinaryOp, ast.UnaryOp)):
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


def _type_spec(spec: ast.TypeSpec) -> str:
    if spec.name == "character" and spec.char_length is not None:
        return f"character(len={spec.char_length})"
    if spec.kind:
        return f"{spec.name}(kind={spec.kind})"
    return spec.name


def _dim_spec(dim: ast.DimSpec) -> str:
    if dim.deferred:
        return ":"
    if dim.assumed:
        return ":"
    parts = []
    if dim.lower is not None:
        parts.append(unparse_expr(dim.lower) + ":")
    parts.append(unparse_expr(dim.upper) if dim.upper is not None else "")
    return "".join(parts)


def unparse_declaration(decl: ast.Declaration) -> str:
    head = [_type_spec(decl.type_spec)]
    if decl.default_dims:
        dims = ", ".join(_dim_spec(d) for d in decl.default_dims)
        head.append(f"dimension({dims})")
    head.extend(decl.attributes)
    if decl.intent:
        head.append(f"intent({decl.intent})")
    entities = []
    for entity in decl.entities:
        text = entity.name
        if entity.dims:
            text += "(" + ", ".join(_dim_spec(d) for d in entity.dims) + ")"
        if entity.init is not None:
            text += f" = {unparse_expr(entity.init)}"
        entities.append(text)
    return f"{', '.join(head)} :: {', '.join(entities)}"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


def unparse_stmt(stmt: ast.Stmt, indent: int = 1) -> List[str]:
    pad = "  " * indent

    def body(stmts: List[ast.Stmt]) -> List[str]:
        out: List[str] = []
        for s in stmts:
            out.extend(unparse_stmt(s, indent + 1))
        return out

    if isinstance(stmt, ast.Assignment):
        return [f"{pad}{unparse_expr(stmt.target)} = {unparse_expr(stmt.value)}"]
    if isinstance(stmt, ast.PrintStmt):
        items = ", ".join(unparse_expr(i) for i in stmt.items)
        return [f"{pad}print *, {items}" if items else f"{pad}print *"]
    if isinstance(stmt, ast.DoLoop):
        header = (f"{pad}do {stmt.var} = {unparse_expr(stmt.start)}, "
                  f"{unparse_expr(stmt.end)}")
        if stmt.step is not None:
            header += f", {unparse_expr(stmt.step)}"
        return [header] + body(stmt.body) + [f"{pad}end do"]
    if isinstance(stmt, ast.DoWhile):
        return ([f"{pad}do while ({unparse_expr(stmt.condition)})"]
                + body(stmt.body) + [f"{pad}end do"])
    if isinstance(stmt, ast.IfBlock):
        lines: List[str] = []
        for idx, (cond, stmts) in enumerate(zip(stmt.conditions, stmt.bodies)):
            kw = "if" if idx == 0 else "else if"
            lines.append(f"{pad}{kw} ({unparse_expr(cond)}) then")
            lines.extend(body(stmts))
        if stmt.else_body:
            lines.append(f"{pad}else")
            lines.extend(body(stmt.else_body))
        lines.append(f"{pad}end if")
        return lines
    if isinstance(stmt, ast.SelectCase):
        lines = [f"{pad}select case ({unparse_expr(stmt.selector)})"]
        for case in stmt.cases:
            items = ", ".join(_case_item(item) for item in case.items)
            lines.append(f"{pad}case ({items})")
            lines.extend(body(case.body))
        if stmt.default_body:
            lines.append(f"{pad}case default")
            lines.extend(body(stmt.default_body))
        lines.append(f"{pad}end select")
        return lines
    if isinstance(stmt, ast.AllocateStmt):
        allocations = ", ".join(
            name + ("(" + ", ".join(unparse_expr(d) for d in dims) + ")"
                    if dims else "")
            for name, dims in stmt.allocations)
        return [f"{pad}allocate({allocations})"]
    if isinstance(stmt, ast.DeallocateStmt):
        return [f"{pad}deallocate({', '.join(stmt.names)})"]
    if isinstance(stmt, ast.CallStmt):
        args = ", ".join(unparse_expr(a) for a in stmt.args)
        return [f"{pad}call {stmt.name}({args})"]
    if isinstance(stmt, ast.ExitStmt):
        return [f"{pad}exit"]
    if isinstance(stmt, ast.CycleStmt):
        return [f"{pad}cycle"]
    if isinstance(stmt, ast.ContinueStmt):
        return [f"{pad}continue"]
    if isinstance(stmt, ast.ReturnStmt):
        return [f"{pad}return"]
    if isinstance(stmt, ast.StopStmt):
        if stmt.code is not None:
            return [f"{pad}stop {unparse_expr(stmt.code)}"]
        return [f"{pad}stop"]
    raise UnparseError(f"cannot unparse statement {stmt!r}")


def _case_item(item: ast.CaseRange) -> str:
    if not item.is_range:
        return unparse_expr(item.lower)
    lower = unparse_expr(item.lower) if item.lower is not None else ""
    upper = unparse_expr(item.upper) if item.upper is not None else ""
    return f"{lower}:{upper}"


# ---------------------------------------------------------------------------
# program units
# ---------------------------------------------------------------------------


def unparse_subprogram(sp: ast.Subprogram) -> str:
    if sp.kind == "program":
        header = f"program {sp.name}"
        footer = f"end program {sp.name}"
    else:
        args = ", ".join(sp.args)
        header = f"{sp.kind} {sp.name}({args})"
        footer = f"end {sp.kind} {sp.name}"
    lines = [header, "  implicit none"]
    for decl in sp.declarations:
        lines.append("  " + unparse_declaration(decl))
    for stmt in sp.body:
        lines.extend(unparse_stmt(stmt, indent=1))
    lines.append(footer)
    return "\n".join(lines)


def unparse(unit: ast.CompilationUnit) -> str:
    """Render a whole compilation unit (modules are outside the subset)."""
    if unit.modules:
        raise UnparseError("module units are outside the conformance subset")
    return "\n\n".join(unparse_subprogram(sp) for sp in unit.subprograms) + "\n"


__all__ = ["UnparseError", "unparse", "unparse_declaration", "unparse_expr",
           "unparse_stmt", "unparse_subprogram"]
