"""Differential conformance testing subsystem.

Manufactures scenarios at scale and keeps every registered compilation flow
and both interpreter engines honest:

* :mod:`repro.conformance.generator` — seeded, reproducible Fortran kernel
  generator over the supported language subset;
* :mod:`repro.conformance.oracle` — differential runner: every registered
  flow (plus a no-opt baseline) x both interpreter engines, with divergence
  detection over printed output and execution statistics;
* :mod:`repro.conformance.reduce` — AST-level shrinking reducer that turns a
  divergent kernel into a small self-contained repro;
* ``python -m repro.conformance`` — the sweep / repro CLI.

Importing this package registers the ``conformance/<seed>`` workload family,
so generated kernels resolve by name in any process (which is what lets the
compile service fan conformance sweeps out across cores).
"""

from ..workloads import register_workload_family
from .generator import GeneratedKernel, GeneratorConfig, family_factory, generate
from .oracle import (Divergence, FlowConfig, KernelReport, SweepReport,
                     check_kernel, check_seed, default_configs, run_sweep)
from .reduce import reduce_source

register_workload_family("conformance", family_factory)

__all__ = [
    "Divergence", "FlowConfig", "GeneratedKernel", "GeneratorConfig",
    "KernelReport", "SweepReport", "check_kernel", "check_seed",
    "default_configs", "family_factory", "generate", "reduce_source",
    "run_sweep",
]
