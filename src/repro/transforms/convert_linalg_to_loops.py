"""``convert-linalg-to-loops``: lower named linalg ops to scf loop nests."""

from __future__ import annotations

from typing import List, Optional

from ..dialects import arith, linalg, memref as memref_d, scf
from ..ir import types as ir_types
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass


class LinalgToLoops:
    def __init__(self, func: Operation):
        self.func = func

    def run(self) -> None:
        for op in list(self.func.walk()):
            handler = {
                "linalg.fill": self._lower_fill,
                "linalg.copy": self._lower_copy,
                "linalg.matmul": self._lower_matmul,
                "linalg.dot": self._lower_dot,
                "linalg.transpose": self._lower_transpose,
                "linalg.reduce": self._lower_reduce,
                "linalg.generic": self._lower_generic,
            }.get(op.name)
            if handler is not None and op.parent is not None:
                handler(op)

    # -- helpers -----------------------------------------------------------------
    def _dims(self, anchor: Operation, memref_value: Value) -> List[Value]:
        """SSA extents of every dimension of a memref (constants when static)."""
        block = anchor.parent
        dims: List[Value] = []
        mtype = memref_value.type
        for d in range(mtype.rank):
            if mtype.shape[d] != ir_types.DYNAMIC:
                const = arith.ConstantOp(mtype.shape[d], ir_types.index)
                block.insert_before(anchor, const)
                dims.append(const.result)
            else:
                idx = arith.ConstantOp(d, ir_types.index)
                block.insert_before(anchor, idx)
                dim = memref_d.DimOp(memref_value, idx.result)
                block.insert_before(anchor, dim)
                dims.append(dim.results[0])
        return dims

    def _zero_and_one(self, anchor: Operation):
        block = anchor.parent
        zero = arith.ConstantOp(0, ir_types.index)
        one = arith.ConstantOp(1, ir_types.index)
        block.insert_before(anchor, zero)
        block.insert_before(anchor, one)
        return zero.result, one.result

    def _loop_nest(self, anchor: Operation, extents: List[Value]):
        """Create a nest of scf.for [0, extent) loops before ``anchor``;
        returns (loops, induction variables, innermost block)."""
        zero, one = self._zero_and_one(anchor)
        loops: List[scf.ForOp] = []
        ivs: List[Value] = []
        insertion_block = anchor.parent
        insertion_anchor = anchor
        for extent in extents:
            loop = scf.ForOp(zero, extent, one)
            if not loops:
                insertion_block.insert_before(insertion_anchor, loop)
            else:
                loops[-1].body.add_op(loop)
            loops.append(loop)
            ivs.append(loop.induction_variable)
        return loops, ivs, loops[-1].body if loops else anchor.parent

    @staticmethod
    def _finish_nest(loops: List[scf.ForOp]) -> None:
        for loop in loops:
            if loop.body.terminator is None:
                loop.body.add_op(scf.YieldOp())

    # -- individual ops ---------------------------------------------------------------
    def _lower_fill(self, op: linalg.FillOp) -> None:
        value, out = op.operands[0], op.operands[1]
        extents = self._dims(op, out)
        loops, ivs, body = self._loop_nest(op, extents)
        body.add_op(memref_d.StoreOp(value, out, ivs))
        self._finish_nest(loops)
        op.erase(check_uses=False)

    def _lower_copy(self, op: linalg.CopyOp) -> None:
        src, out = op.operands[0], op.operands[1]
        extents = self._dims(op, out)
        loops, ivs, body = self._loop_nest(op, extents)
        load = memref_d.LoadOp(src, ivs)
        body.add_op(load)
        body.add_op(memref_d.StoreOp(load.results[0], out, ivs))
        self._finish_nest(loops)
        op.erase(check_uses=False)

    def _lower_matmul(self, op: linalg.MatmulOp) -> None:
        a, b, c = op.operands[0], op.operands[1], op.operands[2]
        m_n = self._dims(op, c)
        k = self._dims(op, a)[1]
        loops, ivs, body = self._loop_nest(op, [m_n[0], m_n[1], k])
        i, j, kk = ivs
        load_a = memref_d.LoadOp(a, [i, kk])
        load_b = memref_d.LoadOp(b, [kk, j])
        load_c = memref_d.LoadOp(c, [i, j])
        elem_float = isinstance(a.type.element_type, ir_types.FloatType)
        mul = arith.MulFOp(load_a.results[0], load_b.results[0]) if elem_float \
            else arith.MulIOp(load_a.results[0], load_b.results[0])
        add = arith.AddFOp(load_c.results[0], mul.result) if elem_float \
            else arith.AddIOp(load_c.results[0], mul.result)
        store = memref_d.StoreOp(add.result, c, [i, j])
        for o in (load_a, load_b, load_c, mul, add, store):
            body.add_op(o)
        self._finish_nest(loops)
        op.erase(check_uses=False)

    def _lower_dot(self, op: linalg.DotOp) -> None:
        a, b, out = op.operands[0], op.operands[1], op.operands[2]
        n = self._dims(op, a)[0]
        loops, ivs, body = self._loop_nest(op, [n])
        i = ivs[0]
        load_a = memref_d.LoadOp(a, [i])
        load_b = memref_d.LoadOp(b, [i])
        load_out = memref_d.LoadOp(out, [])
        elem_float = isinstance(a.type.element_type, ir_types.FloatType)
        mul = arith.MulFOp(load_a.results[0], load_b.results[0]) if elem_float \
            else arith.MulIOp(load_a.results[0], load_b.results[0])
        add = arith.AddFOp(load_out.results[0], mul.result) if elem_float \
            else arith.AddIOp(load_out.results[0], mul.result)
        store = memref_d.StoreOp(add.result, out, [])
        for o in (load_a, load_b, load_out, mul, add, store):
            body.add_op(o)
        self._finish_nest(loops)
        op.erase(check_uses=False)

    def _lower_transpose(self, op: linalg.TransposeOp) -> None:
        src, out = op.operands[0], op.operands[1]
        extents = self._dims(op, out)
        loops, ivs, body = self._loop_nest(op, extents)
        permuted = [ivs[p] for p in op.permutation]
        load = memref_d.LoadOp(src, permuted)
        body.add_op(load)
        body.add_op(memref_d.StoreOp(load.results[0], out, ivs))
        self._finish_nest(loops)
        op.erase(check_uses=False)

    def _lower_reduce(self, op: linalg.ReduceOp) -> None:
        src = op.operands[0]
        out = op.operands[1]
        extents = self._dims(op, src)
        loops, ivs, body = self._loop_nest(op, extents)
        load_src = memref_d.LoadOp(src, ivs)
        load_out = memref_d.LoadOp(out, [])
        body.add_op(load_src)
        body.add_op(load_out)
        # inline the combiner region with (element, accumulator)
        combiner = op.body
        value_map = {combiner.args[0]: load_src.results[0],
                     combiner.args[1]: load_out.results[0]}
        result_value: Optional[Value] = None
        for inner in combiner.ops:
            if inner.name == "linalg.yield":
                result_value = value_map.get(inner.operands[0], inner.operands[0])
                continue
            clone = inner.clone(value_map)
            body.add_op(clone)
        if result_value is None and body.ops:
            result_value = body.ops[-1].results[0]
        body.add_op(memref_d.StoreOp(result_value, out, []))
        self._finish_nest(loops)
        op.erase(check_uses=False)

    def _lower_generic(self, op: linalg.GenericOp) -> None:
        inputs = list(op.inputs)
        outputs = list(op.outputs)
        extents = self._dims(op, outputs[0])
        loops, ivs, body = self._loop_nest(op, extents)
        loads = []
        for value in inputs:
            load = memref_d.LoadOp(value, ivs)
            body.add_op(load)
            loads.append(load.results[0])
        region = op.body
        value_map = dict(zip(region.args, loads))
        yielded: Optional[Value] = None
        for inner in region.ops:
            if inner.name == "linalg.yield":
                yielded = value_map.get(inner.operands[0], inner.operands[0])
                continue
            clone = inner.clone(value_map)
            body.add_op(clone)
        if yielded is not None:
            body.add_op(memref_d.StoreOp(yielded, outputs[0], ivs))
        self._finish_nest(loops)
        op.erase(check_uses=False)


@register_pass
class ConvertLinalgToLoopsPass(FunctionPass):
    NAME = "convert-linalg-to-loops"

    def run_on_function(self, func: Operation) -> None:
        LinalgToLoops(func).run()


__all__ = ["ConvertLinalgToLoopsPass", "LinalgToLoops"]
