"""Standard MLIR transformation and conversion passes.

Importing this package registers every pass with the pass registry so that
``PassManager.from_pipeline`` can resolve the pipeline strings used in the
paper (Listing 1 and Figure 3).
"""

from .cleanup import (CanonicalizePass, CSEPass, FoldMemrefAliasOpsPass,
                      LoopInvariantCodeMotionPass, MathUpliftToFMAPass,
                      ReconcileUnrealizedCastsPass)
from .convert_linalg_to_loops import ConvertLinalgToLoopsPass
from .convert_scf_to_cf import ConvertScfToCfPass
from .lower_affine import LowerAffinePass
from .parallel_lowering import (ConvertOpenMPToLLVMPass,
                                ConvertParallelLoopsToGpuPass,
                                ConvertScfToOpenMPPass)
from .to_llvm import (ConvertArithToLLVMPass, ConvertCfToLLVMPass,
                      ConvertFuncToLLVMPass, ConvertMathToLLVMPass,
                      ConvertVectorToLLVMPass, FinalizeMemrefToLLVMPass)

__all__ = [
    "CanonicalizePass", "CSEPass", "FoldMemrefAliasOpsPass",
    "LoopInvariantCodeMotionPass", "MathUpliftToFMAPass",
    "ReconcileUnrealizedCastsPass", "ConvertLinalgToLoopsPass",
    "ConvertScfToCfPass", "LowerAffinePass", "ConvertOpenMPToLLVMPass",
    "ConvertParallelLoopsToGpuPass", "ConvertScfToOpenMPPass",
    "ConvertArithToLLVMPass", "ConvertCfToLLVMPass", "ConvertFuncToLLVMPass",
    "ConvertMathToLLVMPass", "ConvertVectorToLLVMPass",
    "FinalizeMemrefToLLVMPass",
]
