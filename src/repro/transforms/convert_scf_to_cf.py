"""``convert-scf-to-cf``: lower structured control flow to branch-based CFG."""

from __future__ import annotations

from typing import List

from ..dialects import arith, cf, memref, scf
from ..ir import types as ir_types
from ..ir.core import Block, Operation, Region, Value
from ..ir.pass_manager import FunctionPass, register_pass
from .cfg import CFGLowering, split_block


class ScfToCfLowering(CFGLowering):
    structured_op_names = (
        "scf.for", "scf.if", "scf.while", "scf.parallel", "scf.execute_region",
        "memref.alloca_scope",
    )

    # -- scf.for -----------------------------------------------------------------
    def lower_scf_for(self, op: scf.ForOp) -> None:
        parent_block = op.parent
        region = parent_block.parent
        tail = split_block(parent_block, op)
        op.detach()

        cond_block = Block(arg_types=[ir_types.index] + [v.type for v in op.iter_args])
        region.insert_block_at(parent_block.index_in_region() + 1, cond_block)

        body_block = op.body
        op.regions[0].blocks.remove(body_block)
        region.insert_block_at(cond_block.index_in_region() + 1, body_block)

        # continuation receives the loop results
        for res in op.results:
            arg = tail.add_argument(res.type)
            res.replace_all_uses_with(arg)

        # entry: branch to the condition block with initial values
        parent_block.add_op(cf.BranchOp(cond_block,
                                        [op.lower_bound, *op.iter_args]))
        # condition block: iv < ub ?
        cmp = arith.CmpIOp("slt", cond_block.args[0], op.upper_bound)
        cond_block.add_op(cmp)
        cond_block.add_op(cf.CondBranchOp(
            cmp.result, body_block, tail,
            list(cond_block.args), list(cond_block.args[1:])))
        # body: replace the yield with iv increment + back-branch
        yield_op = body_block.terminator
        yielded = list(yield_op.operands) if yield_op is not None else []
        if yield_op is not None:
            yield_op.erase(check_uses=False)
        incr = arith.AddIOp(body_block.args[0], op.step)
        body_block.add_op(incr)
        body_block.add_op(cf.BranchOp(cond_block, [incr.result, *yielded]))
        op.erase(check_uses=False)

    # -- scf.if -----------------------------------------------------------------
    def lower_scf_if(self, op: scf.IfOp) -> None:
        parent_block = op.parent
        region = parent_block.parent
        tail = split_block(parent_block, op)
        op.detach()

        for res in op.results:
            arg = tail.add_argument(res.type)
            res.replace_all_uses_with(arg)

        then_block = op.then_block
        op.regions[0].blocks.remove(then_block)
        region.insert_block_at(parent_block.index_in_region() + 1, then_block)
        self._retarget_yield(then_block, tail)

        if op.has_else() and op.else_block is not None:
            else_block = op.else_block
            op.regions[1].blocks.remove(else_block)
            region.insert_block_at(then_block.index_in_region() + 1, else_block)
            self._retarget_yield(else_block, tail)
            parent_block.add_op(cf.CondBranchOp(op.condition, then_block, else_block))
        else:
            parent_block.add_op(cf.CondBranchOp(op.condition, then_block, tail))
        op.erase(check_uses=False)

    @staticmethod
    def _retarget_yield(block: Block, tail: Block) -> None:
        yield_op = block.terminator
        values = list(yield_op.operands) if yield_op is not None else []
        if yield_op is not None:
            yield_op.erase(check_uses=False)
        block.add_op(cf.BranchOp(tail, values))

    # -- scf.while ---------------------------------------------------------------
    def lower_scf_while(self, op: scf.WhileOp) -> None:
        parent_block = op.parent
        region = parent_block.parent
        tail = split_block(parent_block, op)
        op.detach()

        for res in op.results:
            arg = tail.add_argument(res.type)
            res.replace_all_uses_with(arg)

        before = op.before_block
        after = op.after_block
        op.regions[0].blocks.remove(before)
        op.regions[1].blocks.remove(after)
        region.insert_block_at(parent_block.index_in_region() + 1, before)
        region.insert_block_at(before.index_in_region() + 1, after)

        parent_block.add_op(cf.BranchOp(before, list(op.operands)))

        condition_op = before.terminator
        cond_value = condition_op.operands[0]
        forwarded = list(condition_op.operands[1:])
        condition_op.erase(check_uses=False)
        before.add_op(cf.CondBranchOp(cond_value, after, tail, forwarded, forwarded))

        yield_op = after.terminator
        yielded = list(yield_op.operands) if yield_op is not None else []
        if yield_op is not None:
            yield_op.erase(check_uses=False)
        after.add_op(cf.BranchOp(before, yielded))
        op.erase(check_uses=False)

    # -- scf.parallel (sequential fallback) -----------------------------------------
    def lower_scf_parallel(self, op: scf.ParallelOp) -> None:
        """Any scf.parallel not claimed by the OpenMP/GPU lowerings is executed
        sequentially: rewrite it to a nest of scf.for loops first."""
        parent_block = op.parent
        rank = op.rank
        builder_block = parent_block
        anchor = op
        outer_for = None
        ivs: List[Value] = []
        loops: List[scf.ForOp] = []
        for d in range(rank):
            loop = scf.ForOp(op.lower_bounds[d], op.upper_bounds[d], op.steps[d])
            if d == 0:
                parent_block.insert_before(anchor, loop)
                outer_for = loop
            else:
                loops[-1].body.add_op(loop)
            loops.append(loop)
            ivs.append(loop.induction_variable)
        innermost = loops[-1]
        body = op.body
        # move body ops (minus terminator) into the innermost loop
        for arg, iv in zip(body.args, ivs):
            arg.replace_all_uses_with(iv)
        for inner_op in list(body.ops):
            if inner_op.name in ("scf.yield", "scf.reduce"):
                inner_op.erase(check_uses=False)
                continue
            inner_op.detach()
            innermost.body.add_op(inner_op)
        for loop in reversed(loops):
            if loop.body.terminator is None:
                loop.body.add_op(scf.YieldOp())
        op.erase(check_uses=False)

    # -- scf.execute_region & memref.alloca_scope -------------------------------------
    def lower_scf_execute_region(self, op: Operation) -> None:
        self._inline_single_block_region(op)

    def lower_memref_alloca_scope(self, op: Operation) -> None:
        self._inline_single_block_region(op)

    @staticmethod
    def _inline_single_block_region(op: Operation) -> None:
        parent_block = op.parent
        block = op.regions[0].blocks[0] if op.regions and op.regions[0].blocks else None
        if block is None:
            op.erase(check_uses=False)
            return
        terminator = block.terminator
        results = list(terminator.operands) if terminator is not None else []
        if terminator is not None:
            terminator.erase(check_uses=False)
        for res, val in zip(op.results, results):
            res.replace_all_uses_with(val)
        for inner in list(block.ops):
            inner.detach()
            parent_block.insert_before(op, inner)
        op.erase(check_uses=False)


@register_pass
class ConvertScfToCfPass(FunctionPass):
    NAME = "convert-scf-to-cf"

    def run_on_function(self, func: Operation) -> None:
        ScfToCfLowering().run_on_function(func)


__all__ = ["ConvertScfToCfPass", "ScfToCfLowering"]
