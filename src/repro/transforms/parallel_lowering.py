"""Lowerings of ``scf.parallel``: to OpenMP (CPU threading) and to GPU kernels.

* ``convert-scf-to-openmp`` wraps parallel loops in ``omp.parallel`` +
  ``omp.wsloop`` (Section VI-A/B);
* ``convert-parallel-loops-to-gpu`` converts parallel loops into
  ``gpu.launch`` kernels (Section VI-C), with the loop body executed per
  thread.
"""

from __future__ import annotations

from ..dialects import arith, gpu as gpu_d, omp as omp_d, scf
from ..ir import types as ir_types
from ..ir.core import Block, Operation
from ..ir.pass_manager import FunctionPass, register_pass


@register_pass
class ConvertScfToOpenMPPass(FunctionPass):
    NAME = "convert-scf-to-openmp"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.name == "scf.parallel" and op.parent is not None:
                self._lower(op)

    def _lower(self, op: scf.ParallelOp) -> None:
        parallel = omp_d.ParallelOp()
        op.parent.insert_before(op, parallel)
        wsloop = omp_d.WsLoopOp(list(op.lower_bounds), list(op.upper_bounds),
                                list(op.steps))
        parallel.body.add_op(wsloop)
        parallel.body.add_op(omp_d.TerminatorOp())
        for old_iv, new_iv in zip(op.induction_variables, wsloop.induction_variables):
            old_iv.replace_all_uses_with(new_iv)
        for inner in list(op.body.ops):
            inner.detach()
            if inner.name in ("scf.yield", "scf.reduce"):
                inner.drop_all_references()
                continue
            wsloop.body.add_op(inner)
        if wsloop.body.terminator is None:
            wsloop.body.add_op(omp_d.YieldOp())
        op.erase(check_uses=False)


@register_pass
class ConvertParallelLoopsToGpuPass(FunctionPass):
    NAME = "convert-parallel-loops-to-gpu"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.name == "scf.parallel" and op.parent is not None:
                # only map outermost parallel loops onto the device grid
                if any(a.name in ("scf.parallel", "gpu.launch") for a in op.ancestors()):
                    continue
                self._lower(op)

    def _lower(self, op: scf.ParallelOp) -> None:
        block = op.parent
        one = arith.ConstantOp(1, ir_types.index)
        block.insert_before(op, one)
        block_size = arith.ConstantOp(128, ir_types.index)
        block.insert_before(op, block_size)
        # grid size = ceil((ub - lb) / step / block)
        span = arith.SubIOp(op.upper_bounds[0], op.lower_bounds[0])
        block.insert_before(op, span)
        per_thread = arith.CeilDivSIOp(span.result, op.steps[0])
        block.insert_before(op, per_thread)
        grid = arith.CeilDivSIOp(per_thread.result, block_size.result)
        block.insert_before(op, grid)

        launch = gpu_d.LaunchOp([grid.result, one.result, one.result],
                                [block_size.result, one.result, one.result])
        block.insert_before(op, launch)
        body = launch.body
        # global index = block_id.x * block_dim.x + thread_id.x (+ lower bound)
        bid, tid = body.args[0], body.args[3]
        bdim = body.args[9]
        mul = arith.MulIOp(bid, bdim)
        gid = arith.AddIOp(mul.result, tid)
        offset = arith.MulIOp(gid.result, op.steps[0])
        global_index = arith.AddIOp(offset.result, op.lower_bounds[0])
        in_range = arith.CmpIOp("slt", global_index.result, op.upper_bounds[0])
        guard = scf.IfOp(in_range.result)
        for o in (mul, gid, offset, global_index, in_range, guard):
            body.add_op(o)
        body.add_op(gpu_d.TerminatorOp())

        op.induction_variables[0].replace_all_uses_with(global_index.result)
        inner_ivs = list(op.induction_variables[1:])
        target_block = guard.then_block
        # additional parallel dimensions execute sequentially inside the kernel
        for d, iv in enumerate(inner_ivs, start=1):
            loop = scf.ForOp(op.lower_bounds[d], op.upper_bounds[d], op.steps[d])
            target_block.add_op(loop)
            iv.replace_all_uses_with(loop.induction_variable)
            target_block = loop.body
        for inner in list(op.body.ops):
            inner.detach()
            if inner.name in ("scf.yield", "scf.reduce"):
                inner.drop_all_references()
                continue
            target_block.add_op(inner)
        # close every block with the right terminator
        blk = target_block
        while blk is not None and blk is not guard.then_block:
            if blk.terminator is None:
                blk.add_op(scf.YieldOp())
            blk = blk.parent_op().parent if blk.parent_op() is not None else None
        if guard.then_block.terminator is None:
            guard.then_block.add_op(scf.YieldOp())
        if guard.else_block is not None and guard.else_block.terminator is None:
            guard.else_block.add_op(scf.YieldOp())
        op.erase(check_uses=False)


@register_pass
class ConvertOpenMPToLLVMPass(FunctionPass):
    """``convert-openmp-to-llvm``: in MLIR this converts the *contents* of omp
    regions to the llvm dialect; the region structure itself survives until
    translation.  Here it simply marks the omp ops as ready for translation
    (their bodies are converted by the other to-llvm passes)."""

    NAME = "convert-openmp-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        from ..ir.attributes import IntegerAttr
        for op in func.walk():
            if op.dialect == "omp":
                op.set_attr("llvm_ready", IntegerAttr(1))


__all__ = ["ConvertScfToOpenMPPass", "ConvertParallelLoopsToGpuPass",
           "ConvertOpenMPToLLVMPass"]
