"""``lower-affine``: lower affine loops and accesses back to scf + memref."""

from __future__ import annotations

from typing import List

from ..dialects import affine as affine_d
from ..dialects import arith, memref as memref_d, scf, vector as vector_d
from ..ir import types as ir_types
from ..ir.attributes import AffineExpr, AffineMapAttr
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass


def _materialize_expr(expr: AffineExpr, operands: List[Value], anchor: Operation) -> Value:
    """Emit arith ops computing one affine expression before ``anchor``."""
    block = anchor.parent

    def emit(op: Operation) -> Value:
        block.insert_before(anchor, op)
        return op.results[0]

    if expr.kind == "dim":
        return operands[expr.value]
    if expr.kind == "sym":
        return operands[expr.value]
    if expr.kind == "const":
        return emit(arith.ConstantOp(expr.value, ir_types.index))
    lhs = _materialize_expr(expr.lhs, operands, anchor)
    rhs = _materialize_expr(expr.rhs, operands, anchor)
    table = {"add": arith.AddIOp, "mul": arith.MulIOp, "mod": arith.RemSIOp,
             "floordiv": arith.FloorDivSIOp, "ceildiv": arith.CeilDivSIOp}
    return emit(table[expr.kind](lhs, rhs))


def _materialize_map(amap: AffineMapAttr, operands: List[Value],
                     anchor: Operation) -> List[Value]:
    return [_materialize_expr(expr, operands, anchor) for expr in amap.results]


class LowerAffine:
    def __init__(self, func: Operation):
        self.func = func

    def run(self) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(self.func.walk()):
                if op.parent is None:
                    continue
                if op.name == "affine.for":
                    self._lower_for(op)
                    changed = True
                    break
                if op.name in ("affine.load", "affine.store", "affine.apply",
                               "vector.load", "vector.store"):
                    self._lower_access(op)
        # second sweep for accesses outside affine loops
        for op in list(self.func.walk()):
            if op.parent is not None and op.name in ("affine.load", "affine.store",
                                                     "affine.apply"):
                self._lower_access(op)

    def _lower_for(self, op: affine_d.AffineForOp) -> None:
        lower_vals = _materialize_map(op.lower_bound_map, list(op.lower_operands), op)
        upper_vals = _materialize_map(op.upper_bound_map, list(op.upper_operands), op)
        step = arith.ConstantOp(op.step_value, ir_types.index)
        op.parent.insert_before(op, step)
        loop = scf.ForOp(lower_vals[0], upper_vals[0], step.result,
                         [  # iter args preserved
                             v for v in op.iter_args])
        op.parent.insert_before(op, loop)
        if op.get_attr("vectorized") is not None:
            loop.set_attr("vectorized", op.get_attr("vectorized"))
        if op.get_attr("tiled") is not None:
            loop.set_attr("tiled", op.get_attr("tiled"))
        op.induction_variable.replace_all_uses_with(loop.induction_variable)
        for old_arg, new_arg in zip(op.body.args[1:], loop.region_iter_args):
            old_arg.replace_all_uses_with(new_arg)
        for inner in list(op.body.ops):
            inner.detach()
            if inner.name == "affine.yield":
                loop.body.add_op(scf.YieldOp(list(inner.operands)))
                inner.drop_all_references()
                continue
            loop.body.add_op(inner)
        if loop.body.terminator is None:
            loop.body.add_op(scf.YieldOp())
        for old, new in zip(op.results, loop.results):
            old.replace_all_uses_with(new)
        op.erase(check_uses=False)

    def _lower_access(self, op: Operation) -> None:
        amap = op.get_attr("map")
        if amap is None:
            return
        if op.name in ("affine.load", "vector.load"):
            memref_value = op.operands[0]
            operands = list(op.operands[1:])
            indices = _materialize_map(amap, operands, op)
            if op.name == "affine.load":
                new = memref_d.LoadOp(memref_value, indices)
            else:
                new = vector_d.VectorLoadOp(op.results[0].type, memref_value, indices)
            op.parent.insert_before(op, new)
            op.replace_all_uses_with([new.results[0]])
            op.erase(check_uses=False)
        elif op.name in ("affine.store", "vector.store"):
            value = op.operands[0]
            memref_value = op.operands[1]
            operands = list(op.operands[2:])
            indices = _materialize_map(amap, operands, op)
            if op.name == "affine.store":
                new = memref_d.StoreOp(value, memref_value, indices)
            else:
                new = vector_d.VectorStoreOp(value, memref_value, indices)
            op.parent.insert_before(op, new)
            op.erase(check_uses=False)
        elif op.name == "affine.apply":
            indices = _materialize_map(amap, list(op.operands), op)
            op.replace_all_uses_with([indices[0]])
            op.erase(check_uses=False)


@register_pass
class LowerAffinePass(FunctionPass):
    NAME = "lower-affine"

    def run_on_function(self, func: Operation) -> None:
        LowerAffine(func).run()


__all__ = ["LowerAffinePass", "LowerAffine"]
