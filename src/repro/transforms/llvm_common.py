"""Shared operation/type mapping tables for lowering into the llvm dialect.

Used both by the standard-MLIR conversion passes (``convert-arith-to-llvm``
and friends) and by Flang's bespoke code generation — which is precisely the
duplication the paper argues the standard flow avoids.
"""

from __future__ import annotations

from ..dialects import fir, llvm
from ..ir import types as ir_types

ARITH_TO_LLVM = {
    "arith.addi": "llvm.add", "arith.subi": "llvm.sub", "arith.muli": "llvm.mul",
    "arith.divsi": "llvm.sdiv", "arith.remsi": "llvm.srem",
    "arith.floordivsi": "llvm.sdiv", "arith.ceildivsi": "llvm.sdiv",
    "arith.andi": "llvm.and", "arith.ori": "llvm.or", "arith.xori": "llvm.xor",
    "arith.shli": "llvm.shl", "arith.shrsi": "llvm.ashr",
    "arith.addf": "llvm.fadd", "arith.subf": "llvm.fsub",
    "arith.mulf": "llvm.fmul", "arith.divf": "llvm.fdiv",
    "arith.remf": "llvm.frem", "arith.negf": "llvm.fneg",
    "arith.extsi": "llvm.sext", "arith.extui": "llvm.zext",
    "arith.trunci": "llvm.trunc", "arith.extf": "llvm.fpext",
    "arith.truncf": "llvm.fptrunc", "arith.sitofp": "llvm.sitofp",
    "arith.fptosi": "llvm.fptosi", "arith.bitcast": "llvm.bitcast",
    "arith.select": "llvm.select",
}

MATH_TO_LIBM = {
    "math.sqrt": "sqrt", "math.exp": "exp", "math.log": "log",
    "math.log10": "log10", "math.sin": "sin", "math.cos": "cos",
    "math.tan": "tan", "math.tanh": "tanh", "math.atan": "atan",
    "math.atan2": "atan2", "math.powf": "pow", "math.absf": "fabs",
    "math.absi": "abs", "math.fpowi": "pow", "math.ipowi": "ipow",
    "math.fma": "fma",
}


def llvm_type(t: ir_types.Type) -> ir_types.Type:
    """Convert a FIR/builtin/memref type to its llvm dialect representation."""
    if isinstance(t, (fir.ReferenceType, fir.HeapType, fir.PointerType,
                      fir.BoxType)):
        return llvm.ptr
    if isinstance(t, ir_types.IndexType):
        return ir_types.i64
    if isinstance(t, fir.LogicalType):
        return ir_types.i1
    if isinstance(t, (fir.SequenceType, ir_types.MemRefType)):
        return llvm.ptr
    if isinstance(t, (fir.ShapeType, fir.ShapeShiftType)):
        return llvm.LLVMStructType([ir_types.i64])
    if isinstance(t, fir.RecordType):
        return llvm.LLVMStructType([llvm_type(mt) for _, mt in t.members])
    return t


__all__ = ["ARITH_TO_LLVM", "MATH_TO_LIBM", "llvm_type"]
