"""Final conversions into the ``llvm`` dialect (the tail of Listing 1).

These passes are one-to-one operation conversions; they reuse the same
mapping machinery as Flang's bespoke code generation (which is the point the
paper makes: in the standard flow these conversions come for free from MLIR,
whereas Flang had to write its own).
"""

from __future__ import annotations

from typing import List

from ..dialects import llvm, memref as memref_d, vector as vector_d
from .llvm_common import ARITH_TO_LLVM as _ARITH_TO_LLVM
from .llvm_common import MATH_TO_LIBM as _MATH_TO_LIBM
from .llvm_common import llvm_type as _llvm_type
from ..ir import types as ir_types
from ..ir.attributes import IntegerAttr
from ..ir.core import Operation, Value, create_operation
from ..ir.pass_manager import FunctionPass, Pass, register_pass


def _replace(op: Operation, new_ops: List[Operation], results=None) -> None:
    block = op.parent
    for new_op in new_ops:
        block.insert_before(op, new_op)
    if results is None:
        results = list(new_ops[-1].results) if new_ops else []
    if op.results:
        op.replace_all_uses_with(results)
    op.erase(check_uses=False)


@register_pass
class ConvertArithToLLVMPass(FunctionPass):
    NAME = "convert-arith-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.parent is None or op.dialect != "arith":
                continue
            name = op.name
            if name in _ARITH_TO_LLVM:
                result_types = [_llvm_type(r.type) for r in op.results]
                new = create_operation(_ARITH_TO_LLVM[name], operands=list(op.operands),
                                       result_types=result_types,
                                       attributes=dict(op.attributes))
                _replace(op, [new])
            elif name == "arith.constant":
                _replace(op, [llvm.ConstantOp(op.attributes["value"],
                                              _llvm_type(op.results[0].type))])
            elif name == "arith.cmpi":
                _replace(op, [llvm.ICmpOp(op.attributes["predicate"].value,
                                          op.operands[0], op.operands[1])])
            elif name == "arith.cmpf":
                _replace(op, [llvm.FCmpOp(op.attributes["predicate"].value,
                                          op.operands[0], op.operands[1])])
            elif name == "arith.index_cast":
                _replace(op, [], results=[op.operands[0]])
            elif name in ("arith.maximumf", "arith.minimumf", "arith.maxsi",
                          "arith.minsi"):
                pred = {"arith.maximumf": "ogt", "arith.minimumf": "olt",
                        "arith.maxsi": "sgt", "arith.minsi": "slt"}[name]
                cmp_cls = llvm.FCmpOp if name.endswith("f") else llvm.ICmpOp
                cmp = cmp_cls(pred, op.operands[0], op.operands[1])
                sel = llvm.SelectOp(cmp.results[0], op.operands[0], op.operands[1])
                _replace(op, [cmp, sel])


@register_pass
class ConvertMathToLLVMPass(FunctionPass):
    NAME = "convert-math-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.parent is None or op.dialect != "math":
                continue
            if op.name == "math.fma":
                _replace(op, [llvm.FMulAddOp(*op.operands)])
                continue
            symbol = _MATH_TO_LIBM.get(op.name, op.name.split(".")[1])
            new = llvm.CallOp(symbol, list(op.operands),
                              [_llvm_type(r.type) for r in op.results])
            _replace(op, [new])


@register_pass
class ConvertCfToLLVMPass(FunctionPass):
    NAME = "convert-cf-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.parent is None:
                continue
            if op.name == "cf.br":
                _replace(op, [llvm.BrOp(op.successors[0], list(op.operands))])
            elif op.name == "cf.cond_br":
                n_attr = op.get_attr("num_true_operands")
                n = n_attr.value if n_attr is not None else 0
                _replace(op, [llvm.CondBrOp(op.operands[0], op.successors[0],
                                            op.successors[1],
                                            list(op.operands[1:1 + n]),
                                            list(op.operands[1 + n:]))])


@register_pass
class ConvertFuncToLLVMPass(FunctionPass):
    NAME = "convert-func-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.parent is None:
                continue
            if op.name == "func.call":
                new = llvm.CallOp(op.get_attr("callee").root, list(op.operands),
                                  [_llvm_type(r.type) for r in op.results])
                _replace(op, [new])
            elif op.name == "func.return":
                _replace(op, [llvm.ReturnOp(list(op.operands))])
        func.set_attr("llvm.converted", IntegerAttr(1))


@register_pass
class FinalizeMemrefToLLVMPass(FunctionPass):
    """``finalize-memref-to-llvm``: memrefs become pointers + explicit address
    arithmetic (GEP)."""

    NAME = "finalize-memref-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.parent is None or op.dialect != "memref":
                continue
            name = op.name
            if name in ("memref.alloca", "memref.alloc"):
                mtype = op.results[0].type
                ops: List[Operation] = []
                if op.operands:
                    size: Value = op.operands[0]
                    for extra in op.operands[1:]:
                        mul = llvm.MulOp(size, extra)
                        ops.append(mul)
                        size = mul.results[0]
                else:
                    elements = mtype.num_elements() or 1
                    const = llvm.ConstantOp(IntegerAttr(elements, ir_types.i64),
                                            ir_types.i64)
                    ops.append(const)
                    size = const.results[0]
                if name == "memref.alloca":
                    ops.append(llvm.AllocaOp(size, _llvm_type(mtype.element_type)))
                else:
                    ops.append(llvm.CallOp("malloc", [size], [llvm.ptr]))
                _replace(op, ops)
            elif name == "memref.dealloc":
                _replace(op, [llvm.CallOp("free", list(op.operands), [])])
            elif name == "memref.load":
                gep = llvm.GEPOp(op.operands[0], list(op.operands[1:]),
                                 _llvm_type(op.results[0].type))
                load = llvm.LoadOp(gep.results[0], _llvm_type(op.results[0].type))
                _replace(op, [gep, load])
            elif name == "memref.store":
                gep = llvm.GEPOp(op.operands[1], list(op.operands[2:]),
                                 _llvm_type(op.operands[0].type))
                store = llvm.StoreOp(op.operands[0], gep.results[0])
                _replace(op, [gep, store])
            elif name == "memref.dim":
                const = llvm.ConstantOp(IntegerAttr(0, ir_types.i64), ir_types.i64)
                _replace(op, [const])
            elif name == "memref.subview":
                _replace(op, [], results=[op.operands[0]])
            elif name == "memref.cast":
                _replace(op, [], results=[op.operands[0]])
            elif name == "memref.copy":
                _replace(op, [llvm.CallOp("memcpy", list(op.operands), [])])
            elif name == "memref.get_global":
                _replace(op, [llvm.AddressOfOp(op.get_attr("name").value)])
            elif name == "memref.global":
                _replace(op, [llvm.GlobalOp(op.get_attr("sym_name").value,
                                            llvm.ptr,
                                            value=op.get_attr("initial_value"))])


@register_pass
class ConvertVectorToLLVMPass(FunctionPass):
    """``convert-vector-to-llvm{enable-x86vector}``: vector ops become LLVM
    vector intrinsics (represented as llvm dialect ops carrying the vector
    types)."""

    NAME = "convert-vector-to-llvm"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.parent is None or op.dialect != "vector":
                continue
            if op.name == "vector.load":
                gep = llvm.GEPOp(op.operands[0], list(op.operands[1:]),
                                 op.results[0].type)
                load = llvm.LoadOp(gep.results[0], op.results[0].type)
                _replace(op, [gep, load])
            elif op.name == "vector.store":
                gep = llvm.GEPOp(op.operands[1], list(op.operands[2:]),
                                 op.operands[0].type)
                store = llvm.StoreOp(op.operands[0], gep.results[0])
                _replace(op, [gep, store])
            elif op.name in ("vector.broadcast", "vector.splat"):
                undef = llvm.UndefOp(op.results[0].type)
                ins = llvm.InsertValueOp(undef.results[0], op.operands[0], [0])
                _replace(op, [undef, ins])
            elif op.name == "vector.fma":
                _replace(op, [llvm.FMulAddOp(*op.operands)])
            elif op.name == "vector.reduction":
                call = llvm.CallOp(f"llvm.vector.reduce.{op.get_attr('kind').value}",
                                   list(op.operands),
                                   [op.results[0].type])
                _replace(op, [call])
            elif op.name in ("vector.extractelement", "vector.insertelement"):
                new = llvm.ExtractValueOp(op.operands[0], [0], op.results[0].type) \
                    if op.name == "vector.extractelement" else \
                    llvm.InsertValueOp(op.operands[1], op.operands[0], [0])
                _replace(op, [new])


__all__ = [
    "ConvertArithToLLVMPass", "ConvertMathToLLVMPass", "ConvertCfToLLVMPass",
    "ConvertFuncToLLVMPass", "FinalizeMemrefToLLVMPass",
    "ConvertVectorToLLVMPass",
]
