"""Generic cleanup passes: canonicalisation, CSE, LICM, cast reconciliation,
FMA uplifting and memref alias folding (all named in Listing 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import arith, math as math_d
from ..ir import types as ir_types
from ..machine import semantics
from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import FunctionPass, Pass, register_pass
from ..ir.traits import CONSTANT_LIKE, LOOP_LIKE, PURE, READ_ONLY


def _constant_of(value: Value):
    op = getattr(value, "op", None)
    if op is not None and op.name == "arith.constant":
        return op.get_attr("value").value
    return None


def _is_pure(op: Operation) -> bool:
    return (op.has_trait(PURE) or op.has_trait(CONSTANT_LIKE)) and not op.regions


# ---------------------------------------------------------------------------
# canonicalize
# ---------------------------------------------------------------------------


@register_pass
class CanonicalizePass(Pass):
    """Constant folding, algebraic simplification and dead-code elimination.

    Driven by a **worklist**: every op is seeded once (in walk order), and a
    successful fold re-enqueues only the users of the folded op's results
    and its parent — instead of re-walking the whole module per fixpoint
    iteration, which dominated pass-pipeline wall time on conformance
    sweeps.  Dead-code elimination runs the same way: erasing an op
    re-enqueues only its operands' producers.  The historical full-rewalk
    driver is kept as ``STRATEGY = "rewalk"`` purely as the differential
    reference — both strategies produce identical IR (asserted across every
    registered flow by ``tests/transforms/test_canonicalize_worklist.py``).
    """

    NAME = "canonicalize"

    #: "worklist" (production) or "rewalk" (reference implementation)
    STRATEGY = "worklist"

    _FOLDABLE_INT = {
        "arith.addi": lambda a, b: a + b,
        "arith.subi": lambda a, b: a - b,
        "arith.muli": lambda a, b: a * b,
        # trunc-division semantics shared with the interpreter, so folded
        # constants can never diverge from interpreted results
        "arith.divsi": semantics.int_div,
        "arith.floordivsi": semantics.int_floordiv,
        "arith.ceildivsi": semantics.int_ceildiv,
        "arith.remsi": semantics.int_rem,
        "arith.maxsi": max,
        "arith.minsi": min,
        "arith.andi": lambda a, b: a & b,
        "arith.ori": lambda a, b: a | b,
        "arith.xori": lambda a, b: a ^ b,
    }
    _FOLDABLE_FLOAT = {
        "arith.addf": lambda a, b: a + b,
        "arith.subf": lambda a, b: a - b,
        "arith.mulf": lambda a, b: a * b,
        "arith.divf": lambda a, b: a / b if b else float("inf"),
        "arith.maximumf": max,
        "arith.minimumf": min,
    }
    _IDENTITY_RIGHT = {
        "arith.addi": 0, "arith.subi": 0, "arith.addf": 0.0, "arith.subf": 0.0,
        "arith.muli": 1, "arith.mulf": 1.0, "arith.divsi": 1, "arith.divf": 1.0,
    }

    def run(self, module: Operation) -> None:
        if self.STRATEGY == "rewalk":
            self._run_rewalk(module)
            return
        from collections import deque

        # fold to a fixpoint: seed every op once, re-enqueue only affected ops
        worklist = deque(module.walk())
        queued = set(worklist)
        while worklist:
            op = worklist.popleft()
            queued.discard(op)
            if op.parent is None and op is not module:
                continue  # erased by an earlier fold
            parent = op.parent
            affected = self._fold(op)
            if affected is not None:
                for user in affected:
                    if user not in queued:
                        queued.add(user)
                        worklist.append(user)
                parent_op = parent.parent.parent if parent is not None \
                    and parent.parent is not None else None
                if parent_op is not None and parent_op not in queued:
                    queued.add(parent_op)
                    worklist.append(parent_op)
        self._dce_worklist(module)

    def _run_rewalk(self, module: Operation) -> None:
        """Reference driver: full module re-walk per fixpoint iteration."""
        changed = True
        iterations = 0
        while changed and iterations < 8:
            changed = False
            iterations += 1
            for op in list(module.walk()):
                if op.parent is None:
                    continue
                if self._fold(op) is not None:
                    changed = True
            changed |= self._dce(module) > 0

    def _dce_worklist(self, module: Operation) -> int:
        """Worklist DCE: erasing an op re-enqueues its operands' producers."""
        from collections import deque

        removed = 0
        worklist = deque(module.walk_postorder())
        queued = set(worklist)
        while worklist:
            op = worklist.popleft()
            queued.discard(op)
            if op.parent is None or op is module:
                continue
            if _is_pure(op) and op.results and \
                    all(r.num_uses == 0 for r in op.results):
                producers = [getattr(operand, "op", None)
                             for operand in op.operands]
                op.erase(check_uses=False)
                removed += 1
                for producer in producers:
                    if producer is not None and producer not in queued:
                        queued.add(producer)
                        worklist.append(producer)
        return removed

    @staticmethod
    def _users_of(op: Operation) -> List[Operation]:
        """The ops consuming ``op``'s results — the fold's affected set,
        captured immediately before the use lists are rewritten."""
        return [use.operation for result in op.results
                for use in result.uses]

    def _fold(self, op: Operation) -> Optional[List[Operation]]:
        """Try to fold ``op``; returns the affected ops (users captured
        before the rewrite) when a fold fired, None otherwise."""
        name = op.name
        if name in self._FOLDABLE_INT or name in self._FOLDABLE_FLOAT:
            lhs = _constant_of(op.operands[0])
            rhs = _constant_of(op.operands[1])
            result_type = op.results[0].type
            if lhs is not None and rhs is not None and \
                    not isinstance(result_type, ir_types.VectorType):
                table = self._FOLDABLE_INT if name in self._FOLDABLE_INT \
                    else self._FOLDABLE_FLOAT
                value = table[name](lhs, rhs)
                const = arith.ConstantOp(value if name in self._FOLDABLE_FLOAT
                                         else int(value), result_type)
                op.parent.insert_before(op, const)
                affected = self._users_of(op)
                op.replace_all_uses_with([const.result])
                op.erase(check_uses=False)
                return affected
            if rhs is not None and name in self._IDENTITY_RIGHT and \
                    rhs == self._IDENTITY_RIGHT[name]:
                affected = self._users_of(op)
                op.replace_all_uses_with([op.operands[0]])
                op.erase(check_uses=False)
                return affected
        if name == "arith.index_cast":
            src = op.operands[0]
            if src.type == op.results[0].type:
                affected = self._users_of(op)
                op.replace_all_uses_with([src])
                op.erase(check_uses=False)
                return affected
            inner = getattr(src, "op", None)
            if inner is not None and inner.name == "arith.index_cast" and \
                    inner.operands[0].type == op.results[0].type:
                affected = self._users_of(op)
                op.replace_all_uses_with([inner.operands[0]])
                op.erase(check_uses=False)
                return affected
            const = _constant_of(src)
            if const is not None:
                new = arith.ConstantOp(int(const), op.results[0].type)
                op.parent.insert_before(op, new)
                affected = self._users_of(op)
                op.replace_all_uses_with([new.result])
                op.erase(check_uses=False)
                return affected
        if name == "arith.cmpi":
            lhs, rhs = _constant_of(op.operands[0]), _constant_of(op.operands[1])
            if lhs is not None and rhs is not None:
                pred = op.get_attr("predicate").value
                table = {"eq": lhs == rhs, "ne": lhs != rhs, "slt": lhs < rhs,
                         "sle": lhs <= rhs, "sgt": lhs > rhs, "sge": lhs >= rhs}
                if pred in table:
                    new = arith.ConstantOp(bool(table[pred]), ir_types.i1)
                    op.parent.insert_before(op, new)
                    affected = self._users_of(op)
                    op.replace_all_uses_with([new.result])
                    op.erase(check_uses=False)
                    return affected
        if name == "arith.select":
            cond = _constant_of(op.operands[0])
            if cond is not None:
                affected = self._users_of(op)
                op.replace_all_uses_with([op.operands[1] if cond
                                          else op.operands[2]])
                op.erase(check_uses=False)
                return affected
        if name == "scf.if":
            cond = _constant_of(op.operands[0])
            if cond is not None and not op.results:
                block = op.regions[0].blocks[0] if cond else (
                    op.regions[1].blocks[0] if op.regions[1].blocks else None)
                affected: List[Operation] = []
                if block is not None:
                    terminator = block.terminator
                    if terminator is not None:
                        terminator.erase(check_uses=False)
                    for inner in list(block.ops):
                        inner.detach()
                        op.parent.insert_before(op, inner)
                        affected.append(inner)
                op.erase(check_uses=False)
                return affected
        return None

    def _dce(self, module: Operation) -> int:
        removed = 0
        changed = True
        while changed:
            changed = False
            for op in list(module.walk_postorder()):
                if op.parent is None or op is module:
                    continue
                if _is_pure(op) and op.results and \
                        all(r.num_uses == 0 for r in op.results):
                    op.erase(check_uses=False)
                    removed += 1
                    changed = True
        return removed


# ---------------------------------------------------------------------------
# cse
# ---------------------------------------------------------------------------


@register_pass
class CSEPass(Pass):
    """Common-subexpression elimination of pure ops within each block."""

    NAME = "cse"

    def run(self, module: Operation) -> None:
        for op in module.walk():
            for region in op.regions:
                for block in region.blocks:
                    self._run_on_block(block)

    @staticmethod
    def _op_key(op: Operation) -> Optional[Tuple]:
        if not _is_pure(op) or not op.results:
            return None
        attrs = tuple(sorted((k, repr(v)) for k, v in op.attributes.items()))
        return (op.name, tuple(id(o) for o in op.operands), attrs)

    def _run_on_block(self, block: Block) -> None:
        seen: Dict[Tuple, Operation] = {}
        for op in list(block.ops):
            key = self._op_key(op)
            if key is None:
                continue
            if key in seen:
                op.replace_all_uses_with(list(seen[key].results))
                op.erase(check_uses=False)
            else:
                seen[key] = op


# ---------------------------------------------------------------------------
# loop-invariant code motion
# ---------------------------------------------------------------------------


@register_pass
class LoopInvariantCodeMotionPass(Pass):
    NAME = "loop-invariant-code-motion"

    _LOOPS = ("scf.for", "scf.while", "scf.parallel", "affine.for")

    def run(self, module: Operation) -> None:
        changed = True
        while changed:
            changed = False
            for loop in list(module.walk()):
                if loop.name not in self._LOOPS or loop.parent is None:
                    continue
                changed |= self._hoist_from(loop)

    def _hoist_from(self, loop: Operation) -> bool:
        changed = False
        body_blocks = [b for r in loop.regions for b in r.blocks]
        for block in body_blocks:
            for op in list(block.ops):
                if not _is_pure(op) or not op.results:
                    continue
                if any(self._defined_inside(operand, loop) for operand in op.operands):
                    continue
                op.detach()
                loop.parent.insert_before(loop, op)
                changed = True
        return changed

    @staticmethod
    def _defined_inside(value: Value, loop: Operation) -> bool:
        owner = value.owner
        if isinstance(owner, Block):
            block = owner
        else:
            block = owner.parent
        while block is not None:
            parent_op = block.parent_op()
            if parent_op is loop:
                return True
            if parent_op is None:
                return False
            block = parent_op.parent
        return False


# ---------------------------------------------------------------------------
# reconcile-unrealized-casts
# ---------------------------------------------------------------------------


@register_pass
class ReconcileUnrealizedCastsPass(Pass):
    NAME = "reconcile-unrealized-casts"

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name != "builtin.unrealized_conversion_cast":
                continue
            if len(op.operands) == len(op.results):
                op.replace_all_uses_with(list(op.operands))
                op.erase(check_uses=False)


# ---------------------------------------------------------------------------
# math-uplift-to-fma
# ---------------------------------------------------------------------------


@register_pass
class MathUpliftToFMAPass(Pass):
    """Fuse ``arith.mulf`` + ``arith.addf`` into ``math.fma``."""

    NAME = "math-uplift-to-fma"

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name != "arith.addf" or op.parent is None:
                continue
            for idx, operand in enumerate(op.operands):
                mul = getattr(operand, "op", None)
                if mul is not None and mul.name == "arith.mulf" and \
                        operand.has_one_use() and mul.parent is op.parent:
                    other = op.operands[1 - idx]
                    fma = math_d.FmaOp(mul.operands[0], mul.operands[1], other)
                    op.parent.insert_before(op, fma)
                    op.replace_all_uses_with([fma.result])
                    op.erase(check_uses=False)
                    mul.erase(check_uses=False)
                    break


# ---------------------------------------------------------------------------
# fold-memref-alias-ops
# ---------------------------------------------------------------------------


@register_pass
class FoldMemrefAliasOpsPass(Pass):
    """Fold memref.subview views into the loads/stores that use them (for the
    unit-stride case), removing the intermediate view at access time."""

    NAME = "fold-memref-alias-ops"

    def run(self, module: Operation) -> None:
        for op in list(module.walk()):
            if op.name not in ("memref.load", "memref.store", "affine.load",
                               "affine.store", "vector.load", "vector.store"):
                continue
            memref_index = 0 if op.name in ("memref.load", "affine.load", "vector.load") else 1
            source = op.operands[memref_index]
            subview = getattr(source, "op", None)
            if subview is None or subview.name != "memref.subview":
                continue
            strides = [_constant_of(s) for s in subview.strides]
            if any(s != 1 for s in strides):
                continue
            base = subview.source
            offsets = list(subview.offsets)
            indices = list(op.operands[memref_index + 1:])
            if len(indices) != len(offsets):
                continue
            new_indices = []
            for index, offset in zip(indices, offsets):
                add = arith.AddIOp(index, offset)
                op.parent.insert_before(op, add)
                new_indices.append(add.result)
            new_operands = list(op.operands[:memref_index]) + [base] + new_indices
            op.set_operands(new_operands)


__all__ = [
    "CanonicalizePass", "CSEPass", "LoopInvariantCodeMotionPass",
    "ReconcileUnrealizedCastsPass", "MathUpliftToFMAPass",
    "FoldMemrefAliasOpsPass",
]


@register_pass
class ForwardScalarStoresPass(Pass):
    """Block-local store-to-load forwarding for rank-0 memrefs.

    Flang materialises the loop index into the Fortran iteration variable at
    the top of every loop body; without forwarding that value back into the
    subscript computations the affine promotion/vectorisation passes cannot
    see the induction variable (mirrors LLVM's mem2reg behaviour).
    """

    NAME = "forward-scalar-stores"

    def run(self, module: Operation) -> None:
        from ..ir import types as ir_types
        for op in module.walk():
            for region in op.regions:
                for block in region.blocks:
                    self._run_on_block(block)
        self._eliminate_dead_scalar_stores(module)

    def _eliminate_dead_scalar_stores(self, module: Operation) -> None:
        """Remove stores to rank-0 stack scalars that are never read again
        (typically the per-iteration store of the loop index into the Fortran
        iteration variable once forwarding has removed all its loads)."""
        for op in list(module.walk()):
            if op.name != "memref.alloca" or not op.results:
                continue
            value = op.results[0]
            if not self._is_rank0(value):
                continue
            users = value.users()
            if any(u.name not in ("memref.store", "memref.load") for u in users):
                continue
            if any(u.name == "memref.load" for u in users):
                continue
            if any(u.name == "memref.store" and u.operands[1] is not value
                   for u in users):
                continue
            for user in users:
                user.erase(check_uses=False)
            op.erase(check_uses=False)

    @staticmethod
    def _is_rank0(value: Value) -> bool:
        from ..ir import types as ir_types
        return isinstance(value.type, ir_types.MemRefType) and value.type.rank == 0 \
            and not isinstance(value.type.element_type, ir_types.MemRefType)

    def _run_on_block(self, block: Block) -> None:
        known: Dict[int, Value] = {}
        for op in list(block.ops):
            if op.name == "memref.store" and self._is_rank0(op.operands[1]):
                known[id(op.operands[1])] = op.operands[0]
                continue
            if op.name == "memref.load" and self._is_rank0(op.operands[0]):
                value = known.get(id(op.operands[0]))
                if value is not None and value.type == op.results[0].type:
                    op.replace_all_uses_with([value])
                    op.erase(check_uses=False)
                continue
            if op.name in ("memref.store", "affine.store", "vector.store"):
                # a store to a rank>0 memref cannot alias a rank-0 stack scalar
                continue
            # calls may write scalars passed by reference; region-bearing ops
            # may contain further stores; any other memory-writing op (linalg
            # outs, hlfir.assign, ...) may update the cell — all invalidate
            # the tracked values
            from ..ir.traits import WRITES_MEMORY
            if op.regions or op.has_trait(WRITES_MEMORY) or \
                    op.name.endswith(".call") or op.dialect in ("linalg", "hlfir"):
                known.clear()


__all__.append("ForwardScalarStoresPass")
