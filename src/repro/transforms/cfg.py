"""Structured-control-flow to CFG conversion utilities.

Both compilation flows need to flatten structured region ops into branch-based
control flow:

* the standard-MLIR flow runs ``convert-scf-to-cf`` (Listing 1 / Figure 3),
* Flang's direct code generation performs the equivalent flattening of
  ``fir.do_loop`` / ``fir.if`` / ``fir.iterate_while`` on its way to LLVM-IR.

The shared helpers here split blocks and splice region bodies; the passes in
:mod:`repro.transforms.convert_scf_to_cf` and :mod:`repro.flang.codegen`
build on them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, cf, scf
from ..ir import types as ir_types
from ..ir.core import Block, Operation, Region, Value


def split_block(block: Block, before: Operation) -> Block:
    """Split ``block`` before ``before``; the tail ops move to a new block that
    is inserted right after ``block`` in the parent region."""
    region = block.parent
    idx = block.ops.index(before)
    tail = Block()
    for op in block.ops[idx:]:
        op.parent = tail
        tail.ops.append(op)
    del block.ops[idx:]
    region.insert_block_at(block.index_in_region() + 1, tail)
    return tail


def splice_block_into(source: Block, dest: Block,
                      arg_replacements: Sequence[Value]) -> None:
    """Move all ops of ``source`` to the end of ``dest``, replacing the source
    block arguments with ``arg_replacements``."""
    for arg, repl in zip(source.args, arg_replacements):
        arg.replace_all_uses_with(repl)
    for op in list(source.ops):
        op.detach()
        dest.add_op(op)


def move_region_blocks(region: Region, target_region: Region,
                       at_index: int) -> List[Block]:
    """Move all blocks of ``region`` into ``target_region`` starting at index."""
    moved = []
    for offset, block in enumerate(list(region.blocks)):
        region.blocks.remove(block)
        target_region.insert_block_at(at_index + offset, block)
        moved.append(block)
    return moved


class CFGLowering:
    """Flattens structured ops inside every function body into a block CFG.

    Subclasses provide ``structured_op_names`` plus one ``lower_<op>`` method
    per structured operation; the driver walks innermost-first so nested
    structures are already flat when their parent is processed.
    """

    structured_op_names: Tuple[str, ...] = ()

    #: the terminator op class used for forwarding values (e.g. scf.yield)
    def branch(self, dest: Block, operands: Sequence[Value] = ()) -> Operation:
        return cf.BranchOp(dest, list(operands))

    def cond_branch(self, condition: Value, true_dest: Block, false_dest: Block,
                    true_operands: Sequence[Value] = (),
                    false_operands: Sequence[Value] = ()) -> Operation:
        return cf.CondBranchOp(condition, true_dest, false_dest,
                               list(true_operands), list(false_operands))

    # -- driver ---------------------------------------------------------------
    def run_on_function(self, func: Operation) -> None:
        """Lower outermost-first: every structured op's regions are still
        single blocks when it is processed, nested structured ops having been
        hoisted (as whole operations) into the new CFG blocks."""
        while True:
            target = None
            for op in func.walk():
                if op is not func and op.name in self.structured_op_names:
                    target = op
                    break
            if target is None:
                break
            self.lower_op(target)

    def lower_op(self, op: Operation) -> None:
        method = getattr(self, "lower_" + op.name.replace(".", "_"))
        method(op)


__all__ = ["split_block", "splice_block_into", "move_region_blocks", "CFGLowering"]
