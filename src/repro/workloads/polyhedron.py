"""Reduced re-implementations of the Polyhedron Fortran benchmark kernels.

The Polyhedron suite (fortran.uk) consists of full Fortran applications; the
paper uses 17 of them in Table I.  Rebuilding the complete applications is
out of scope, so each benchmark is represented here by a compact kernel that
reproduces its dominant computational pattern (the pattern each code is known
for and that drives its relative behaviour across compilers): scalar
recurrences for ``ac``, transcendental-heavy loops for ``fatigue`` and
``mp_prop_design``, memory-bound sweeps for ``channel`` and ``induct``,
linear-algebra loops for ``linpk`` and ``test_fpu``, strided accesses for
``tfft``, integer/branch-heavy counting for ``rnflow``, and so on.  Problem
sizes are chosen so the work models land in the same order of magnitude as
the published runtimes.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload


def _workload(name: str, description: str, template: str,
              paper: Dict[str, int], interp: Dict[str, int],
              work, memory=None, parallel_fraction: float = 0.9) -> Workload:
    return Workload(
        name=name, category="polyhedron", description=description,
        source_template=template, paper_params=paper, interp_params=interp,
        work_model=work,
        memory_model=memory or (lambda p: 8.0 * p.get("n", 1024) ** 2),
        parallel_fraction=parallel_fraction,
    )


_AC = """
program ac
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: state, gain
  real(kind=8) :: x, err, target
  integer :: i, it
  allocate(state(n), gain(n))
  do i = 1, n
    state(i) = 0.0d0
    gain(i) = 1.0d0 / real(i, 8)
  end do
  target = 1.0d0
  do it = 1, iters
    x = 0.0d0
    do i = 1, n
      err = target - state(i)
      state(i) = state(i) + gain(i) * err * 0.125d0
      x = x + state(i)
    end do
    target = target + 1.0d-6 * x
  end do
  print *, target
end program ac
"""

_AERMOD = """
program aermod
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: conc, emis, wind
  real(kind=8) :: plume, sigma, total
  integer :: i, it
  allocate(conc(n), emis(n), wind(n))
  do i = 1, n
    conc(i) = 0.0d0
    emis(i) = real(mod(i, 17), 8) * 0.1d0
    wind(i) = 2.0d0 + real(mod(i, 5), 8)
  end do
  total = 0.0d0
  do it = 1, iters
    do i = 1, n
      sigma = 0.08d0 * real(i, 8) ** 0.894d0
      plume = emis(i) / (wind(i) * sigma + 1.0d0)
      if (plume > 1.0d-3) then
        conc(i) = conc(i) + plume * exp(0.0d0 - 0.5d0 * (real(it, 8) / sigma) ** 2)
      else
        conc(i) = conc(i) + plume
      end if
    end do
  end do
  do i = 1, n
    total = total + conc(i)
  end do
  print *, total
end program aermod
"""

_AIR = """
program air
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: rho, u, p, flux
  real(kind=8) :: c, total
  integer :: i, it
  allocate(rho(n), u(n), p(n), flux(n))
  do i = 1, n
    rho(i) = 1.0d0 + 0.01d0 * real(mod(i, 9), 8)
    u(i) = 0.1d0 * real(mod(i, 3), 8)
    p(i) = 1.0d0
    flux(i) = 0.0d0
  end do
  do it = 1, iters
    do i = 2, n - 1
      c = sqrt(1.4d0 * p(i) / rho(i))
      flux(i) = rho(i) * u(i) + 0.5d0 * (p(i + 1) - p(i - 1)) / c
    end do
    do i = 2, n - 1
      rho(i) = rho(i) - 0.001d0 * (flux(i + 1) - flux(i - 1))
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + rho(i)
  end do
  print *, total
end program air
"""

_CAPACITA = """
program capacita
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:,:), allocatable :: phi, rhs
  real(kind=8) :: total
  integer :: i, j, it
  allocate(phi(n, n), rhs(n, n))
  do j = 1, n
    do i = 1, n
      phi(i, j) = 0.0d0
      rhs(i, j) = sin(real(i, 8) * 0.1d0) * cos(real(j, 8) * 0.1d0)
    end do
  end do
  do it = 1, iters
    do j = 2, n - 1
      do i = 2, n - 1
        phi(i, j) = 0.25d0 * (phi(i - 1, j) + phi(i + 1, j) + phi(i, j - 1) + phi(i, j + 1) - rhs(i, j))
      end do
    end do
  end do
  total = 0.0d0
  do j = 1, n
    do i = 1, n
      total = total + phi(i, j) * phi(i, j)
    end do
  end do
  print *, total
end program capacita
"""

_CHANNEL = """
program channel
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:,:), allocatable :: vel, velnew
  real(kind=8) :: nu, total
  integer :: i, j, it
  allocate(vel(n, n), velnew(n, n))
  nu = 0.1d0
  do j = 1, n
    do i = 1, n
      vel(i, j) = real(j, 8) / real(n, 8)
      velnew(i, j) = 0.0d0
    end do
  end do
  do it = 1, iters
    do j = 2, n - 1
      do i = 2, n - 1
        velnew(i, j) = vel(i, j) + nu * (vel(i - 1, j) + vel(i + 1, j) + vel(i, j - 1) + vel(i, j + 1) - 4.0d0 * vel(i, j))
      end do
    end do
    do j = 2, n - 1
      do i = 2, n - 1
        vel(i, j) = velnew(i, j)
      end do
    end do
  end do
  total = sum(vel)
  print *, total
end program channel
"""

_DODUC = """
program doduc
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: temp, power, coolant
  real(kind=8) :: k1, k2, total
  integer :: i, it
  allocate(temp(n), power(n), coolant(n))
  do i = 1, n
    temp(i) = 300.0d0
    power(i) = 1.0d0 + 0.5d0 * real(mod(i, 7), 8)
    coolant(i) = 290.0d0
  end do
  do it = 1, iters
    do i = 1, n
      k1 = 0.02d0 + 1.0d-5 * temp(i)
      if (temp(i) > 400.0d0) then
        k2 = 0.8d0
      else
        k2 = 1.2d0
      end if
      temp(i) = temp(i) + k2 * (power(i) - k1 * (temp(i) - coolant(i)))
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + temp(i)
  end do
  print *, total
end program doduc
"""

_FATIGUE = """
program fatigue
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: stress, damage
  real(kind=8) :: cycles, total
  integer :: i, it
  allocate(stress(n), damage(n))
  do i = 1, n
    stress(i) = 100.0d0 + real(mod(i, 13), 8) * 10.0d0
    damage(i) = 0.0d0
  end do
  do it = 1, iters
    do i = 1, n
      cycles = exp(20.0d0 - 0.05d0 * stress(i)) + 1.0d0
      damage(i) = damage(i) + 1.0d0 / cycles
      stress(i) = stress(i) * (1.0d0 + 1.0d-6 * damage(i))
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + damage(i)
  end do
  print *, total
end program fatigue
"""

_GAS_DYN = """
program gas_dyn
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: den, vel, eng, prs
  real(kind=8) :: dt, cmax, c, total
  integer :: i, it
  allocate(den(n), vel(n), eng(n), prs(n))
  do i = 1, n
    den(i) = 1.0d0
    vel(i) = 0.0d0
    eng(i) = 2.5d0
    prs(i) = 1.0d0
  end do
  den(1) = 10.0d0
  prs(1) = 10.0d0
  dt = 1.0d-4
  do it = 1, iters
    cmax = 0.0d0
    do i = 1, n
      c = sqrt(1.4d0 * prs(i) / den(i)) + abs(vel(i))
      cmax = max(cmax, c)
    end do
    do i = 2, n - 1
      vel(i) = vel(i) - dt * (prs(i + 1) - prs(i - 1)) / (2.0d0 * den(i))
      den(i) = den(i) - dt * den(i) * (vel(i + 1) - vel(i - 1)) * 0.5d0
      prs(i) = (1.4d0 - 1.0d0) * den(i) * (eng(i) - 0.5d0 * vel(i) * vel(i))
    end do
  end do
  total = cmax + sum(den)
  print *, total
end program gas_dyn
"""

_INDUCT = """
program induct
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:,:), allocatable :: ax, ay, bz
  real(kind=8) :: mu, total
  integer :: i, j, it
  allocate(ax(n, n), ay(n, n), bz(n, n))
  mu = 1.256d0
  do j = 1, n
    do i = 1, n
      ax(i, j) = real(i, 8) * 1.0d-3
      ay(i, j) = real(j, 8) * 1.0d-3
      bz(i, j) = 0.0d0
    end do
  end do
  do it = 1, iters
    do j = 2, n - 1
      do i = 2, n - 1
        bz(i, j) = (ay(i + 1, j) - ay(i - 1, j) - ax(i, j + 1) + ax(i, j - 1)) * 0.5d0 * mu
      end do
    end do
    do j = 2, n - 1
      do i = 2, n - 1
        ax(i, j) = ax(i, j) + 1.0d-4 * bz(i, j)
        ay(i, j) = ay(i, j) - 1.0d-4 * bz(i, j)
      end do
    end do
  end do
  total = sum(bz)
  print *, total
end program induct
"""

_LINPK = """
program linpk
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:,:), allocatable :: a
  real(kind=8), dimension(:), allocatable :: x, y
  real(kind=8) :: alpha, total
  integer :: i, j, it
  allocate(a(n, n), x(n), y(n))
  do j = 1, n
    do i = 1, n
      a(i, j) = 1.0d0 / real(i + j, 8)
    end do
  end do
  do i = 1, n
    x(i) = 1.0d0
    y(i) = 0.0d0
  end do
  do it = 1, iters
    do j = 1, n
      alpha = x(j) * 0.5d0
      do i = 1, n
        y(i) = y(i) + alpha * a(i, j)
      end do
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + y(i)
  end do
  print *, total
end program linpk
"""

_MDBX = """
program mdbx
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: x, v, f
  real(kind=8) :: r, fij, total
  integer :: i, j, it
  allocate(x(n), v(n), f(n))
  do i = 1, n
    x(i) = real(i, 8) * 1.1d0
    v(i) = 0.0d0
    f(i) = 0.0d0
  end do
  do it = 1, iters
    do i = 1, n
      f(i) = 0.0d0
    end do
    do i = 1, n - 1
      r = x(i + 1) - x(i)
      fij = 24.0d0 * (2.0d0 / r ** 13 - 1.0d0 / r ** 7)
      f(i) = f(i) - fij
      f(i + 1) = f(i + 1) + fij
    end do
    do i = 1, n
      v(i) = v(i) + 0.001d0 * f(i)
      x(i) = x(i) + 0.001d0 * v(i)
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + v(i) * v(i)
  end do
  print *, total
end program mdbx
"""

_MP_PROP_DESIGN = """
program mp_prop_design
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: chord, twist, thrust
  real(kind=8) :: phi, cl, cd, total
  integer :: i, it
  allocate(chord(n), twist(n), thrust(n))
  do i = 1, n
    chord(i) = 0.1d0 + 0.01d0 * real(mod(i, 11), 8)
    twist(i) = 0.3d0 - 0.001d0 * real(i, 8)
    thrust(i) = 0.0d0
  end do
  do it = 1, iters
    do i = 1, n
      phi = atan(twist(i) + 0.05d0 * sin(real(it, 8) * 0.01d0))
      cl = 6.28d0 * (twist(i) - phi)
      cd = 0.008d0 + 0.01d0 * cl * cl
      thrust(i) = thrust(i) + chord(i) * (cl * cos(phi) - cd * sin(phi))
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + thrust(i)
  end do
  print *, total
end program mp_prop_design
"""

_NF = """
program nf
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: signal, filtered
  real(kind=8) :: total
  integer :: i, it
  allocate(signal(n), filtered(n))
  do i = 1, n
    signal(i) = sin(real(i, 8) * 0.05d0) + 0.1d0 * real(mod(i, 3), 8)
    filtered(i) = 0.0d0
  end do
  do it = 1, iters
    do i = 3, n - 2
      filtered(i) = 0.1d0 * signal(i - 2) + 0.2d0 * signal(i - 1) + 0.4d0 * signal(i) &
                  + 0.2d0 * signal(i + 1) + 0.1d0 * signal(i + 2)
    end do
    do i = 3, n - 2
      signal(i) = filtered(i)
    end do
  end do
  total = sum(signal)
  print *, total
end program nf
"""

_PROTEIN = """
program protein
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: energy, angle
  real(kind=8) :: e, best, total
  integer :: i, it
  allocate(energy(n), angle(n))
  do i = 1, n
    angle(i) = real(mod(i, 360), 8) * 0.0174d0
    energy(i) = 0.0d0
  end do
  best = 1.0d10
  do it = 1, iters
    do i = 2, n - 1
      e = cos(angle(i) - angle(i - 1)) + 0.5d0 * cos(3.0d0 * angle(i))
      energy(i) = e
      if (e < best) then
        best = e
      end if
      angle(i) = angle(i) + 0.001d0 * e
    end do
  end do
  total = best + sum(energy)
  print *, total
end program protein
"""

_RNFLOW = """
program rnflow
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:), allocatable :: series
  integer, dimension(:), allocatable :: counts
  real(kind=8) :: range_value, total
  integer :: i, it, bin
  allocate(series(n), counts(64))
  do i = 1, 64
    counts(i) = 0
  end do
  do i = 1, n
    series(i) = sin(real(i, 8) * 0.1d0) * real(mod(i, 23), 8)
  end do
  do it = 1, iters
    do i = 2, n
      range_value = abs(series(i) - series(i - 1))
      bin = int(range_value) + 1
      if (bin > 64) then
        bin = 64
      end if
      counts(bin) = counts(bin) + 1
    end do
  end do
  total = 0.0d0
  do i = 1, 64
    total = total + real(counts(i), 8)
  end do
  print *, total
end program rnflow
"""

_TEST_FPU = """
program test_fpu
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real(kind=8), dimension(:,:), allocatable :: a, b
  real(kind=8) :: pivot, akj, total
  integer :: i, j, k, it
  allocate(a(n, n), b(n, n))
  do it = 1, iters
    do j = 1, n
      do i = 1, n
        a(i, j) = 1.0d0 / real(i + j, 8)
        b(i, j) = 0.0d0
      end do
      b(j, j) = 1.0d0
    end do
    do k = 1, n - 1
      pivot = a(k, k) + 1.0d-12
      do j = k + 1, n
        akj = a(k, j) / pivot
        do i = 1, n
          a(i, j) = a(i, j) - a(i, k) * akj
        end do
      end do
    end do
  end do
  total = sum(a)
  print *, total
end program test_fpu
"""

_TFFT = """
program tfft
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: iters = {iters}
  real, dimension(:), allocatable :: re, im
  real :: wr, wi, tr, ti
  real(kind=8) :: total
  integer :: i, it, stride, half
  allocate(re(n), im(n))
  do i = 1, n
    re(i) = real(mod(i, 8))
    im(i) = 0.0
  end do
  do it = 1, iters
    stride = 1
    do while (stride < n)
      half = stride * 2
      do i = 1, n - stride, half
        wr = cos(real(i) * 0.001)
        wi = sin(real(i) * 0.001)
        tr = wr * re(i + stride) - wi * im(i + stride)
        ti = wr * im(i + stride) + wi * re(i + stride)
        re(i + stride) = re(i) - tr
        im(i + stride) = im(i) - ti
        re(i) = re(i) + tr
        im(i) = im(i) + ti
      end do
      stride = half
    end do
  end do
  total = 0.0d0
  do i = 1, n
    total = total + real(re(i), 8) * real(re(i), 8)
  end do
  print *, total
end program tfft
"""


def polyhedron_workloads() -> List[Workload]:
    """The 17 Polyhedron benchmarks of Table I (reduced kernels)."""
    mb = 1024 * 1024
    return [
        _workload("ac", "adaptive control: scalar recurrence loops", _AC,
                  {"n": 4000, "iters": 600000}, {"n": 40, "iters": 4},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 16.0 * p["n"]),
        _workload("aermod", "plume dispersion: branchy transcendental loops", _AERMOD,
                  {"n": 20000, "iters": 80000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 24.0 * p["n"]),
        _workload("air", "1-D compressible flow solver", _AIR,
                  {"n": 60000, "iters": 12000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 32.0 * p["n"]),
        _workload("capacita", "capacitance field relaxation with trig set-up", _CAPACITA,
                  {"n": 1400, "iters": 2500}, {"n": 20, "iters": 2},
                  lambda p: float(p["n"]) ** 2 * p["iters"],
                  lambda p: 16.0 * p["n"] ** 2),
        _workload("channel", "2-D channel-flow diffusion sweep", _CHANNEL,
                  {"n": 2200, "iters": 1600}, {"n": 20, "iters": 2},
                  lambda p: float(p["n"]) ** 2 * p["iters"],
                  lambda p: 16.0 * p["n"] ** 2),
        _workload("doduc", "nuclear reactor thermal model: branchy scalar FP", _DODUC,
                  {"n": 30000, "iters": 70000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 24.0 * p["n"]),
        _workload("fatigue", "material fatigue: exp-dominated loops", _FATIGUE,
                  {"n": 60000, "iters": 60000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 16.0 * p["n"]),
        _workload("gas_dyn", "1-D gas dynamics with sqrt/reduction per step", _GAS_DYN,
                  {"n": 120000, "iters": 30000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 32.0 * p["n"]),
        _workload("induct", "electromagnetic induction field sweeps", _INDUCT,
                  {"n": 3400, "iters": 1800}, {"n": 20, "iters": 2},
                  lambda p: float(p["n"]) ** 2 * p["iters"],
                  lambda p: 24.0 * p["n"] ** 2),
        _workload("linpk", "LINPACK-style column-oriented AXPY updates", _LINPK,
                  {"n": 3200, "iters": 120}, {"n": 24, "iters": 2},
                  lambda p: float(p["n"]) ** 2 * p["iters"],
                  lambda p: 8.0 * p["n"] ** 2),
        _workload("mdbx", "molecular dynamics pair forces (power-law)", _MDBX,
                  {"n": 40000, "iters": 25000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 24.0 * p["n"]),
        _workload("mp_prop_design", "propeller design: trig-heavy inner loop", _MP_PROP_DESIGN,
                  {"n": 60000, "iters": 130000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 24.0 * p["n"]),
        _workload("nf", "five-point numerical filter over a signal", _NF,
                  {"n": 300000, "iters": 4000}, {"n": 64, "iters": 2},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 16.0 * p["n"]),
        _workload("protein", "protein chain energy minimisation", _PROTEIN,
                  {"n": 50000, "iters": 50000}, {"n": 48, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 16.0 * p["n"]),
        _workload("rnflow", "rainflow cycle counting: integer/branch heavy", _RNFLOW,
                  {"n": 200000, "iters": 15000}, {"n": 64, "iters": 3},
                  lambda p: float(p["n"]) * p["iters"],
                  lambda p: 8.0 * p["n"]),
        _workload("test_fpu", "dense Gauss-Jordan style FPU stress kernel", _TEST_FPU,
                  {"n": 1000, "iters": 40}, {"n": 16, "iters": 1},
                  lambda p: float(p["n"]) ** 3 * p["iters"],
                  lambda p: 16.0 * p["n"] ** 2),
        _workload("tfft", "radix-2 FFT butterflies (single precision, strided)", _TFFT,
                  {"n": 4194304, "iters": 160}, {"n": 64, "iters": 2},
                  lambda p: float(p["n"]) * 14 * p["iters"],
                  lambda p: 8.0 * p["n"]),
    ]


__all__ = ["polyhedron_workloads"]
