"""Workload descriptions: Fortran kernels plus problem-size metadata.

Each workload carries a Fortran source template, the problem size used in the
paper, a reduced size used for interpretation, and a work model that lets the
performance substrate extrapolate interpreted operation counts to paper-scale
runtimes (see DESIGN.md, "How runtime is produced").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..machine.perf import WorkloadScaling


@dataclass
class Workload:
    name: str
    category: str                      # polyhedron | stencil | intrinsic
    description: str
    source_template: str
    paper_params: Dict[str, int]
    interp_params: Dict[str, int]
    #: work units (e.g. element-updates) as a function of the parameters
    work_model: Callable[[Dict[str, int]], float]
    #: resident working set in bytes as a function of the parameters
    memory_model: Callable[[Dict[str, int]], float] = lambda p: 0.0
    uses_openmp: bool = False
    uses_openacc: bool = False
    #: fraction of runtime inside parallel loops when threaded
    parallel_fraction: float = 0.95

    # ------------------------------------------------------------------ sources
    def source(self, *, scaled: bool = True,
               overrides: Optional[Dict[str, int]] = None) -> str:
        params = dict(self.interp_params if scaled else self.paper_params)
        if overrides:
            params.update(overrides)
        return self.source_template.format(**params)

    def source_hash(self) -> str:
        """SHA-256 of the interpreted (scaled) source actually compiled."""
        return hashlib.sha256(self.source(scaled=True).encode()).hexdigest()

    # ------------------------------------------------------------------ identity
    def identity(self) -> Dict:
        """Stable, JSON-serialisable identity used in service cache keys.

        Two workloads with the same identity compile to the same artifact
        *and* scale it identically, so paper/interp parameters participate
        even though only the scaled source reaches the compiler.
        """
        return {
            "name": self.name,
            "category": self.category,
            "paper_params": {k: self.paper_params[k]
                             for k in sorted(self.paper_params)},
            "interp_params": {k: self.interp_params[k]
                              for k in sorted(self.interp_params)},
            "uses_openmp": self.uses_openmp,
            "uses_openacc": self.uses_openacc,
            "source_sha256": self.source_hash(),
        }

    # ------------------------------------------------------------------ scaling
    def work_ratio(self, overrides: Optional[Dict[str, int]] = None) -> float:
        full_params = dict(self.paper_params)
        if overrides:
            full_params.update(overrides)
        full = self.work_model(full_params)
        scaled = self.work_model(dict(self.interp_params))
        return full / max(scaled, 1.0)

    def scaling(self, overrides: Optional[Dict[str, int]] = None) -> WorkloadScaling:
        full_params = dict(self.paper_params)
        if overrides:
            full_params.update(overrides)
        return WorkloadScaling(
            work_ratio=self.work_ratio(overrides),
            working_set_bytes=self.memory_model(full_params),
            parallel_fraction=self.parallel_fraction,
        )


__all__ = ["Workload"]
