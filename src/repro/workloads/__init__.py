"""Benchmark workloads: Polyhedron kernels, HPC stencils and intrinsics."""

from .base import Workload
from .intrinsics_bench import intrinsic_workloads
from .polyhedron import polyhedron_workloads
from .registry import (TABLE2_BENCHMARKS, WORKLOAD_FAMILIES, WORKLOAD_INDEX,
                       all_workloads, get_workload, register_workload_family,
                       table1_workloads, table2_workloads, table3_workloads)
from .stencils import jacobi, pw_advection, tra_adv

__all__ = [
    "Workload", "intrinsic_workloads", "polyhedron_workloads",
    "TABLE2_BENCHMARKS", "WORKLOAD_FAMILIES", "WORKLOAD_INDEX",
    "all_workloads", "get_workload", "register_workload_family",
    "table1_workloads", "table2_workloads", "table3_workloads", "jacobi",
    "pw_advection", "tra_adv",
]
