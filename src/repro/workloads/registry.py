"""Central registry of every workload used in the experiments."""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Workload
from .intrinsics_bench import intrinsic_workloads
from .polyhedron import polyhedron_workloads
from .stencils import jacobi, pw_advection, tra_adv

#: Benchmarks of Table II (the subset re-evaluated with our approach).
TABLE2_BENCHMARKS = ("ac", "linpk", "nf", "test_fpu", "tfft", "jacobi",
                     "pw-advection", "tra-adv")


def all_workloads() -> List[Workload]:
    return polyhedron_workloads() + [jacobi(), pw_advection(), tra_adv()] + \
        intrinsic_workloads()


def table1_workloads() -> List[Workload]:
    """The 20 benchmarks of Table I (Polyhedron + the three stencils)."""
    return polyhedron_workloads() + [jacobi(), pw_advection(), tra_adv()]


def table2_workloads() -> List[Workload]:
    return [w for w in table1_workloads() if w.name in TABLE2_BENCHMARKS]


def table3_workloads() -> List[Workload]:
    return intrinsic_workloads()


def get_workload(name: str, **kwargs) -> Workload:
    """Look up a workload by name (OpenMP/OpenACC variants for the stencils)."""
    specials = {
        "jacobi": jacobi,
        "pw-advection": pw_advection,
        "tra-adv": tra_adv,
    }
    if name in specials and kwargs:
        return specials[name](**kwargs)
    try:
        # the prebuilt index avoids re-instantiating every workload per lookup
        return WORKLOAD_INDEX[name]
    except KeyError:
        raise KeyError(f"unknown workload '{name}'") from None


WORKLOAD_INDEX: Dict[str, Workload] = {w.name: w for w in all_workloads()}


__all__ = ["all_workloads", "table1_workloads", "table2_workloads",
           "table3_workloads", "get_workload", "WORKLOAD_INDEX",
           "TABLE2_BENCHMARKS"]
