"""Central registry of every workload used in the experiments.

Besides the fixed paper benchmarks, the registry resolves *parametric
workload families*: names of the form ``family/rest`` dispatch to a factory
registered with :func:`register_workload_family` (e.g. ``conformance/17``
resolves to the seeded kernel the conformance generator derives from seed
17).  Families resolve identically in any process — the compile service's
pool workers re-resolve jobs by name — so a family factory must be a pure
function of ``rest``.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Optional

from .base import Workload
from .intrinsics_bench import intrinsic_workloads
from .polyhedron import polyhedron_workloads
from .stencils import jacobi, pw_advection, tra_adv

#: family prefix -> factory(rest, **kwargs) -> Workload
WORKLOAD_FAMILIES: Dict[str, Callable[..., Workload]] = {}

#: family prefixes resolved by importing a module on first use (the module's
#: import side effect registers the family), so pool worker processes can
#: resolve family names without any prior setup.
_LAZY_FAMILIES = {"conformance": "repro.conformance"}


def register_workload_family(prefix: str,
                             factory: Callable[..., Workload]) -> None:
    """Register ``factory`` to resolve workload names ``prefix/<rest>``."""
    if "/" in prefix:
        raise ValueError(f"family prefix may not contain '/': {prefix!r}")
    WORKLOAD_FAMILIES[prefix] = factory


def _resolve_family(name: str, **kwargs) -> Optional[Workload]:
    if "/" not in name:
        return None
    family, _, rest = name.partition("/")
    if family not in WORKLOAD_FAMILIES and family in _LAZY_FAMILIES:
        importlib.import_module(_LAZY_FAMILIES[family])
    factory = WORKLOAD_FAMILIES.get(family)
    if factory is None:
        return None
    return factory(rest, **kwargs)

#: Benchmarks of Table II (the subset re-evaluated with our approach).
TABLE2_BENCHMARKS = ("ac", "linpk", "nf", "test_fpu", "tfft", "jacobi",
                     "pw-advection", "tra-adv")


def all_workloads() -> List[Workload]:
    return polyhedron_workloads() + [jacobi(), pw_advection(), tra_adv()] + \
        intrinsic_workloads()


def table1_workloads() -> List[Workload]:
    """The 20 benchmarks of Table I (Polyhedron + the three stencils)."""
    return polyhedron_workloads() + [jacobi(), pw_advection(), tra_adv()]


def table2_workloads() -> List[Workload]:
    return [w for w in table1_workloads() if w.name in TABLE2_BENCHMARKS]


def table3_workloads() -> List[Workload]:
    return intrinsic_workloads()


def get_workload(name: str, **kwargs) -> Workload:
    """Look up a workload by name (OpenMP/OpenACC variants for the stencils)."""
    specials = {
        "jacobi": jacobi,
        "pw-advection": pw_advection,
        "tra-adv": tra_adv,
    }
    if name in specials and kwargs:
        return specials[name](**kwargs)
    try:
        # the prebuilt index avoids re-instantiating every workload per lookup
        return WORKLOAD_INDEX[name]
    except KeyError:
        workload = _resolve_family(name, **kwargs)
        if workload is not None:
            return workload
        raise KeyError(f"unknown workload '{name}'") from None


WORKLOAD_INDEX: Dict[str, Workload] = {w.name: w for w in all_workloads()}


__all__ = ["all_workloads", "table1_workloads", "table2_workloads",
           "table3_workloads", "get_workload", "register_workload_family",
           "WORKLOAD_FAMILIES", "WORKLOAD_INDEX", "TABLE2_BENCHMARKS"]
