"""The three HPC stencil benchmarks added by the paper (Section III).

* ``jacobi`` — Jacobi iteration solving Laplace's equation on a 1024x1024
  grid for 100000 iterations;
* ``pw-advection`` — the Piacsek-Williams advection scheme from the Met
  Office MONC model, three fields on a 2048x1024x1024 grid;
* ``tra-adv`` — the NEMO ocean-model tracer advection kernel, six fields on a
  1024x512x512 grid over 20 iterations.

The kernels below are reduced re-implementations of the published benchmark
codes, written in the supported Fortran subset; grid sizes and iteration
counts are template parameters so the same source serves both the
paper-scale work model and the reduced interpreted runs.
"""

from __future__ import annotations

from .base import Workload

_JACOBI_TEMPLATE = """
program jacobi
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {iters}
  real(kind=8), dimension(:,:), allocatable :: u, unew
  real(kind=8) :: norm
  integer :: i, j, it
  allocate(u(n, n), unew(n, n))
  do j = 1, n
    do i = 1, n
      u(i, j) = 0.0d0
      unew(i, j) = 0.0d0
    end do
  end do
  do i = 1, n
    u(i, 1) = 1.0d0
    u(i, n) = 1.0d0
  end do
  do it = 1, niters
{omp_pragma}
    do j = 2, n - 1
      do i = 2, n - 1
        unew(i, j) = 0.25d0 * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1))
      end do
    end do
{omp_pragma}
    do j = 2, n - 1
      do i = 2, n - 1
        u(i, j) = unew(i, j)
      end do
    end do
  end do
  norm = 0.0d0
  do j = 1, n
    do i = 1, n
      norm = norm + u(i, j) * u(i, j)
    end do
  end do
  print *, norm
end program jacobi
"""

_PW_ADVECTION_TEMPLATE = """
program pw_advection
  implicit none
  integer, parameter :: nx = {nx}
  integer, parameter :: ny = {ny}
  integer, parameter :: nz = {nz}
  real(kind=8), dimension(:,:,:), allocatable :: u, v, w
  real(kind=8), dimension(:,:,:), allocatable :: su, sv, sw
  real(kind=8) :: tcx, tcy, tcz, checksum
  integer :: i, j, k
  allocate(u(nz, ny, nx), v(nz, ny, nx), w(nz, ny, nx))
  allocate(su(nz, ny, nx), sv(nz, ny, nx), sw(nz, ny, nx))
  tcx = 0.5d0
  tcy = 0.25d0
  tcz = 0.125d0
  do i = 1, nx
    do j = 1, ny
      do k = 1, nz
        u(k, j, i) = real(k + j + i, 8) * 0.001d0
        v(k, j, i) = real(k + 2 * j, 8) * 0.001d0
        w(k, j, i) = real(k, 8) * 0.002d0
        su(k, j, i) = 0.0d0
        sv(k, j, i) = 0.0d0
        sw(k, j, i) = 0.0d0
      end do
    end do
  end do
{acc_open}{omp_pragma}
  do i = 2, nx - 1
    do j = 2, ny - 1
      do k = 2, nz - 1
        su(k, j, i) = tcx * (u(k, j, i - 1) * (u(k, j, i) + u(k, j, i - 1)) - u(k, j, i) * (u(k, j, i + 1) + u(k, j, i))) &
                    + tcy * (u(k, j - 1, i) * (v(k, j, i) + v(k, j - 1, i)) - u(k, j, i) * (v(k, j + 1, i) + v(k, j, i))) &
                    + tcz * (u(k - 1, j, i) * (w(k, j, i) + w(k - 1, j, i)) - u(k, j, i) * (w(k + 1, j, i) + w(k, j, i)))
        sv(k, j, i) = tcx * (v(k, j, i - 1) * (u(k, j, i) + u(k, j, i - 1)) - v(k, j, i) * (u(k, j, i + 1) + u(k, j, i))) &
                    + tcy * (v(k, j - 1, i) * (v(k, j, i) + v(k, j - 1, i)) - v(k, j, i) * (v(k, j + 1, i) + v(k, j, i)))
        sw(k, j, i) = tcz * (w(k - 1, j, i) * (w(k, j, i) + w(k - 1, j, i)) - w(k, j, i) * (w(k + 1, j, i) + w(k, j, i))) &
                    + tcx * (w(k, j, i - 1) * (u(k, j, i) + u(k, j, i - 1)) - w(k, j, i) * (u(k, j, i + 1) + u(k, j, i)))
      end do
    end do
  end do
{acc_close}
  checksum = 0.0d0
  do i = 1, nx
    do j = 1, ny
      do k = 1, nz
        checksum = checksum + su(k, j, i) + sv(k, j, i) + sw(k, j, i)
      end do
    end do
  end do
  print *, checksum
end program pw_advection
"""

_TRA_ADV_TEMPLATE = """
program tra_adv
  implicit none
  integer, parameter :: nx = {nx}
  integer, parameter :: ny = {ny}
  integer, parameter :: nz = {nz}
  integer, parameter :: niters = {iters}
  real(kind=8), dimension(:,:,:), allocatable :: tsn, pun, pvn, pwn
  real(kind=8), dimension(:,:,:), allocatable :: mydomain, zwx
  real(kind=8) :: zbtr, ztra, checksum
  integer :: ji, jj, jk, jt
  allocate(tsn(nz, ny, nx), pun(nz, ny, nx), pvn(nz, ny, nx), pwn(nz, ny, nx))
  allocate(mydomain(nz, ny, nx), zwx(nz, ny, nx))
  do ji = 1, nx
    do jj = 1, ny
      do jk = 1, nz
        tsn(jk, jj, ji) = real(jk + jj, 8) * 0.01d0
        pun(jk, jj, ji) = real(ji, 8) * 0.005d0
        pvn(jk, jj, ji) = real(jj, 8) * 0.005d0
        pwn(jk, jj, ji) = real(jk, 8) * 0.005d0
        mydomain(jk, jj, ji) = 0.0d0
        zwx(jk, jj, ji) = 0.0d0
      end do
    end do
  end do
  zbtr = 1.0d0
  do jt = 1, niters
    do ji = 2, nx - 1
      do jj = 2, ny - 1
        do jk = 2, nz - 1
          zwx(jk, jj, ji) = tsn(jk, jj, ji) * pun(jk, jj, ji) - tsn(jk, jj, ji - 1) * pun(jk, jj, ji - 1) &
                          + tsn(jk, jj, ji) * pvn(jk, jj, ji) - tsn(jk, jj - 1, ji) * pvn(jk, jj - 1, ji) &
                          + tsn(jk, jj, ji) * pwn(jk, jj, ji) - tsn(jk - 1, jj, ji) * pwn(jk - 1, jj, ji)
        end do
      end do
    end do
    do ji = 2, nx - 1
      do jj = 2, ny - 1
        do jk = 2, nz - 1
          ztra = 0.0d0 - zbtr * zwx(jk, jj, ji)
          mydomain(jk, jj, ji) = mydomain(jk, jj, ji) + ztra * 0.01d0
        end do
      end do
    end do
  end do
  checksum = 0.0d0
  do ji = 1, nx
    do jj = 1, ny
      do jk = 1, nz
        checksum = checksum + mydomain(jk, jj, ji)
      end do
    end do
  end do
  print *, checksum
end program tra_adv
"""


def _stencil_source(template: str, omp: bool = False, acc: bool = False) -> str:
    omp_pragma = "!$omp parallel do" if omp else ""
    acc_open = "!$acc kernels copyin(u, v, w) create(su, sv, sw)\n" if acc else ""
    acc_close = "!$acc end kernels\n" if acc else ""
    return template.replace("{omp_pragma}", omp_pragma) \
                   .replace("{acc_open}", acc_open) \
                   .replace("{acc_close}", acc_close)


def jacobi(openmp: bool = False) -> Workload:
    return Workload(
        name="jacobi",
        category="stencil",
        description="Jacobi iteration solving Laplace's equation (1024^2, 100k iters)",
        source_template=_stencil_source(_JACOBI_TEMPLATE, omp=openmp),
        paper_params={"n": 1024, "iters": 100000},
        interp_params={"n": 26, "iters": 3},
        work_model=lambda p: float(p["n"] - 2) ** 2 * p["iters"],
        memory_model=lambda p: 2 * 8.0 * p["n"] ** 2,
        uses_openmp=openmp,
        parallel_fraction=0.995,
    )


def pw_advection(openmp: bool = False, openacc: bool = False,
                 grid_cells: int = None) -> Workload:
    paper = {"nx": 2048, "ny": 1024, "nz": 1024}
    if grid_cells is not None:
        # Table V sweeps the total number of grid cells on the GPU
        nz = max(2, round((grid_cells / 2) ** (1.0 / 3.0)))
        paper = {"nx": 2 * nz, "ny": nz, "nz": nz}
    return Workload(
        name="pw-advection",
        category="stencil",
        description="Piacsek-Williams advection from the MONC atmospheric model",
        source_template=_stencil_source(_PW_ADVECTION_TEMPLATE, omp=openmp,
                                        acc=openacc),
        paper_params=paper,
        interp_params={"nx": 10, "ny": 8, "nz": 8},
        work_model=lambda p: float(p["nx"] - 2) * (p["ny"] - 2) * (p["nz"] - 2),
        memory_model=lambda p: 6 * 8.0 * p["nx"] * p["ny"] * p["nz"],
        uses_openmp=openmp,
        uses_openacc=openacc,
        parallel_fraction=0.97,
    )


def tra_adv(openmp: bool = False) -> Workload:
    return Workload(
        name="tra-adv",
        category="stencil",
        description="NEMO ocean model tracer advection benchmark",
        source_template=_stencil_source(_TRA_ADV_TEMPLATE, omp=openmp),
        paper_params={"nx": 1024, "ny": 512, "nz": 512, "iters": 20},
        interp_params={"nx": 10, "ny": 8, "nz": 8, "iters": 2},
        work_model=lambda p: float(p["nx"] - 2) * (p["ny"] - 2) * (p["nz"] - 2) * p["iters"],
        memory_model=lambda p: 6 * 8.0 * p["nx"] * p["ny"] * p["nz"],
        uses_openmp=openmp,
        parallel_fraction=0.97,
    )


__all__ = ["jacobi", "pw_advection", "tra_adv"]
