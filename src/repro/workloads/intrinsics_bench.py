"""Fortran intrinsic benchmarks of Table III (transpose, matmul, dot_product,
sum) — linalg-dialect lowering (our flow) vs Fortran runtime library (Flang).
"""

from __future__ import annotations

from typing import List

from .base import Workload

_TRANSPOSE = """
program bench_transpose
  implicit none
  integer, parameter :: n = {n}
  integer, dimension(:,:), allocatable :: a, b
  integer :: i, j
  real(kind=8) :: total
  allocate(a(n, n), b(n, n))
  do j = 1, n
    do i = 1, n
      a(i, j) = i + j * 3
    end do
  end do
  b = transpose(a)
  total = 0.0d0
  do j = 1, n
    do i = 1, n
      total = total + real(b(i, j), 8)
    end do
  end do
  print *, total
end program bench_transpose
"""

_MATMUL = """
program bench_matmul
  implicit none
  integer, parameter :: n = {n}
  real(kind=8), dimension(:,:), allocatable :: a, b, c
  integer :: i, j
  real(kind=8) :: total
  allocate(a(n, n), b(n, n), c(n, n))
  do j = 1, n
    do i = 1, n
      a(i, j) = 1.0d0 / real(i + j, 8)
      b(i, j) = real(i - j, 8) * 0.01d0
      c(i, j) = 0.0d0
    end do
  end do
  c = matmul(a, b)
  total = sum(c)
  print *, total
end program bench_matmul
"""

_DOTPRODUCT = """
program bench_dotproduct
  implicit none
  integer, parameter :: n = {n}
  real(kind=8), dimension(:), allocatable :: x, y
  real(kind=8) :: total
  integer :: i
  allocate(x(n), y(n))
  do i = 1, n
    x(i) = real(i, 8) * 1.0d-6
    y(i) = 1.0d0 / real(i, 8)
  end do
  total = dot_product(x, y)
  print *, total
end program bench_dotproduct
"""

_SUM = """
program bench_sum
  implicit none
  integer, parameter :: n = {n}
  real(kind=8), dimension(:,:), allocatable :: a
  real(kind=8) :: total
  integer :: i, j
  allocate(a(n, n))
  do j = 1, n
    do i = 1, n
      a(i, j) = real(i, 8) * 1.0d-3 + real(j, 8)
    end do
  end do
  total = sum(a)
  print *, total
end program bench_sum
"""


def intrinsic_workloads() -> List[Workload]:
    """Table III: transpose 32768^2 (integer), matmul 4096^2 (double),
    dot_product on 134M elements, sum over 32768^2 doubles."""
    return [
        Workload(
            name="transpose", category="intrinsic",
            description="TRANSPOSE of a 32768x32768 integer array",
            source_template=_TRANSPOSE,
            paper_params={"n": 32768}, interp_params={"n": 32},
            work_model=lambda p: float(p["n"]) ** 2,
            memory_model=lambda p: 2 * 4.0 * p["n"] ** 2,
            parallel_fraction=0.98),
        Workload(
            name="matmul", category="intrinsic",
            description="MATMUL of 4096x4096 double precision matrices",
            source_template=_MATMUL,
            paper_params={"n": 4096}, interp_params={"n": 24},
            work_model=lambda p: float(p["n"]) ** 3,
            memory_model=lambda p: 3 * 8.0 * p["n"] ** 2,
            parallel_fraction=0.99),
        Workload(
            name="dotproduct", category="intrinsic",
            description="DOT_PRODUCT of 134 million element double vectors",
            source_template=_DOTPRODUCT,
            paper_params={"n": 134_000_000}, interp_params={"n": 512},
            work_model=lambda p: float(p["n"]),
            memory_model=lambda p: 2 * 8.0 * p["n"],
            parallel_fraction=0.98),
        Workload(
            name="sum", category="intrinsic",
            description="SUM over a 32768x32768 double precision array",
            source_template=_SUM,
            paper_params={"n": 32768}, interp_params={"n": 48},
            work_model=lambda p: float(p["n"]) ** 2,
            memory_model=lambda p: 8.0 * p["n"] ** 2,
            parallel_fraction=0.98),
    ]


__all__ = ["intrinsic_workloads"]
