"""Driver of the paper's compilation flow (Figure 2).

Fortran source is parsed with the (reused) Flang frontend, the combined
HLFIR/FIR IR is intercepted and lowered to the standard MLIR dialects by the
transformation of Section V, the standard optimisation passes (plus the
paper's own passes) are applied, and the result is finally lowered to the
``llvm`` dialect by the existing MLIR conversions (Listing 1).

The optimisation stage runs as ONE op-anchored nested pipeline
(:func:`repro.core.pipelines.standard_flow_pipeline`), so a compilation
yields a single :class:`~repro.ir.pass_manager.PassTimingReport` and can be
instrumented pass-by-pass (``python -m repro.opt --timing --dump-ir``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dialects import dialects_used, uses_only_standard_dialects
from ..dialects.builtin import ModuleOp
from ..flang.driver import FlangCompiler
from ..flows.base import FlowResult
from ..ir.pass_manager import PassInstrumentation, PassTimingReport
from .fir_to_standard import convert_fir_to_standard
from . import pipelines


class StandardFlowResult(FlowResult):
    """All stages of one standard-MLIR-flow compilation.

    A :class:`~repro.flows.base.FlowResult` whose stages are ``hlfir``,
    ``standard``, ``optimised`` and (optionally) ``llvm``; the historical
    attribute names remain available as properties.
    """

    def __init__(self, source: str, hlfir_module: ModuleOp,
                 standard_module: ModuleOp, optimised_module: ModuleOp,
                 llvm_module: Optional[ModuleOp] = None,
                 pipeline_description: str = "",
                 timing: Optional[PassTimingReport] = None):
        super().__init__(flow="ours", source=source,
                         stages={"hlfir": hlfir_module,
                                 "standard": standard_module,
                                 "optimised": optimised_module,
                                 "llvm": llvm_module},
                         pipeline=pipeline_description, timing=timing)

    @property
    def hlfir_module(self) -> ModuleOp:
        return self.stages["hlfir"]

    @property
    def standard_module(self) -> ModuleOp:
        return self.stages["standard"]

    @property
    def optimised_module(self) -> ModuleOp:
        return self.stages["optimised"]

    @property
    def llvm_module(self) -> Optional[ModuleOp]:
        return self.stages["llvm"]

    @property
    def pipeline_description(self) -> str:
        return self.pipeline

    @property
    def is_standard_only(self) -> bool:
        return uses_only_standard_dialects(self.standard_module)


class StandardMLIRCompiler:
    """The paper's flow: Flang frontend + standard MLIR dialects and passes.

    Options select the extra flows evaluated in Section VI:

    * ``vector_width`` — affine super-vectorisation width (4 on ARCHER2/AVX2,
      0 disables vectorisation);
    * ``parallelise`` — convert eligible loops to scf.parallel and lower to
      OpenMP (Tables III/IV);
    * ``gpu`` — lower OpenACC regions to the gpu dialect (Table V);
    * ``tile`` / ``unroll`` — affine loop tiling/unrolling used for the
      linalg-backed intrinsics (Table III).

    ``verify_each`` and ``instrumentations`` thread straight into the
    optimisation pipeline's :class:`~repro.ir.pass_manager.PassManager`.
    """

    name = "our-approach"
    version = "llvm-20"

    def __init__(self, *, vector_width: int = 4, parallelise: bool = False,
                 gpu: bool = False, tile: bool = False, tile_size: int = 32,
                 unroll: int = 0, lower_to_llvm: bool = False,
                 verify_each: bool = False, collect_statistics: bool = True,
                 instrumentations: Sequence[PassInstrumentation] = ()):
        self.vector_width = vector_width
        self.parallelise = parallelise
        self.gpu = gpu
        self.tile = tile
        self.tile_size = tile_size
        self.unroll = unroll
        self.lower_to_llvm = lower_to_llvm
        self.verify_each = verify_each
        self.collect_statistics = collect_statistics
        self.instrumentations = list(instrumentations)
        self._frontend = FlangCompiler()

    # -- pipeline description (Figure 2 / Figure 3) ---------------------------------
    def flow_description(self) -> List[str]:
        steps = [
            "Flang lex/parse + AST optimisation",
            "lower to HLFIR + FIR (Flang)",
            "transform HLFIR/FIR -> standard MLIR dialects (this paper)",
            "standard MLIR optimisation passes"
            + (f" + affine super-vectorisation (width {self.vector_width})"
               if self.vector_width > 1 else ""),
        ]
        if self.parallelise:
            steps.append("scf.parallel -> OpenMP dialect (convert-scf-to-openmp)")
        if self.gpu:
            steps.append("OpenACC -> scf.parallel -> gpu dialect")
        steps.append("lower to LLVM dialect via mlir-opt (Listing 1)")
        steps.append("mlir-translate -> LLVM-IR, clang links with Flang runtime")
        return steps

    def build_pipeline(self):
        """The whole optimisation stage as one nested PassManager."""
        pm = pipelines.standard_flow_pipeline(
            self.vector_width, tile=self.tile, tile_size=self.tile_size,
            unroll=self.unroll, parallelise=self.parallelise, gpu=self.gpu)
        pm.verify_each = self.verify_each
        pm.set_collect_statistics(self.collect_statistics)
        pm.instrumentations.extend(self.instrumentations)
        return pm

    # -- compilation -----------------------------------------------------------------
    def compile(self, source: str) -> StandardFlowResult:
        hlfir_module = self._frontend.lower_to_hlfir(source)
        hlfir_snapshot = hlfir_module.clone()
        standard_module = convert_fir_to_standard(hlfir_module)
        standard_snapshot = standard_module.clone()

        optimised = standard_module
        opt_pm = self.build_pipeline()
        opt_pm.run(optimised)
        timing = opt_pm.last_report

        llvm_module = None
        if self.lower_to_llvm:
            llvm_module = optimised.clone()
            llvm_pm = pipelines.to_llvm_pipeline()
            llvm_pm.run(llvm_module)
            timing = timing.merged(llvm_pm.last_report)

        return StandardFlowResult(
            source=source,
            hlfir_module=hlfir_snapshot,
            standard_module=standard_snapshot,
            optimised_module=optimised,
            llvm_module=llvm_module,
            pipeline_description=opt_pm.describe(),
            timing=timing,
        )


__all__ = ["StandardMLIRCompiler", "StandardFlowResult"]
