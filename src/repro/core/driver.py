"""Driver of the paper's compilation flow (Figure 2).

Fortran source is parsed with the (reused) Flang frontend, the combined
HLFIR/FIR IR is intercepted and lowered to the standard MLIR dialects by the
transformation of Section V, the standard optimisation passes (plus the
paper's own passes) are applied, and the result is finally lowered to the
``llvm`` dialect by the existing MLIR conversions (Listing 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dialects import dialects_used, uses_only_standard_dialects
from ..dialects.builtin import ModuleOp
from ..flang.driver import FlangCompiler
from ..ir.pass_manager import PassManager
from .fir_to_standard import convert_fir_to_standard
from . import pipelines


@dataclass
class StandardFlowResult:
    """All stages of one standard-MLIR-flow compilation."""

    source: str
    hlfir_module: ModuleOp          # Flang frontend output (intercepted)
    standard_module: ModuleOp       # after the Section V transformation
    optimised_module: ModuleOp      # after the paper's + MLIR optimisation passes
    llvm_module: Optional[ModuleOp] = None
    pipeline_description: str = ""

    def stage(self, name: str) -> ModuleOp:
        return {"hlfir": self.hlfir_module, "standard": self.standard_module,
                "optimised": self.optimised_module, "llvm": self.llvm_module}[name]

    @property
    def is_standard_only(self) -> bool:
        return uses_only_standard_dialects(self.standard_module)


class StandardMLIRCompiler:
    """The paper's flow: Flang frontend + standard MLIR dialects and passes.

    Options select the extra flows evaluated in Section VI:

    * ``vector_width`` — affine super-vectorisation width (4 on ARCHER2/AVX2,
      0 disables vectorisation);
    * ``parallelise`` — convert eligible loops to scf.parallel and lower to
      OpenMP (Tables III/IV);
    * ``gpu`` — lower OpenACC regions to the gpu dialect (Table V);
    * ``tile`` / ``unroll`` — affine loop tiling/unrolling used for the
      linalg-backed intrinsics (Table III).
    """

    name = "our-approach"
    version = "llvm-20"

    def __init__(self, *, vector_width: int = 4, parallelise: bool = False,
                 gpu: bool = False, tile: bool = False, tile_size: int = 32,
                 unroll: int = 0, lower_to_llvm: bool = False):
        self.vector_width = vector_width
        self.parallelise = parallelise
        self.gpu = gpu
        self.tile = tile
        self.tile_size = tile_size
        self.unroll = unroll
        self.lower_to_llvm = lower_to_llvm
        self._frontend = FlangCompiler()

    # -- pipeline description (Figure 2 / Figure 3) ---------------------------------
    def flow_description(self) -> List[str]:
        steps = [
            "Flang lex/parse + AST optimisation",
            "lower to HLFIR + FIR (Flang)",
            "transform HLFIR/FIR -> standard MLIR dialects (this paper)",
            "standard MLIR optimisation passes"
            + (f" + affine super-vectorisation (width {self.vector_width})"
               if self.vector_width > 1 else ""),
        ]
        if self.parallelise:
            steps.append("scf.parallel -> OpenMP dialect (convert-scf-to-openmp)")
        if self.gpu:
            steps.append("OpenACC -> scf.parallel -> gpu dialect")
        steps.append("lower to LLVM dialect via mlir-opt (Listing 1)")
        steps.append("mlir-translate -> LLVM-IR, clang links with Flang runtime")
        return steps

    # -- compilation -----------------------------------------------------------------
    def compile(self, source: str) -> StandardFlowResult:
        hlfir_module = self._frontend.lower_to_hlfir(source)
        hlfir_snapshot = hlfir_module.clone()
        standard_module = convert_fir_to_standard(hlfir_module)
        standard_snapshot = standard_module.clone()

        optimised = standard_module
        # forward/eliminate the per-iteration loop-variable stores first so the
        # parallelisation and GPU lowerings see clean loop nests
        from ..ir.pass_manager import PassManager
        PassManager.from_pipeline(
            "builtin.module(canonicalize, cse, forward-scalar-stores, "
            "canonicalize, cse)").run(optimised)
        if self.gpu:
            pipelines.gpu_pipeline().run(optimised)
        if self.parallelise:
            pipelines.openmp_pipeline().run(optimised)
        opt_pm = pipelines.optimise_pipeline(self.vector_width, tile=self.tile,
                                             tile_size=self.tile_size,
                                             unroll=self.unroll)
        opt_pm.run(optimised)

        llvm_module = None
        if self.lower_to_llvm:
            llvm_module = optimised.clone()
            pipelines.to_llvm_pipeline().run(llvm_module)

        return StandardFlowResult(
            source=source,
            hlfir_module=hlfir_snapshot,
            standard_module=standard_snapshot,
            optimised_module=optimised,
            llvm_module=llvm_module,
            pipeline_description=opt_pm.describe(),
        )


__all__ = ["StandardMLIRCompiler", "StandardFlowResult"]
