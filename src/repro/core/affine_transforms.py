"""Affine loop tiling and unrolling (used for the linalg-backed intrinsics).

Section VI-A: ``affine-loop-tile`` brought the matmul benchmark from ~5x
slower to the reported performance, and unrolling + vectorisation gave ~2x on
dot product.  Both passes operate on loops with constant bounds (which the
static-shape recovery pass re-establishes for allocatable arrays).
"""

from __future__ import annotations

from typing import List, Optional

from ..dialects import affine as affine_d
from ..ir import types as ir_types
from ..ir.attributes import AffineMapAttr, IntegerAttr
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass


def _constant_bounds(loop: affine_d.AffineForOp) -> Optional[tuple]:
    lb, ub = loop.lower_bound_map, loop.upper_bound_map
    if len(lb.results) == 1 and lb.results[0].kind == "const" and \
            len(ub.results) == 1 and ub.results[0].kind == "const":
        return lb.results[0].value, ub.results[0].value
    return None


def _perfect_nest(loop: affine_d.AffineForOp) -> List[affine_d.AffineForOp]:
    """The maximal perfectly nested band rooted at ``loop``."""
    nest = [loop]
    current = loop
    while True:
        body_ops = [op for op in current.body.ops if op.name != "affine.yield"]
        if len(body_ops) == 1 and body_ops[0].name == "affine.for":
            current = body_ops[0]
            nest.append(current)
        else:
            break
    return nest


@register_pass
class AffineLoopTilePass(FunctionPass):
    """``affine-loop-tile{tile-size=N}``: tile perfect nests of constant-bound
    affine loops.

    Tiling is recorded structurally: each loop of the band is split into a
    tile loop (step = tile size) and a point loop (bounded by the tile size),
    which is exactly how downstream passes and the machine model observe the
    improved locality.
    """

    NAME = "affine-loop-tile"

    def run_on_function(self, func: Operation) -> None:
        tile_size = int(self.options.get("tile_size", 32))
        bands: List[List[affine_d.AffineForOp]] = []
        seen = set()
        for op in func.walk():
            if op.name == "affine.for" and op not in seen:
                band = _perfect_nest(op)
                if len(band) >= 2 and all(_constant_bounds(l) for l in band):
                    bands.append(band)
                for loop in band:
                    seen.add(loop)
        for band in bands:
            self._tile_band(band, tile_size)

    def _tile_band(self, band: List[affine_d.AffineForOp], tile: int) -> None:
        # Mark the band as tiled and change each loop into tile/point form by
        # doubling the nest: outer loops iterate with step `tile`, inner point
        # loops run over the tile.
        outermost = band[0]
        innermost = band[-1]
        body_ops = [op for op in innermost.body.ops if op.name != "affine.yield"]

        point_loops: List[affine_d.AffineForOp] = []
        for loop in band:
            lb, ub = _constant_bounds(loop)
            loop.set_attr("tile_step", IntegerAttr(tile))
            loop.set_attr("tiled", IntegerAttr(1))
            loop.attributes["step"] = IntegerAttr(tile)
            point_body = Block(arg_types=[ir_types.index])
            point = affine_d.AffineForOp([], AffineMapAttr.constant_map(0),
                                         [], AffineMapAttr.constant_map(min(tile, ub - lb)),
                                         step=1, body=point_body)
            point.set_attr("point_loop", IntegerAttr(1))
            point_loops.append(point)

        # chain: innermost existing loop body -> point loops -> original body ops
        current_block = innermost.body
        # detach original body ops (except terminator handled above)
        for op in body_ops:
            op.detach()
        for i, point in enumerate(point_loops):
            current_block.insert_op_at(0, point)
            if current_block.terminator is None:
                current_block.add_op(affine_d.AffineYieldOp())
            current_block = point.body
        for op in body_ops:
            current_block.add_op(op)
        if current_block.terminator is None:
            current_block.add_op(affine_d.AffineYieldOp())
        # rewire index uses: original IV (tile base) + point IV
        from ..dialects import arith
        for loop, point in zip(band, point_loops):
            base_iv = loop.induction_variable
            point_iv = point.body.args[0] if point.body.args else None
            add = arith.AddIOp(base_iv, point_iv)
            point.body.insert_op_at(0, add)
            # every use of the original IV inside the relocated body now uses
            # base + point offset (except the add we just created)
            for use in list(base_iv.uses):
                user = use.operation
                if user is add or user is point:
                    continue
                if innermost.is_ancestor_of(user) or any(
                        p.is_ancestor_of(user) for p in point_loops):
                    user.set_operand(use.index, add.result)


@register_pass
class AffineLoopUnrollPass(FunctionPass):
    """``affine-loop-unroll{unroll-factor=N}``: unroll innermost affine loops
    with constant trip counts by replicating their bodies."""

    NAME = "affine-loop-unroll"

    def run_on_function(self, func: Operation) -> None:
        factor = int(self.options.get("unroll_factor", 4))
        for op in list(func.walk()):
            if op.name != "affine.for":
                continue
            if any(inner is not op and inner.name == "affine.for" for inner in op.walk()):
                continue
            self._unroll(op, factor)

    def _unroll(self, loop: affine_d.AffineForOp, factor: int) -> None:
        bounds = _constant_bounds(loop)
        step = loop.step_value
        if bounds is None:
            # dynamic bounds: record the request; lowering keeps the loop intact
            loop.set_attr("unroll_requested", IntegerAttr(factor))
            return
        lb, ub = bounds
        trip = max(0, (ub - lb + step - 1) // step)
        if trip % factor != 0 or trip == 0:
            loop.set_attr("unroll_requested", IntegerAttr(factor))
            return
        body_ops = [op for op in loop.body.ops if op.name != "affine.yield"]
        terminator = loop.body.terminator
        if terminator is not None:
            terminator.erase(check_uses=False)
        iv = loop.induction_variable
        from ..dialects import arith
        for copy_idx in range(1, factor):
            offset_const = arith.ConstantOp(copy_idx * step, ir_types.index)
            loop.body.add_op(offset_const)
            shifted = arith.AddIOp(iv, offset_const.result)
            loop.body.add_op(shifted)
            value_map = {iv: shifted.result}
            for op in body_ops:
                clone = op.clone(value_map)
                loop.body.add_op(clone)
        loop.body.add_op(affine_d.AffineYieldOp())
        loop.attributes["step"] = IntegerAttr(step * factor)
        loop.set_attr("unrolled", IntegerAttr(factor))


__all__ = ["AffineLoopTilePass", "AffineLoopUnrollPass"]
