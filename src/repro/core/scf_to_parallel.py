"""Convert eligible ``scf.for`` loops to ``scf.parallel`` (Section VI-A).

The paper describes this as "a very simple transformation pass that converts
appropriate scf.for loops to their scf.parallel loop counterparts", enabling
OpenMP via ``convert-scf-to-openmp``.  It deliberately does not support
reductions yet, so loops whose bodies read-modify-write a rank-0 memref (or
carry iteration arguments) are left untouched — exactly the limitation the
paper notes for the dot-product and sum benchmarks in Table III.
"""

from __future__ import annotations

from ..dialects import scf
from ..ir import types as ir_types
from ..ir.core import Operation
from ..ir.pass_manager import FunctionPass, register_pass

_LOOP_PARENTS = ("scf.for", "scf.parallel", "affine.for", "omp.wsloop")


def _is_outermost(loop: Operation) -> bool:
    return not any(a.name in _LOOP_PARENTS for a in loop.ancestors())


def _derives_from_block_argument(value) -> bool:
    """True when a value is (a cast of) a loop induction variable."""
    from ..ir.core import BlockArgument
    seen = 0
    while seen < 4:
        if isinstance(value, BlockArgument):
            return True
        op = getattr(value, "op", None)
        if op is None or op.name not in ("arith.index_cast", "arith.extsi",
                                         "arith.trunci", "arith.sitofp"):
            return False
        value = op.operands[0]
        seen += 1
    return False


def _has_reduction(loop: Operation) -> bool:
    """Conservatively detect read-modify-write of a location defined outside.

    Stores of (casts of) loop induction variables into the Fortran iteration
    variable are not reductions and are ignored."""
    for op in loop.walk():
        if op.name == "memref.store":
            memref_value = op.operands[1]
            if isinstance(memref_value.type, ir_types.MemRefType) and \
                    memref_value.type.rank == 0 and \
                    not _derives_from_block_argument(op.operands[0]):
                return True
    return False


def convert_loop_to_parallel(loop: scf.ForOp) -> bool:
    if loop.iter_args or _has_reduction(loop):
        return False
    parallel = scf.ParallelOp([loop.lower_bound], [loop.upper_bound], [loop.step])
    loop.parent.insert_before(loop, parallel)
    loop.induction_variable.replace_all_uses_with(parallel.induction_variables[0])
    for op in list(loop.body.ops):
        op.detach()
        if op.name == "scf.yield":
            op.drop_all_references()
            continue
        parallel.body.add_op(op)
    parallel.body.add_op(scf.YieldOp())
    loop.erase(check_uses=False)
    return True


@register_pass
class ScfForToParallelPass(FunctionPass):
    """``convert-scf-for-to-parallel``: parallelise outermost eligible loops."""

    NAME = "convert-scf-for-to-parallel"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.walk()):
            if op.name == "scf.for" and op.parent is not None and _is_outermost(op):
                convert_loop_to_parallel(op)


__all__ = ["ScfForToParallelPass", "convert_loop_to_parallel"]
