"""OpenACC lowering to the GPU dialect (Section VI-C).

MLIR provides no pass out of the ``acc`` dialect, so the paper develops one:

* every ``scf.for`` loop inside an ``acc.kernels`` region becomes an
  ``scf.parallel`` loop,
* the region contents are inlined (the existing
  ``convert-parallel-loops-to-gpu`` pass later turns the parallel loops into
  ``gpu.launch`` kernels),
* CUDA managed memory is assumed: ``acc.create`` / ``acc.copyin`` become
  ``gpu.host_register`` and ``acc.delete`` / ``acc.copyout`` become
  ``gpu.host_unregister``.
"""

from __future__ import annotations

from ..dialects import acc as acc_d
from ..dialects import gpu as gpu_d
from ..dialects import scf
from ..ir.core import Operation
from ..ir.pass_manager import FunctionPass, register_pass
from .scf_to_parallel import convert_loop_to_parallel


@register_pass
class ConvertAccToGpuPass(FunctionPass):
    """``convert-acc-to-gpu``: the paper's OpenACC lowering."""

    NAME = "convert-acc-to-gpu"

    def run_on_function(self, func: Operation) -> None:
        # data-movement clauses
        for op in list(func.walk()):
            if op.name in ("acc.create", "acc.copyin"):
                register = gpu_d.HostRegisterOp(op.operands[0])
                op.parent.insert_before(op, register)
                if op.results:
                    op.replace_all_uses_with([op.operands[0]])
                op.erase(check_uses=False)
            elif op.name in ("acc.delete", "acc.copyout"):
                unregister = gpu_d.HostUnregisterOp(op.operands[0])
                op.parent.insert_before(op, unregister)
                op.erase(check_uses=False)
        # kernels/data regions: parallelise contained loops, then inline
        for op in list(func.walk()):
            if op.name in ("acc.kernels", "acc.data"):
                self._lower_region(op)

    def _lower_region(self, op: Operation) -> None:
        # convert every directly nested scf.for into scf.parallel
        for inner in list(op.walk()):
            if inner.name == "scf.for" and inner.parent is not None:
                # only outermost loops within the region
                enclosing = [a for a in inner.ancestors()
                             if a.name in ("scf.for", "scf.parallel")]
                if not any(op.is_ancestor_of(a) or a is op for a in enclosing):
                    convert_loop_to_parallel(inner)
        # inline the region body before the op
        body = op.regions[0].blocks[0]
        terminator = body.terminator
        if terminator is not None:
            terminator.erase(check_uses=False)
        for inner in list(body.ops):
            inner.detach()
            op.parent.insert_before(op, inner)
        if op.results:
            op.replace_all_uses_with(list(op.operands[:len(op.results)]))
        op.erase(check_uses=False)


__all__ = ["ConvertAccToGpuPass"]
