"""The paper's primary contribution: Flang HLFIR/FIR -> standard MLIR flow.

Contains the Section V mapping (``fir_to_standard``), the paper's own
optimisation passes (static shape recovery, allocatable-descriptor load
hoisting, scf->affine promotion, affine super-vectorisation, tiling and
unrolling, scf->parallel, OpenACC->GPU), the pass pipelines of Listing 1 and
Figure 3, and the end-to-end driver (Figure 2).
"""

from .acc_to_gpu import ConvertAccToGpuPass
from .affine_transforms import AffineLoopTilePass, AffineLoopUnrollPass
from .affine_vectorize import AffineSuperVectorizePass, LoopVectorizer
from .alloca_scope import AllocaScopePass, wrap_in_alloca_scope
from .branch_fixup import BranchFixupPass, fixup_branches
from .driver import StandardFlowResult, StandardMLIRCompiler
from .fir_to_standard import (ConversionError, ConvertFirToStandardPass,
                              FirToStandardLowering, convert_fir_to_standard)
from .hoist_descriptor_loads import (HoistDescriptorLoadsPass,
                                     hoist_descriptor_loads)
from .pipelines import (BASE_PIPELINE, GPU_PIPELINE, OPENMP_PIPELINE,
                        OPTIMISE_PIPELINE, VECTORIZE_PIPELINE, base_pipeline,
                        gpu_pipeline, openmp_pipeline, optimise_pipeline,
                        to_llvm_pipeline)
from .scf_to_affine import ScfToAffinePass
from .scf_to_parallel import ScfForToParallelPass, convert_loop_to_parallel
from .static_shapes import StaticShapeRecoveryPass

__all__ = [
    "ConvertAccToGpuPass", "AffineLoopTilePass", "AffineLoopUnrollPass",
    "AffineSuperVectorizePass", "LoopVectorizer", "AllocaScopePass",
    "wrap_in_alloca_scope", "BranchFixupPass", "fixup_branches",
    "StandardFlowResult", "StandardMLIRCompiler", "ConversionError",
    "ConvertFirToStandardPass", "FirToStandardLowering",
    "convert_fir_to_standard", "HoistDescriptorLoadsPass",
    "hoist_descriptor_loads", "BASE_PIPELINE", "GPU_PIPELINE",
    "OPENMP_PIPELINE", "OPTIMISE_PIPELINE", "VECTORIZE_PIPELINE",
    "base_pipeline", "gpu_pipeline", "openmp_pipeline", "optimise_pipeline",
    "to_llvm_pipeline", "ScfToAffinePass", "ScfForToParallelPass",
    "convert_loop_to_parallel", "StaticShapeRecoveryPass",
]
