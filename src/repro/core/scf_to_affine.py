"""Promote ``scf.for`` loops to ``affine.for`` (Section VI).

The scf-for-loop-specialization pass proved ineffective for vectorisation, so
the paper raises eligible loops into the affine dialect instead, rewriting
``memref.load`` / ``memref.store`` inside them to ``affine.load`` /
``affine.store`` whose subscripts use the loop induction variables directly
(with optional constant offsets).  The affine passes (super-vectorisation,
tiling, unrolling) then apply.

A loop is promoted when its step is a constant and its bounds are either
constants or loop-invariant SSA index values (both representable as affine
bound maps).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dialects import affine as affine_d
from ..dialects import arith, memref as memref_d, scf
from ..ir import types as ir_types
from ..ir.attributes import AffineExpr, AffineMapAttr
from ..ir.core import Block, Operation, Value
from ..ir.pass_manager import FunctionPass, register_pass


def _constant_value(value: Value) -> Optional[int]:
    op = getattr(value, "op", None)
    if op is not None and op.name == "arith.constant":
        return int(op.get_attr("value").value)
    return None


def _bound_map(value: Value) -> Tuple[List[Value], AffineMapAttr]:
    const = _constant_value(value)
    if const is not None:
        return [], AffineMapAttr.constant_map(const)
    return [value], AffineMapAttr(1, 0, [AffineExpr.dim(0)])


class ScfToAffine:
    def __init__(self, func: Operation):
        self.func = func
        self.promoted = 0

    def run(self) -> int:
        changed = True
        while changed:
            changed = False
            for op in list(self.func.walk()):
                if op.name == "scf.for" and self._promote(op):
                    changed = True
                    self.promoted += 1
                    break
        return self.promoted

    def _promote(self, loop: scf.ForOp) -> bool:
        if loop.iter_args:
            return False
        step = _constant_value(loop.step)
        if step is None or step <= 0:
            return False
        lower_ops, lower_map = _bound_map(loop.lower_bound)
        upper_ops, upper_map = _bound_map(loop.upper_bound)
        body = Block(arg_types=[ir_types.index])
        new_loop = affine_d.AffineForOp(lower_ops, lower_map, upper_ops, upper_map,
                                        step=step, body=body)
        parent = loop.parent
        parent.insert_before(loop, new_loop)
        loop.induction_variable.replace_all_uses_with(body.args[0])
        for inner in list(loop.body.ops):
            inner.detach()
            if inner.name == "scf.yield":
                inner.drop_all_references()
                continue
            body.add_op(inner)
        body.add_op(affine_d.AffineYieldOp())
        loop.erase(check_uses=False)
        self._raise_memory_ops(new_loop)
        return True

    def _raise_memory_ops(self, loop: affine_d.AffineForOp) -> None:
        """memref.load/store whose indices are induction variables or
        IV +/- constant become affine.load/store with the offset encoded in
        the access map."""
        ivs = self._surrounding_ivs(loop)
        for op in list(loop.walk()):
            if op.name == "memref.load":
                memref_val, indices = op.operands[0], list(op.operands[1:])
                mapped = self._affine_indices(indices, ivs)
                if mapped is None:
                    continue
                operands, amap = mapped
                new = affine_d.AffineLoadOp(memref_val, operands, amap)
                op.parent.insert_before(op, new)
                op.replace_all_uses_with([new.results[0]])
                op.erase(check_uses=False)
            elif op.name == "memref.store":
                value, memref_val = op.operands[0], op.operands[1]
                indices = list(op.operands[2:])
                mapped = self._affine_indices(indices, ivs)
                if mapped is None:
                    continue
                operands, amap = mapped
                new = affine_d.AffineStoreOp(value, memref_val, operands, amap)
                op.parent.insert_before(op, new)
                op.erase(check_uses=False)

    def _surrounding_ivs(self, loop: affine_d.AffineForOp) -> List[Value]:
        ivs = [loop.induction_variable]
        for ancestor in loop.ancestors():
            if ancestor.name == "affine.for":
                ivs.append(ancestor.body.args[0])
        for inner in loop.walk():
            if inner.name == "affine.for" and inner is not loop:
                ivs.append(inner.body.args[0])
        return ivs

    def _affine_indices(self, indices: List[Value], ivs: List[Value]):
        """Build (operands, map) when every subscript is IV, IV±const or const."""
        operands: List[Value] = []
        exprs: List[AffineExpr] = []
        for idx in indices:
            expr = self._affine_expr(idx, ivs, operands)
            if expr is None:
                return None
            exprs.append(expr)
        return operands, AffineMapAttr(len(operands), 0, exprs)

    def _affine_expr(self, value: Value, ivs: List[Value],
                     operands: List[Value]) -> Optional[AffineExpr]:
        const = _constant_value(value)
        if const is not None:
            return AffineExpr.constant(const)
        if value in ivs:
            return self._dim_for(value, operands)
        defining = getattr(value, "op", None)
        if defining is not None and defining.name in ("arith.addi", "arith.subi"):
            lhs, rhs = defining.operands
            lhs_e = self._affine_expr(lhs, ivs, operands)
            rhs_e = self._affine_expr(rhs, ivs, operands)
            if lhs_e is None or rhs_e is None:
                return None
            if defining.name == "arith.addi":
                return lhs_e + rhs_e
            return lhs_e + (rhs_e * -1)
        if defining is not None and defining.name in ("arith.index_cast",
                                                      "arith.extsi", "arith.trunci"):
            # look through width/index conversions so the induction variable is
            # still recognised after Fortran's i32 subscript arithmetic
            return self._affine_expr(defining.operands[0], ivs, operands)
        if isinstance(value.type, (ir_types.IndexType, ir_types.IntegerType)):
            # a loop-invariant integer value: pass as a dimension operand
            return self._dim_for(value, operands)
        return None

    @staticmethod
    def _dim_for(value: Value, operands: List[Value]) -> AffineExpr:
        for i, existing in enumerate(operands):
            if existing is value:
                return AffineExpr.dim(i)
        operands.append(value)
        return AffineExpr.dim(len(operands) - 1)


@register_pass
class ScfToAffinePass(FunctionPass):
    """``raise-scf-to-affine``: promote scf.for loops into the affine dialect."""

    NAME = "raise-scf-to-affine"

    def run_on_function(self, func: Operation) -> None:
        ScfToAffine(func).run()


__all__ = ["ScfToAffinePass", "ScfToAffine"]
