"""The paper's core contribution: lowering Flang's HLFIR/FIR IR to the
standard MLIR dialects (Section V).

The transformation intercepts the combined HLFIR + FIR IR produced by Flang's
frontend and rebuilds it using only standard dialects:

* **control structures** (V-A): ``fir.if`` -> ``scf.if``, ``fir.do_loop`` ->
  ``scf.for`` (reversing bounds for negative steps, inserting a runtime
  ``scf.if`` when the step sign is unknown), ``fir.iterate_while`` ->
  ``scf.while`` with an explicit loop counter and ``arith.andi`` of the exit
  flag, unstructured branches via the intermediate ``tmpbr`` dialect fixed up
  afterwards;
* **memory** (V-B): variables become ``memref``s — scalars are rank-0
  memrefs, intent(in) scalar arguments are passed by value, explicit-shape
  arrays are (possibly dynamically sized) memrefs, allocatable arrays become
  memref-of-memref with ``memref.alloc``/``memref.dealloc``; Fortran 1-based
  indices are rebased with an ``arith.subi``; slices become
  ``memref.subview``; globals use ``memref.global`` / ``llvm.mlir.global``;
* **other constructs** (V-C): transformational intrinsics lower to ``linalg``
  operations (Listing 8), derived-type variables are split into one memref
  per member.

The pass is written in the builder/translation style of the xDSL prototype:
a fresh module is produced rather than rewriting in place, because almost
every type in the function signatures changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import acc as acc_d
from ..dialects import arith, cf, fir, hlfir, linalg
from ..dialects import func as func_d
from ..dialects import llvm
from ..dialects import math as math_d
from ..dialects import memref as memref_d
from ..dialects import omp as omp_d
from ..dialects import scf, tmpbr
from ..dialects.builtin import ModuleOp
from ..ir import types as ir_types
from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.builder import Builder, InsertPoint
from ..ir.core import Block, IRError, Operation, Region, Value
from ..ir.pass_manager import Pass, register_pass


class ConversionError(Exception):
    pass


# ---------------------------------------------------------------------------
# Bindings: how a Fortran variable is represented in the standard dialects
# ---------------------------------------------------------------------------


@dataclass
class VarBinding:
    """Standard-MLIR representation of one Fortran variable."""

    kind: str                  # "ssa" | "memref" | "boxed"
    value: Value               # the scalar value / memref / outer memref
    element_type: ir_types.Type
    rank: int = 0
    name: str = ""
    #: lower bound per dimension (Fortran default 1)
    lower_bounds: Tuple[int, ...] = ()


@dataclass
class ElementRef:
    """A pending array-element (or component/section) reference produced by
    ``hlfir.designate`` — materialised lazily at the load/store site."""

    binding: VarBinding
    indices: List[Value] = field(default_factory=list)   # already zero-based
    is_section: bool = False
    section_value: Optional[Value] = None                # memref.subview result


# ---------------------------------------------------------------------------
# Type conversion helpers
# ---------------------------------------------------------------------------


def scalar_type(t: ir_types.Type) -> ir_types.Type:
    if isinstance(t, fir.LogicalType):
        return ir_types.i1
    return t


def sequence_to_memref(seq: fir.SequenceType) -> ir_types.MemRefType:
    # Fortran arrays are column-major; memrefs are row-major.  The mapping
    # reverses the dimension order so the contiguous (first) Fortran dimension
    # remains the contiguous (last) memref dimension.
    return ir_types.MemRefType(list(reversed(seq.shape)), scalar_type(seq.element_type))


def convert_argument_type(t: ir_types.Type, intent: str = "") -> ir_types.Type:
    """Converted type of a function argument (Section V-B)."""
    if isinstance(t, fir.ReferenceType):
        inner = t.element_type
        if isinstance(inner, fir.BoxType):
            heap = fir.dereferenced_type(inner)
            seq = fir.dereferenced_type(heap)
            if isinstance(seq, fir.SequenceType):
                return ir_types.MemRefType([], sequence_to_memref(seq))
            return ir_types.MemRefType([], ir_types.MemRefType([], scalar_type(seq)))
        if isinstance(inner, fir.SequenceType):
            return sequence_to_memref(inner)
        if intent == "in":
            return scalar_type(inner)
        return ir_types.MemRefType([], scalar_type(inner))
    if isinstance(t, fir.BoxType):
        seq = fir.dereferenced_type(t)
        if isinstance(seq, fir.SequenceType):
            return sequence_to_memref(seq)
        return ir_types.MemRefType([], scalar_type(seq))
    return scalar_type(t)


def convert_value_type(t: ir_types.Type) -> ir_types.Type:
    if isinstance(t, fir.LogicalType):
        return ir_types.i1
    if isinstance(t, fir.SequenceType):
        return sequence_to_memref(t)
    if isinstance(t, (fir.ReferenceType, fir.HeapType, fir.PointerType, fir.BoxType)):
        return convert_argument_type(t if isinstance(t, fir.ReferenceType)
                                     else fir.ReferenceType(fir.dereferenced_type(t)))
    return t


# ---------------------------------------------------------------------------
# The translator
# ---------------------------------------------------------------------------


class FirToStandardLowering:
    """Translates one HLFIR/FIR module into a standard-dialect module."""

    def __init__(self, source_module: ModuleOp):
        self.source = source_module
        self.target = ModuleOp(name="standard_module")
        self.builder = Builder()
        # per-function state
        self.value_map: Dict[Value, Value] = {}
        self.bindings: Dict[Value, VarBinding] = {}
        self.element_refs: Dict[Value, ElementRef] = {}
        self.block_index_map: Dict[Block, int] = {}
        self.function_signatures: Dict[str, ir_types.FunctionType] = {}
        self.function_arg_kinds: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ driver
    def run(self) -> ModuleOp:
        self._collect_signatures()
        for op in self.source.body.ops:
            if op.name == "func.func":
                self._translate_function(op)
            elif op.name == "fir.global":
                self._translate_global(op)
            else:
                self.target.add(op.clone())
        return self.target

    # --------------------------------------------------------------- signatures
    def _arg_intents(self, func: Operation) -> List[str]:
        attr = func.get_attr("arg_intents")
        if attr is None:
            return []
        return [a.value for a in attr]

    def _collect_signatures(self) -> None:
        for op in self.source.body.ops:
            if op.name != "func.func":
                continue
            name = op.get_attr("sym_name").value
            ftype = op.get_attr("function_type").type
            intents = self._arg_intents(op)
            new_inputs = []
            kinds = []
            for i, t in enumerate(ftype.inputs):
                intent = intents[i] if i < len(intents) else ""
                new_t = convert_argument_type(t, intent)
                new_inputs.append(new_t)
                if isinstance(new_t, ir_types.MemRefType):
                    if new_t.rank == 0 and isinstance(new_t.element_type, ir_types.MemRefType):
                        kinds.append("boxed")
                    else:
                        kinds.append("memref")
                else:
                    kinds.append("ssa")
            new_results = [scalar_type(t) for t in ftype.results]
            self.function_signatures[name] = ir_types.FunctionType(new_inputs, new_results)
            self.function_arg_kinds[name] = kinds

    # ----------------------------------------------------------------- functions
    def _translate_function(self, func: Operation) -> None:
        name = func.get_attr("sym_name").value
        new_type = self.function_signatures[name]
        new_func = func_d.FuncOp(name, new_type,
                                 create_entry_block=not func.regions[0].is_empty()
                                 or bool(func.regions[0].blocks))
        for key in ("arg_names", "arg_intents"):
            if func.has_attr(key):
                new_func.set_attr(key, func.get_attr(key))
        self.target.add(new_func)
        if not func.regions[0].blocks:
            return

        self.value_map = {}
        self.bindings = {}
        self.element_refs = {}
        self.block_index_map = {}

        src_region = func.regions[0]
        dst_region = new_func.regions[0]
        # create all destination blocks up-front (branches may be forward)
        dst_blocks: List[Block] = [new_func.entry_block]
        for extra in src_region.blocks[1:]:
            block = Block(arg_types=[convert_value_type(a.type) for a in extra.args])
            dst_region.add_block(block)
            dst_blocks.append(block)
        for i, src_block in enumerate(src_region.blocks):
            self.block_index_map[src_block] = i
        # entry block arguments
        entry_src = src_region.blocks[0]
        kinds = self.function_arg_kinds[name]
        for src_arg, dst_arg, kind in zip(entry_src.args, new_func.entry_block.args, kinds):
            self.value_map[src_arg] = dst_arg
        for src_block, dst_block in zip(src_region.blocks[1:], dst_blocks[1:]):
            for src_arg, dst_arg in zip(src_block.args, dst_block.args):
                self.value_map[src_arg] = dst_arg
        # translate block by block
        for src_block, dst_block in zip(src_region.blocks, dst_blocks):
            self.builder.set_insertion_point_to_end(dst_block)
            for op in src_block.ops:
                self._translate_op(op)
        # fix up tmpbr branches into real cf branches
        from .branch_fixup import fixup_branches
        fixup_branches(new_func)

    def _translate_global(self, op: Operation) -> None:
        sym = op.get_attr("sym_name").value
        gtype = op.get_attr("type").type
        if isinstance(gtype, fir.SequenceType):
            self.target.add(memref_d.GlobalOp(sym, sequence_to_memref(gtype),
                                              initial_value=op.get_attr("initial_value")))
        else:
            self.target.add(llvm.GlobalOp(sym, scalar_type(gtype),
                                          value=op.get_attr("initial_value")))

    # ------------------------------------------------------------------ utilities
    def _insert(self, op: Operation) -> Operation:
        return self.builder.insert(op)

    def _map(self, value: Value) -> Value:
        if value in self.value_map:
            return self.value_map[value]
        raise ConversionError(f"value {value!r} has no translation")

    def _constant_index(self, value: int) -> Value:
        return self._insert(arith.ConstantOp(value, ir_types.index)).result

    def _to_index(self, value: Value) -> Value:
        if isinstance(value.type, ir_types.IndexType):
            return value
        return self._insert(arith.IndexCastOp(value, ir_types.index)).result

    def _cast(self, value: Value, target: ir_types.Type) -> Value:
        src = value.type
        if src == target:
            return value
        if isinstance(src, ir_types.IndexType) or isinstance(target, ir_types.IndexType):
            if isinstance(src, ir_types.FloatType):
                as_int = self._insert(arith.FPToSIOp(value, ir_types.i64)).result
                return self._insert(arith.IndexCastOp(as_int, target)).result
            if isinstance(target, ir_types.FloatType):
                as_int = self._insert(arith.IndexCastOp(value, ir_types.i64)).result
                return self._insert(arith.SIToFPOp(as_int, target)).result
            return self._insert(arith.IndexCastOp(value, target)).result
        src_f = isinstance(src, ir_types.FloatType)
        dst_f = isinstance(target, ir_types.FloatType)
        if src_f and dst_f:
            cls = arith.ExtFOp if target.width > src.width else arith.TruncFOp
            return self._insert(cls(value, target)).result
        if src_f and not dst_f:
            return self._insert(arith.FPToSIOp(value, target)).result
        if not src_f and dst_f:
            return self._insert(arith.SIToFPOp(value, target)).result
        if src.width == target.width:
            return value
        cls = arith.ExtSIOp if target.width > src.width else arith.TruncIOp
        if src.width == 1:
            cls = arith.ExtUIOp
        return self._insert(cls(value, target)).result

    # -- binding helpers ----------------------------------------------------------
    def _binding_for(self, old_value: Value) -> Optional[VarBinding]:
        return self.bindings.get(old_value)

    def _array_memref(self, old_value: Value) -> Value:
        """The memref holding the array data behind an HLFIR/FIR array value
        (loading the outer memref of an allocatable when necessary)."""
        binding = self._binding_for(old_value)
        if binding is not None:
            if binding.kind == "boxed":
                return self._insert(memref_d.LoadOp(binding.value, [])).result
            return binding.value
        if old_value in self.element_refs:
            ref = self.element_refs[old_value]
            if ref.is_section and ref.section_value is not None:
                return ref.section_value
        mapped = self.value_map.get(old_value)
        if mapped is not None and isinstance(mapped.type, ir_types.MemRefType):
            return mapped
        raise ConversionError("cannot find array storage for value")

    # =====================================================================
    # Operation dispatch
    # =====================================================================
    def _translate_op(self, op: Operation) -> None:
        handler = getattr(self, "_op_" + op.name.replace(".", "_"), None)
        if handler is not None:
            handler(op)
            return
        dialect = op.dialect
        if dialect in ("arith", "math"):
            self._clone_simple(op)
            return
        if dialect == "omp":
            self._translate_region_op(op, omp_d)
            return
        if dialect == "acc":
            self._translate_region_op(op, acc_d)
            return
        raise ConversionError(f"no translation for operation {op.name}")

    def _clone_simple(self, op: Operation) -> None:
        """Clone an op whose semantics carry over unchanged (arith/math)."""
        new_operands = [self._map(v) for v in op.operands]
        new = Operation.__new__(type(op))
        Operation.__init__(new, operands=new_operands,
                           result_types=[convert_value_type(r.type) for r in op.results],
                           attributes=dict(op.attributes), name=op.name)
        self._insert(new)
        for old, newr in zip(op.results, new.results):
            self.value_map[old] = newr

    def _translate_region_op(self, op: Operation, dialect_module) -> None:
        """Translate an omp/acc region op, keeping its structure (the paper
        conserves the omp and acc dialects) while converting its contents."""
        new_operands = []
        for v in op.operands:
            binding = self._binding_for(v)
            if binding is not None:
                new_operands.append(binding.value if binding.kind != "boxed"
                                    else self._insert(memref_d.LoadOp(binding.value, [])).result)
            else:
                new_operands.append(self._map(v))
        new = Operation.__new__(type(op))
        Operation.__init__(new, operands=new_operands,
                           result_types=[convert_value_type(r.type) for r in op.results],
                           attributes=dict(op.attributes),
                           regions=len(op.regions), name=op.name)
        self._insert(new)
        for old, newr in zip(op.results, new.results):
            self.value_map[old] = newr
        for old_region, new_region in zip(op.regions, new.regions):
            for old_block in old_region.blocks:
                new_block = Block(arg_types=[convert_value_type(a.type)
                                             for a in old_block.args])
                new_region.add_block(new_block)
                for oa, na in zip(old_block.args, new_block.args):
                    self.value_map[oa] = na
                with self.builder.at(InsertPoint.at_end(new_block)):
                    for inner in old_block.ops:
                        self._translate_op(inner)

    # ---------------------------------------------------------------- declarations
    def _op_hlfir_declare(self, op: hlfir.DeclareOp) -> None:
        memref_value = op.memref
        name = op.uniq_name
        storage_type = memref_value.type
        inner = fir.dereferenced_type(storage_type)
        fortran_attrs = op.fortran_attrs

        # dummy argument?
        mapped = self.value_map.get(memref_value)
        if mapped is not None and not isinstance(getattr(memref_value, "op", None),
                                                 (fir.AllocaOp, fir.AddressOfOp)):
            binding = self._bind_existing(mapped, inner, name)
        elif isinstance(inner, fir.BoxType):
            # allocatable / pointer local: outer memref on the stack
            heap = fir.dereferenced_type(inner)
            seq = fir.dereferenced_type(heap)
            inner_memref = sequence_to_memref(seq) if isinstance(seq, fir.SequenceType) \
                else ir_types.MemRefType([], scalar_type(seq))
            outer = self._insert(memref_d.AllocaOp(
                ir_types.MemRefType([], inner_memref)))
            binding = VarBinding(kind="boxed", value=outer.results[0],
                                 element_type=inner_memref.element_type
                                 if isinstance(inner_memref, ir_types.MemRefType)
                                 else inner_memref,
                                 rank=inner_memref.rank, name=name)
        elif isinstance(inner, fir.SequenceType):
            memref_type = sequence_to_memref(inner)
            dynamic_sizes = []
            alloca_src = getattr(memref_value, "op", None)
            if isinstance(alloca_src, fir.AllocaOp) and alloca_src.operands:
                # dynamic extents in Fortran order -> reversed for the memref
                dynamic_sizes = [self._to_index(self._map(v))
                                 for v in reversed(alloca_src.operands)]
            alloca = self._insert(memref_d.AllocaOp(memref_type, dynamic_sizes))
            binding = VarBinding(kind="memref", value=alloca.results[0],
                                 element_type=memref_type.element_type,
                                 rank=memref_type.rank, name=name)
        elif isinstance(inner, fir.RecordType):
            self._declare_derived(op, inner, name)
            return
        else:
            elem = scalar_type(inner)
            alloca = self._insert(memref_d.AllocaOp(ir_types.MemRefType([], elem)))
            binding = VarBinding(kind="memref", value=alloca.results[0],
                                 element_type=elem, rank=0, name=name)
        for res in op.results:
            self.bindings[res] = binding
            self.value_map[res] = binding.value

    def _bind_existing(self, mapped: Value, inner, name: str) -> VarBinding:
        """Bind a declare whose storage is a function argument."""
        t = mapped.type
        if isinstance(t, ir_types.MemRefType):
            if t.rank == 0 and isinstance(t.element_type, ir_types.MemRefType):
                return VarBinding(kind="boxed", value=mapped,
                                  element_type=t.element_type.element_type,
                                  rank=t.element_type.rank, name=name)
            if t.rank == 0:
                return VarBinding(kind="memref", value=mapped,
                                  element_type=t.element_type, rank=0, name=name)
            return VarBinding(kind="memref", value=mapped,
                              element_type=t.element_type, rank=t.rank, name=name)
        return VarBinding(kind="ssa", value=mapped, element_type=t, rank=0, name=name)

    def _declare_derived(self, op: hlfir.DeclareOp, record: fir.RecordType,
                         name: str) -> None:
        """Derived-type variables get one memref per member (Section V-C)."""
        member_bindings: Dict[str, VarBinding] = {}
        for member, mtype in record.members:
            if isinstance(mtype, fir.SequenceType):
                memref_type = sequence_to_memref(mtype)
            else:
                memref_type = ir_types.MemRefType([], scalar_type(mtype))
            alloca = self._insert(memref_d.AllocaOp(memref_type))
            member_bindings[member] = VarBinding(
                kind="memref", value=alloca.results[0],
                element_type=memref_type.element_type, rank=memref_type.rank,
                name=f"{name}%{member}")
        binding = VarBinding(kind="memref", value=list(member_bindings.values())[0].value
                             if member_bindings else None,
                             element_type=ir_types.f64, rank=0, name=name)
        binding.members = member_bindings  # type: ignore[attr-defined]
        for res in op.results:
            self.bindings[res] = binding
            self.value_map[res] = binding.value

    def _op_fir_alloca(self, op: fir.AllocaOp) -> None:
        # handled when the corresponding hlfir.declare is translated; an
        # alloca without a declare (compiler temporary) becomes a 0-d memref
        uses = op.results[0].users()
        if any(isinstance(u, hlfir.DeclareOp) for u in uses):
            self.value_map[op.results[0]] = op.results[0]  # placeholder
            return
        elem = scalar_type(fir.element_type_of(op.results[0].type))
        alloca = self._insert(memref_d.AllocaOp(ir_types.MemRefType([], elem)))
        self.bindings[op.results[0]] = VarBinding(kind="memref", value=alloca.results[0],
                                                  element_type=elem, rank=0,
                                                  name=op.get_attr("bindc_name").value
                                                  if op.get_attr("bindc_name") else "tmp")
        self.value_map[op.results[0]] = alloca.results[0]

    def _op_fir_shape(self, op: fir.ShapeOp) -> None:
        # shapes are consumed structurally (by declares/emboxes); nothing to emit
        self.value_map[op.results[0]] = self._map(op.operands[0]) if op.operands else None

    def _op_fir_shape_shift(self, op) -> None:
        self.value_map[op.results[0]] = self._map(op.operands[0]) if op.operands else None

    def _op_fir_address_of(self, op: fir.AddressOfOp) -> None:
        gtype = op.results[0].type
        inner = fir.dereferenced_type(gtype)
        if isinstance(inner, fir.SequenceType):
            new = self._insert(memref_d.GetGlobalOp(op.symbol, sequence_to_memref(inner)))
            self.value_map[op.results[0]] = new.results[0]
            self.bindings[op.results[0]] = VarBinding(
                kind="memref", value=new.results[0],
                element_type=scalar_type(inner.element_type), rank=inner.rank,
                name=op.symbol)
        else:
            addr = self._insert(llvm.AddressOfOp(op.symbol))
            self.value_map[op.results[0]] = addr.results[0]
            self.bindings[op.results[0]] = VarBinding(
                kind="global_scalar", value=addr.results[0],
                element_type=scalar_type(inner), rank=0, name=op.symbol)

    # ------------------------------------------------------------------ memory ops
    def _op_fir_load(self, op: fir.LoadOp) -> None:
        src = op.memref
        binding = self._binding_for(src)
        if binding is not None:
            if binding.kind == "ssa":
                self.value_map[op.results[0]] = binding.value
                return
            if binding.kind == "boxed":
                loaded = self._insert(memref_d.LoadOp(binding.value, []))
                self.value_map[op.results[0]] = loaded.results[0]
                return
            if binding.kind == "global_scalar":
                loaded = self._insert(llvm.LoadOp(binding.value, binding.element_type))
                self.value_map[op.results[0]] = loaded.results[0]
                return
            if binding.rank == 0:
                loaded = self._insert(memref_d.LoadOp(binding.value, []))
                self.value_map[op.results[0]] = loaded.results[0]
                return
            # loading a whole array value: the memref itself represents it
            self.value_map[op.results[0]] = binding.value
            return
        if src in self.element_refs:
            ref = self.element_refs[src]
            value = self._load_element(ref)
            self.value_map[op.results[0]] = value
            return
        mapped = self._map(src)
        if isinstance(mapped.type, ir_types.MemRefType):
            loaded = self._insert(memref_d.LoadOp(mapped, []))
            self.value_map[op.results[0]] = loaded.results[0]
        else:
            self.value_map[op.results[0]] = mapped

    def _op_fir_store(self, op: fir.StoreOp) -> None:
        value = self._map(op.value)
        dest = op.memref
        self._store_to(dest, value)

    def _store_to(self, dest: Value, value: Value) -> None:
        binding = self._binding_for(dest)
        if binding is not None:
            if binding.kind == "ssa":
                raise ConversionError(
                    f"store to an intent(in) by-value argument '{binding.name}'")
            if binding.kind == "boxed" and isinstance(value.type, ir_types.MemRefType):
                self._insert(memref_d.StoreOp(value, binding.value, []))
                return
            if binding.kind == "global_scalar":
                self._insert(llvm.StoreOp(value, binding.value))
                return
            if binding.rank == 0:
                value = self._cast(value, binding.element_type)
                self._insert(memref_d.StoreOp(value, binding.value, []))
                return
            raise ConversionError("whole-array store requires hlfir.assign")
        if dest in self.element_refs:
            ref = self.element_refs[dest]
            self._store_element(ref, value)
            return
        mapped = self._map(dest)
        if isinstance(mapped.type, ir_types.MemRefType):
            value = self._cast(value, mapped.type.element_type)
            self._insert(memref_d.StoreOp(value, mapped, []))
            return
        raise ConversionError("cannot translate store destination")

    def _load_element(self, ref: ElementRef) -> Value:
        memref_val = self._element_base(ref)
        return self._insert(memref_d.LoadOp(memref_val, ref.indices)).results[0]

    def _store_element(self, ref: ElementRef, value: Value) -> None:
        memref_val = self._element_base(ref)
        value = self._cast(value, memref_val.type.element_type)
        self._insert(memref_d.StoreOp(value, memref_val, ref.indices))

    def _element_base(self, ref: ElementRef) -> Value:
        binding = ref.binding
        if binding.kind == "boxed":
            return self._insert(memref_d.LoadOp(binding.value, [])).results[0]
        return binding.value

    # ----------------------------------------------------------------- designate
    def _op_hlfir_designate(self, op: hlfir.DesignateOp) -> None:
        base = op.memref
        binding = self._binding_for(base)
        if binding is None:
            raise ConversionError("designate on a value without a variable binding")
        if op.component is not None:
            members = getattr(binding, "members", None)
            if members is None or op.component not in members:
                raise ConversionError(
                    f"unknown derived-type component {op.component}")
            member_binding = members[op.component]
            self.bindings[op.results[0]] = member_binding
            self.value_map[op.results[0]] = member_binding.value
            return
        if op.triplets:
            self._designate_section(op, binding)
            return
        # element access: Fortran (column-major, 1-based) indices become
        # reversed, zero-based memref indices
        one = self._constant_index(1)
        zero_based = []
        for idx in op.indices:
            v = self._to_index(self._map(idx))
            zero_based.append(self._insert(arith.SubIOp(v, one)).result)
        zero_based.reverse()
        self.element_refs[op.results[0]] = ElementRef(binding=binding,
                                                      indices=zero_based)
        self.value_map[op.results[0]] = binding.value

    def _designate_section(self, op: hlfir.DesignateOp, binding: VarBinding) -> None:
        """Array sections become memref.subview (shared storage, no copy)."""
        base = self._element_base(ElementRef(binding=binding))
        rank = binding.rank
        one = self._constant_index(1)
        offsets: List[Value] = []
        sizes: List[Value] = []
        strides: List[Value] = []
        triplets = list(op.triplets)
        for d in range(rank):
            lo, hi, st = triplets[3 * d: 3 * d + 3]
            lo_v = self._to_index(self._map(lo))
            hi_v = self._to_index(self._map(hi))
            st_v = self._to_index(self._map(st))
            offsets.append(self._insert(arith.SubIOp(lo_v, one)).result)
            span = self._insert(arith.SubIOp(hi_v, lo_v)).result
            span1 = self._insert(arith.AddIOp(span, one)).result
            sizes.append(self._insert(arith.MaxSIOp(
                span1, self._constant_index(0))).result)
            strides.append(st_v)
        offsets.reverse()
        sizes.reverse()
        strides.reverse()
        subview = self._insert(memref_d.SubViewOp(base, offsets, sizes, strides))
        self.element_refs[op.results[0]] = ElementRef(binding=binding, is_section=True,
                                                      section_value=subview.results[0])
        self.value_map[op.results[0]] = subview.results[0]

    # -------------------------------------------------------------------- assign
    def _op_hlfir_assign(self, op: hlfir.AssignOp) -> None:
        rhs_old, lhs_old = op.rhs, op.lhs
        lhs_binding = self._binding_for(lhs_old)
        lhs_ref = self.element_refs.get(lhs_old)
        rhs = self.value_map.get(rhs_old)
        # whole-array targets
        if lhs_ref is None and lhs_binding is not None and lhs_binding.rank > 0:
            target = self._element_base(ElementRef(binding=lhs_binding))
            if rhs is not None and isinstance(rhs.type, ir_types.MemRefType):
                self._insert(linalg.CopyOp(rhs, target))
                return
            value = self._cast(self._map(rhs_old), lhs_binding.element_type)
            self._insert(linalg.FillOp(value, target))
            return
        # element or scalar target
        value = self._map(rhs_old)
        if lhs_ref is not None:
            self._store_element(lhs_ref, value)
            return
        self._store_to(lhs_old, value)

    # ------------------------------------------------------------ allocatables
    def _op_fir_allocmem(self, op: fir.AllocMemOp) -> None:
        in_type = op.in_type
        if isinstance(in_type, fir.SequenceType):
            memref_type = ir_types.MemRefType([ir_types.DYNAMIC] * in_type.rank,
                                              scalar_type(in_type.element_type))
            sizes = [self._to_index(self._map(v)) for v in reversed(op.operands)]
        else:
            memref_type = ir_types.MemRefType([], scalar_type(in_type))
            sizes = []
        alloc = self._insert(memref_d.AllocOp(memref_type, sizes))
        self.value_map[op.results[0]] = alloc.results[0]

    def _op_fir_embox(self, op: fir.EmboxOp) -> None:
        self.value_map[op.results[0]] = self._map(op.operands[0])

    def _op_fir_box_addr(self, op: fir.BoxAddrOp) -> None:
        self.value_map[op.results[0]] = self._map(op.operands[0])

    def _op_fir_box_dims(self, op: fir.BoxDimsOp) -> None:
        box = self._map(op.operands[0])
        dim = self._map(op.operands[1])
        # Fortran dimension d corresponds to memref dimension rank-1-d
        rank = box.type.rank if isinstance(box.type, ir_types.MemRefType) else 1
        rank_c = self._constant_index(rank - 1)
        rev = self._insert(arith.SubIOp(rank_c, self._to_index(dim))).result
        size = self._insert(memref_d.DimOp(box, rev))
        one = self._constant_index(1)
        self.value_map[op.results[0]] = one
        self.value_map[op.results[1]] = size.results[0]
        self.value_map[op.results[2]] = one

    def _op_fir_freemem(self, op: fir.FreeMemOp) -> None:
        value = op.operands[0]
        binding = self._binding_for(value)
        if binding is not None and binding.kind == "boxed":
            inner = self._insert(memref_d.LoadOp(binding.value, [])).results[0]
            self._insert(memref_d.DeallocOp(inner))
            return
        self._insert(memref_d.DeallocOp(self._map(value)))

    # --------------------------------------------------------------- conversions
    def _op_fir_convert(self, op: fir.ConvertOp) -> None:
        value = self._map(op.operands[0])
        target = convert_value_type(op.results[0].type)
        if isinstance(value.type, ir_types.MemRefType) or \
                isinstance(target, ir_types.MemRefType):
            self.value_map[op.results[0]] = value
            return
        self.value_map[op.results[0]] = self._cast(value, target)

    # ------------------------------------------------------------- control flow
    def _op_fir_result(self, op: fir.ResultOp) -> None:
        self._insert(scf.YieldOp([self._map(v) for v in op.operands]))

    def _op_fir_if(self, op: fir.IfOp) -> None:
        condition = self._map(op.condition)
        new_if = self._insert(scf.IfOp(condition,
                                       [convert_value_type(r.type) for r in op.results]))
        for old, new in zip(op.results, new_if.results):
            self.value_map[old] = new
        for old_block, new_block in ((op.then_block, new_if.then_block),
                                     (op.else_block, new_if.else_block)):
            with self.builder.at(InsertPoint.at_end(new_block)):
                for inner in old_block.ops:
                    self._translate_op(inner)
                if new_block.terminator is None:
                    self._insert(scf.YieldOp())

    def _positive_range(self, lower: Value, upper: Value, step: Value):
        """Exclusive upper bound for an inclusive Fortran range with positive step."""
        diff = self._insert(arith.SubIOp(upper, lower)).result
        trips = self._insert(arith.FloorDivSIOp(diff, step)).result
        one = self._constant_index(1)
        trips1 = self._insert(arith.AddIOp(trips, one)).result
        span = self._insert(arith.MulIOp(trips1, step)).result
        return self._insert(arith.AddIOp(lower, span)).result

    def _op_fir_do_loop(self, op: fir.DoLoopOp) -> None:
        lower = self._to_index(self._map(op.lower_bound))
        upper = self._to_index(self._map(op.upper_bound))
        step = self._to_index(self._map(op.step))
        step_const = self._constant_of(op.step)
        iter_inits = [self._map(v) for v in op.iter_args]

        if step_const is not None and step_const < 0:
            self._emit_reversed_for(op, lower, upper, step, iter_inits)
            return
        if step_const is None:
            # unknown sign: runtime check (scf.if) choosing between the two forms
            zero = self._constant_index(0)
            is_positive = self._insert(arith.CmpIOp("sgt", step, zero)).result
            outer_if = self._insert(scf.IfOp(is_positive,
                                             [ir_types.index] * len(op.results)))
            with self.builder.at(InsertPoint.at_end(outer_if.then_block)):
                results = self._emit_forward_for(op, lower, upper, step, iter_inits)
                self._insert(scf.YieldOp(results))
            with self.builder.at(InsertPoint.at_end(outer_if.else_block)):
                results = self._emit_reversed_for(op, lower, upper, step, iter_inits,
                                                  yield_results=True)
                self._insert(scf.YieldOp(results))
            for old, new in zip(op.results, outer_if.results):
                self.value_map[old] = new
            return
        results = self._emit_forward_for(op, lower, upper, step, iter_inits)
        for old, new in zip(op.results, results):
            self.value_map[old] = new

    def _constant_of(self, value: Value) -> Optional[int]:
        op = getattr(value, "op", None)
        if op is not None and op.name == "arith.constant":
            return int(op.get_attr("value").value)
        return None

    def _emit_forward_for(self, op: fir.DoLoopOp, lower, upper, step, iter_inits):
        upper_excl = self._positive_range(lower, upper, step)
        loop = self._insert(scf.ForOp(lower, upper_excl, step, iter_inits))
        self._fill_loop_body(op, loop, loop.induction_variable,
                             list(loop.region_iter_args))
        # fir.do_loop's first result is the final induction value
        final_iv = upper_excl
        return [final_iv] + list(loop.results)

    def _emit_reversed_for(self, op: fir.DoLoopOp, lower, upper, step, iter_inits,
                           yield_results: bool = False):
        """Negative step: reverse the bounds, use |step|, and compute the
        down-counting index inside the body (Section V-A)."""
        zero = self._constant_index(0)
        abs_step = self._insert(arith.SubIOp(zero, step)).result
        # trip count over the downward range
        diff = self._insert(arith.SubIOp(lower, upper)).result
        trips = self._insert(arith.FloorDivSIOp(diff, abs_step)).result
        one = self._constant_index(1)
        trips1 = self._insert(arith.AddIOp(trips, one)).result
        span = self._insert(arith.MulIOp(trips1, abs_step)).result
        new_lower = upper
        new_upper = self._insert(arith.AddIOp(upper, span)).result
        loop = self._insert(scf.ForOp(new_lower, new_upper, abs_step, iter_inits))
        # downward index = lower + upper - iv
        with self.builder.at(InsertPoint.at_end(loop.body)):
            total = self._insert(arith.AddIOp(lower, upper)).result
            down = self._insert(arith.SubIOp(total, loop.induction_variable)).result
        self._fill_loop_body(op, loop, down, list(loop.region_iter_args),
                             skip_existing=True)
        final_iv = upper
        return [final_iv] + list(loop.results)

    def _fill_loop_body(self, op: fir.DoLoopOp, loop: scf.ForOp, iv: Value,
                        iter_values: List[Value], skip_existing: bool = False) -> None:
        self.value_map[op.induction_variable] = iv
        for old, new in zip(op.body.args[1:], iter_values):
            self.value_map[old] = new
        with self.builder.at(InsertPoint.at_end(loop.body)):
            for inner in op.body.ops:
                if inner.name == "fir.result":
                    self._insert(scf.YieldOp([self._map(v) for v in inner.operands]))
                else:
                    self._translate_op(inner)
            if loop.body.terminator is None:
                self._insert(scf.YieldOp())
        if not skip_existing:
            for old, new in zip(op.results[1:], loop.results):
                self.value_map[old] = new

    def _op_fir_iterate_while(self, op: fir.IterateWhileOp) -> None:
        """fir.iterate_while -> scf.while with an explicit counter and an
        arith.andi of (still-in-range) and (ok flag)."""
        lower = self._to_index(self._map(op.lower_bound))
        upper = self._to_index(self._map(op.upper_bound))
        step = self._to_index(self._map(op.step))
        initial_ok = self._map(op.initial_ok)
        iter_inits = [self._map(v) for v in op.iter_args]
        carried_types = [ir_types.index, ir_types.i1] + [v.type for v in iter_inits]

        while_op = self._insert(scf.WhileOp([lower, initial_ok, *iter_inits],
                                            carried_types))
        before = while_op.before_block
        after = while_op.after_block
        # before: check iv <= upper && ok
        with self.builder.at(InsertPoint.at_end(before)):
            in_range = self._insert(arith.CmpIOp("sle", before.args[0], upper)).result
            keep = self._insert(arith.AndIOp(in_range, before.args[1])).result
            self._insert(scf.ConditionOp(keep, list(before.args)))
        # after: body; yield iv+step, new ok, iter args
        self.value_map[op.body.args[0]] = after.args[0]
        self.value_map[op.body.args[1]] = after.args[1]
        for old, new in zip(op.body.args[2:], after.args[2:]):
            self.value_map[old] = new
        with self.builder.at(InsertPoint.at_end(after)):
            for inner in op.body.ops:
                if inner.name == "fir.result":
                    yielded = [self._map(v) for v in inner.operands]
                    new_ok = yielded[0] if yielded else after.args[1]
                    rest = yielded[1:]
                    next_iv = self._insert(arith.AddIOp(after.args[0], step)).result
                    self._insert(scf.YieldOp([next_iv, new_ok, *rest]))
                else:
                    self._translate_op(inner)
            if after.terminator is None:
                next_iv = self._insert(arith.AddIOp(after.args[0], step)).result
                self._insert(scf.YieldOp([next_iv, after.args[1], *list(after.args[2:])]))
        for old, new in zip(op.results, while_op.results):
            self.value_map[old] = new

    # -- unstructured control flow (goto): via the tmpbr dialect -------------------
    def _op_cf_br(self, op: cf.BranchOp) -> None:
        index = self.block_index_map[op.successors[0]]
        self._insert(tmpbr.BrOp(index, [self._map(v) for v in op.operands]))

    def _op_cf_cond_br(self, op: cf.CondBranchOp) -> None:
        true_index = self.block_index_map[op.successors[0]]
        false_index = self.block_index_map[op.successors[1]]
        self._insert(tmpbr.CondBrOp(self._map(op.condition), true_index, false_index,
                                    [self._map(v) for v in op.true_operands],
                                    [self._map(v) for v in op.false_operands]))

    # ------------------------------------------------------------------- calls
    def _op_fir_call(self, op: fir.CallOp) -> None:
        callee = op.callee
        signature = self.function_signatures.get(callee)
        new_operands: List[Value] = []
        if signature is None:
            # runtime call (print/stop/...): pass mapped values directly
            for v in op.operands:
                binding = self._binding_for(v)
                if binding is not None and binding.kind == "boxed":
                    new_operands.append(self._insert(memref_d.LoadOp(binding.value, [])).results[0])
                elif binding is not None:
                    new_operands.append(binding.value)
                else:
                    new_operands.append(self._map(v))
            result_types = [convert_value_type(r.type) for r in op.results]
            call = self._insert(func_d.CallOp(callee, new_operands, result_types))
        else:
            kinds = self.function_arg_kinds[callee]
            for v, expected, kind in zip(op.operands, signature.inputs, kinds):
                new_operands.append(self._convert_call_argument(v, expected, kind))
            call = self._insert(func_d.CallOp(callee, new_operands,
                                              list(signature.results)))
        for old, new in zip(op.results, call.results):
            self.value_map[old] = new

    def _convert_call_argument(self, old: Value, expected: ir_types.Type,
                               kind: str) -> Value:
        binding = self._binding_for(old)
        element_ref = self.element_refs.get(old)
        if kind == "ssa":
            if binding is not None:
                if binding.kind == "ssa":
                    return binding.value
                if binding.rank == 0:
                    return self._insert(memref_d.LoadOp(binding.value, [])).results[0]
            if element_ref is not None:
                return self._load_element(element_ref)
            mapped = self._map(old)
            if isinstance(mapped.type, ir_types.MemRefType) and mapped.type.rank == 0:
                return self._insert(memref_d.LoadOp(mapped, [])).results[0]
            return mapped
        if kind == "boxed":
            if binding is not None and binding.kind == "boxed":
                return binding.value
            raise ConversionError("allocatable dummy argument requires an "
                                  "allocatable actual argument")
        # kind == memref
        if binding is not None:
            if binding.kind == "boxed":
                return self._insert(memref_d.LoadOp(binding.value, [])).results[0]
            return binding.value
        if element_ref is not None and element_ref.is_section:
            return element_ref.section_value
        mapped = self._map(old)
        if isinstance(mapped.type, ir_types.MemRefType):
            return mapped
        # scalar expression passed to a memref dummy: materialise a temporary
        temp = self._insert(memref_d.AllocaOp(ir_types.MemRefType([], mapped.type)))
        self._insert(memref_d.StoreOp(mapped, temp.results[0], []))
        return temp.results[0]

    def _op_func_return(self, op: Operation) -> None:
        self._insert(func_d.ReturnOp([self._map(v) for v in op.operands]))

    def _op_func_call(self, op: Operation) -> None:
        self._op_fir_call(op)  # same handling

    # ------------------------------------------------------------------ intrinsics
    def _op_hlfir_sum(self, op) -> None:
        self._reduction_to_linalg(op, kind="add")

    def _op_hlfir_product(self, op) -> None:
        self._reduction_to_linalg(op, kind="mul")

    def _op_hlfir_maxval(self, op) -> None:
        self._reduction_to_linalg(op, kind="max")

    def _op_hlfir_minval(self, op) -> None:
        self._reduction_to_linalg(op, kind="min")

    def _op_hlfir_count(self, op) -> None:
        self._reduction_to_linalg(op, kind="add")

    def _reduction_to_linalg(self, op, kind: str) -> None:
        """Listing 8: allocate a 0-d output memref, initialise it, reduce into
        it with linalg.reduce, then load the result."""
        array = self._array_memref(op.array)
        element_type = op.results[0].type
        element_type = convert_value_type(element_type)
        out = self._insert(memref_d.AllocaOp(ir_types.MemRefType([], element_type)))
        init = self._reduction_init(kind, element_type)
        self._insert(memref_d.StoreOp(init, out.results[0], []))
        rank = array.type.rank if isinstance(array.type, ir_types.MemRefType) else 1
        reduce = linalg.ReduceOp(array, out.results[0], list(range(rank)))
        body = reduce.body
        with self.builder.at(InsertPoint.at_end(body)):
            combined = self._combine(kind, body.args[0], body.args[1])
            self._insert(linalg.LinalgYieldOp([combined]))
        self._insert(reduce)
        loaded = self._insert(memref_d.LoadOp(out.results[0], []))
        self.value_map[op.results[0]] = loaded.results[0]

    def _reduction_init(self, kind: str, element_type) -> Value:
        is_float = isinstance(element_type, ir_types.FloatType)
        # integer sentinels follow the element width: i64 reductions may
        # legitimately hold values outside i32 range
        width = getattr(element_type, "width", 32)
        if kind == "add":
            v = 0.0 if is_float else 0
        elif kind == "mul":
            v = 1.0 if is_float else 1
        elif kind == "max":
            v = -1.0e308 if is_float else -(2 ** (width - 1))
        else:  # min
            v = 1.0e308 if is_float else 2 ** (width - 1) - 1
        if is_float:
            return self._insert(arith.ConstantOp(float(v), element_type)).result
        return self._insert(arith.ConstantOp(int(v), element_type)).result

    def _combine(self, kind: str, a: Value, b: Value) -> Value:
        is_float = isinstance(a.type, ir_types.FloatType)
        table = {
            ("add", True): arith.AddFOp, ("add", False): arith.AddIOp,
            ("mul", True): arith.MulFOp, ("mul", False): arith.MulIOp,
            ("max", True): arith.MaximumFOp, ("max", False): arith.MaxSIOp,
            ("min", True): arith.MinimumFOp, ("min", False): arith.MinSIOp,
        }
        return self._insert(table[(kind, is_float)](a, b)).result

    def _op_hlfir_dot_product(self, op) -> None:
        a = self._array_memref(op.lhs)
        b = self._array_memref(op.rhs)
        element_type = convert_value_type(op.results[0].type)
        out = self._insert(memref_d.AllocaOp(ir_types.MemRefType([], element_type)))
        zero = self._insert(arith.ConstantOp(
            0.0 if isinstance(element_type, ir_types.FloatType) else 0,
            element_type)).result
        self._insert(memref_d.StoreOp(zero, out.results[0], []))
        self._insert(linalg.DotOp(a, b, out.results[0]))
        loaded = self._insert(memref_d.LoadOp(out.results[0], []))
        self.value_map[op.results[0]] = loaded.results[0]

    def _op_hlfir_matmul(self, op) -> None:
        self._expr_producing_intrinsic(op, "matmul")

    def _op_hlfir_transpose(self, op) -> None:
        self._expr_producing_intrinsic(op, "transpose")

    def _expr_producing_intrinsic(self, op, kind: str) -> None:
        """matmul/transpose produce a whole array: write directly into the
        assignment target when the only use is a single hlfir.assign."""
        uses = op.results[0].users()
        target_memref: Optional[Value] = None
        assign_user = None
        if len(uses) == 1 and isinstance(uses[0], hlfir.AssignOp) and \
                uses[0].rhs is op.results[0]:
            assign_user = uses[0]
            target_binding = self._binding_for(assign_user.lhs)
            if target_binding is not None and target_binding.rank > 0:
                target_memref = self._element_base(ElementRef(binding=target_binding))
        inputs = [self._array_memref(v) for v in op.operands]
        if target_memref is None:
            # materialise a temporary for the expression value
            shape, sizes = self._result_shape_for(kind, inputs)
            elem = inputs[0].type.element_type
            target_memref = self._insert(memref_d.AllocOp(
                ir_types.MemRefType(shape, elem), sizes)).results[0]
        if kind == "matmul":
            zero = self._insert(arith.ConstantOp(
                0.0 if isinstance(inputs[0].type.element_type, ir_types.FloatType) else 0,
                inputs[0].type.element_type)).result
            self._insert(linalg.FillOp(zero, target_memref))
            # memrefs carry the arrays with reversed (row-major) dimension
            # order, i.e. they hold the transposes of the Fortran matrices:
            # C = A.B  <=>  C_mem = B_mem . A_mem
            self._insert(linalg.MatmulOp(inputs[1], inputs[0], target_memref))
        else:
            self._insert(linalg.TransposeOp(inputs[0], target_memref, [1, 0]))
        self.value_map[op.results[0]] = target_memref
        if assign_user is not None:
            # the assign is now redundant; remember to skip it
            self.element_refs[op.results[0]] = ElementRef(
                binding=VarBinding(kind="memref", value=target_memref,
                                   element_type=inputs[0].type.element_type,
                                   rank=target_memref.type.rank),
                is_section=True, section_value=target_memref)
            self._consumed_assigns = getattr(self, "_consumed_assigns", set())
            self._consumed_assigns.add(assign_user)

    def _result_shape_for(self, kind: str, inputs: List[Value]):
        a_type = inputs[0].type
        shape = []
        sizes = []
        if kind == "matmul":
            b_type = inputs[1].type
            dims = [(a_type, 0), (b_type, 1)]
        else:
            dims = [(a_type, 1), (a_type, 0)]
        for t, d in dims:
            if t.shape[d] == ir_types.DYNAMIC:
                shape.append(ir_types.DYNAMIC)
                dim_c = self._constant_index(d)
                sizes.append(self._insert(memref_d.DimOp(inputs[0] if t is a_type else inputs[1], dim_c)).results[0])
            else:
                shape.append(t.shape[d])
        return shape, sizes

    # intercept assigns that were already satisfied by matmul/transpose
    def _op_hlfir_assign_consumed_check(self, op) -> bool:
        consumed = getattr(self, "_consumed_assigns", set())
        return op in consumed


def _wrap_assign_dispatch(cls):
    original = cls._op_hlfir_assign

    def wrapper(self, op):
        if op in getattr(self, "_consumed_assigns", set()):
            return
        original(self, op)

    cls._op_hlfir_assign = wrapper
    return cls


_wrap_assign_dispatch(FirToStandardLowering)


@register_pass
class ConvertFirToStandardPass(Pass):
    """``convert-fir-to-standard``: the paper's HLFIR/FIR -> standard MLIR pass.

    Because the conversion rebuilds the module, the transformed module is
    stored on the pass instance (``result_module``) and also returned by the
    module-level helper :func:`convert_fir_to_standard`.
    """

    NAME = "convert-fir-to-standard"

    def __init__(self, **options):
        super().__init__(**options)
        self.result_module: Optional[ModuleOp] = None

    def run(self, module: Operation) -> None:
        lowering = FirToStandardLowering(module)
        self.result_module = lowering.run()
        # splice the new contents into the original module so in-place
        # pipelines observe the transformation
        module.body.ops.clear()
        for op in list(self.result_module.body.ops):
            op.detach()
            module.body.add_op(op)


def convert_fir_to_standard(module: ModuleOp) -> ModuleOp:
    """Translate a HLFIR/FIR module into a standard-dialect module."""
    return FirToStandardLowering(module).run()


__all__ = ["FirToStandardLowering", "ConvertFirToStandardPass",
           "convert_fir_to_standard", "ConversionError", "VarBinding",
           "ElementRef", "convert_argument_type", "sequence_to_memref"]
