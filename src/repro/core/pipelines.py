"""Pass pipelines used by the standard-MLIR flow.

``BASE_PIPELINE`` is the mlir-opt invocation of Listing 1; the vectorisation
flow of Figure 3 and the threading / GPU flows extend it with the additional
passes developed by the paper.
"""

from __future__ import annotations

from typing import List, Optional

# make sure every pass is registered before pipelines are parsed
from .. import transforms as _transforms  # noqa: F401
from ..ir.pass_manager import PassManager
from . import (acc_to_gpu as _acc, affine_transforms as _at,
               affine_vectorize as _av, alloca_scope as _as,
               branch_fixup as _bf, hoist_descriptor_loads as _hdl,
               scf_to_affine as _sta, scf_to_parallel as _stp,
               static_shapes as _ss)  # noqa: F401

#: Listing 1: the base mlir-opt pipeline lowering the standard dialects to llvm.
BASE_PIPELINE = (
    "builtin.module(canonicalize, cse, loop-invariant-code-motion, "
    "convert-linalg-to-loops, convert-scf-to-cf, "
    "convert-cf-to-llvm{index-bitwidth=64}, fold-memref-alias-ops, "
    "lower-affine, finalize-memref-to-llvm, "
    "convert-arith-to-llvm{index-bitwidth=64}, convert-func-to-llvm, "
    "math-uplift-to-fma, convert-math-to-llvm, fold-memref-alias-ops, "
    "lower-affine, finalize-memref-to-llvm, reconcile-unrealized-casts)"
)

#: The optimisation stage run before lowering to llvm: the paper's own passes
#: (static shape recovery, descriptor-load hoisting, affine promotion,
#: super-vectorisation) followed by cleanups.  This is the IR level the
#: machine model consumes.
OPTIMISE_PIPELINE = (
    "builtin.module(canonicalize, cse, loop-invariant-code-motion, "
    "recover-static-shapes, hoist-allocatable-loads, "
    "convert-linalg-to-loops, raise-scf-to-affine, "
    "affine-super-vectorize{virtual-vector-size=4}, "
    "math-uplift-to-fma, canonicalize, cse)"
)

#: Figure 3: vectorisation pipeline from affine down to llvm.
VECTORIZE_PIPELINE = (
    "builtin.module(affine-super-vectorize{virtual-vector-size=4}, "
    "lower-affine, convert-scf-to-cf, "
    "convert-vector-to-llvm{enable-x86vector}, "
    "convert-cf-to-llvm{index-bitwidth=64}, finalize-memref-to-llvm, "
    "convert-arith-to-llvm{index-bitwidth=64}, convert-func-to-llvm, "
    "reconcile-unrealized-casts)"
)

#: Threading: convert eligible loops to scf.parallel and lower to OpenMP.
OPENMP_PIPELINE = (
    "builtin.module(convert-scf-for-to-parallel, convert-scf-to-openmp, "
    "canonicalize, cse)"
)

#: GPU offload via OpenACC (Section VI-C).
GPU_PIPELINE = (
    "builtin.module(convert-acc-to-gpu, convert-parallel-loops-to-gpu, "
    "canonicalize, cse)"
)


def base_pipeline() -> PassManager:
    return PassManager.from_pipeline(BASE_PIPELINE)


def optimise_pipeline(vector_width: int = 4, *, tile: bool = False,
                      tile_size: int = 32, unroll: int = 0) -> PassManager:
    """The standard-flow optimisation pipeline (tunable, Section VI)."""
    pm = PassManager()
    pm.add("canonicalize")
    pm.add("cse")
    pm.add("forward-scalar-stores")
    pm.add("canonicalize")
    pm.add("cse")
    pm.add("loop-invariant-code-motion")
    pm.add("insert-alloca-scopes")
    pm.add("recover-static-shapes")
    pm.add("hoist-allocatable-loads")
    pm.add("convert-linalg-to-loops")
    pm.add("raise-scf-to-affine")
    if tile:
        pm.add("affine-loop-tile", tile_size=tile_size)
    if unroll:
        pm.add("affine-loop-unroll", unroll_factor=unroll)
    # drop the now-dead scalar subscript arithmetic before vectorisation so
    # loop bodies contain only elementwise work
    pm.add("canonicalize")
    pm.add("cse")
    if vector_width and vector_width > 1:
        pm.add("affine-super-vectorize", virtual_vector_size=vector_width)
    pm.add("math-uplift-to-fma")
    pm.add("canonicalize")
    pm.add("cse")
    return pm


def standard_flow_pipeline(vector_width: int = 4, *, tile: bool = False,
                           tile_size: int = 32, unroll: int = 0,
                           parallelise: bool = False,
                           gpu: bool = False, **_ignored) -> PassManager:
    """The whole standard flow as ONE op-anchored nested pipeline.

    This is what the ``ours`` flow's pipeline builder returns: every stage —
    the initial scalar cleanups, the optional GPU/OpenMP lowerings and the
    Section V/VI optimisation stage — is anchored per-``func.func`` (MLIR
    ``OpPassManager`` style).  All of these passes transform one function at
    a time, so anchoring the whole flow under one nest changes nothing about
    what runs; what it buys is the function-granular machinery in
    :mod:`repro.ir.pass_manager`: with ``pipeline_settings(jobs=N)`` the
    functions of a module are optimised in parallel, and with a
    ``function_cache`` unchanged functions are spliced from the store
    instead of recompiled.  Running it yields a single
    :class:`~repro.ir.pass_manager.PassTimingReport` covering every stage.
    """
    pm = PassManager()
    # forward/eliminate the per-iteration loop-variable stores first so the
    # parallelisation and GPU lowerings see clean loop nests
    fn = pm.nest("func.func")
    for name in ("canonicalize", "cse", "forward-scalar-stores",
                 "canonicalize", "cse"):
        fn.add(name)
    if gpu:
        fn.passes.extend(gpu_pipeline().passes)
    if parallelise:
        fn.passes.extend(openmp_pipeline().passes)
    fn.passes.extend(optimise_pipeline(vector_width, tile=tile,
                                       tile_size=tile_size,
                                       unroll=unroll).passes)
    return pm


def openmp_pipeline() -> PassManager:
    return PassManager.from_pipeline(OPENMP_PIPELINE)


def gpu_pipeline() -> PassManager:
    return PassManager.from_pipeline(GPU_PIPELINE)


def to_llvm_pipeline() -> PassManager:
    """The tail of Listing 1: lower everything that remains to the llvm dialect."""
    return PassManager.from_pipeline(
        "builtin.module(lower-affine, convert-scf-to-cf, "
        "convert-vector-to-llvm{enable-x86vector}, "
        "convert-cf-to-llvm{index-bitwidth=64}, fold-memref-alias-ops, "
        "finalize-memref-to-llvm, convert-arith-to-llvm{index-bitwidth=64}, "
        "convert-func-to-llvm, convert-math-to-llvm, "
        "reconcile-unrealized-casts)")


__all__ = [
    "BASE_PIPELINE", "OPTIMISE_PIPELINE", "VECTORIZE_PIPELINE",
    "OPENMP_PIPELINE", "GPU_PIPELINE", "base_pipeline", "optimise_pipeline",
    "standard_flow_pipeline", "openmp_pipeline", "gpu_pipeline",
    "to_llvm_pipeline",
]
