"""Wrap translated function bodies in ``memref.alloca_scope`` (Section V-B).

The paper found that stack memory allocated by ``memref.alloca`` was not
released at function boundaries despite the ``AutomaticAllocationScope`` trait
on ``func.func``, so the transformation inserts an explicit
``memref.alloca_scope``.  Because that operation's region may contain at most
one block, it is only applied to single-block function bodies (functions that
still contain unstructured control flow keep their blocks untouched).
"""

from __future__ import annotations

from ..dialects import func as func_d
from ..dialects import memref as memref_d
from ..ir.core import Block, Operation
from ..ir.pass_manager import FunctionPass, register_pass


def wrap_in_alloca_scope(func: Operation) -> bool:
    """Wrap the (single-block) body of ``func`` in memref.alloca_scope.

    Returns True if the function was rewritten.
    """
    region = func.regions[0]
    if len(region.blocks) != 1:
        return False
    body = region.blocks[0]
    if not body.ops:
        return False
    if any(op.name == "memref.alloca_scope" for op in body.ops):
        return False
    terminator = body.terminator
    if terminator is None or terminator.name != "func.return":
        return False
    has_alloca = any(op.name == "memref.alloca" for op in body.walk())
    if not has_alloca:
        return False

    scope_block = Block()
    scope = memref_d.AllocaScopeOp(body=scope_block)
    # move everything except the final func.return into the scope
    for op in list(body.ops):
        if op is terminator:
            continue
        op.detach()
        scope_block.add_op(op)
    scope_block.add_op(memref_d.AllocaScopeReturnOp())
    body.insert_op_at(0, scope)
    return True


@register_pass
class AllocaScopePass(FunctionPass):
    NAME = "insert-alloca-scopes"

    def run_on_function(self, func: Operation) -> None:
        wrap_in_alloca_scope(func)


__all__ = ["wrap_in_alloca_scope", "AllocaScopePass"]
